//! The paper's motivating scenario: printing-fault detection.
//!
//! Builds the synthetic textile-printing database, registers the paper's
//! nUDFs, and runs (a close relative of) the collaborative query from the
//! paper's introduction under all four strategies:
//!
//! ```sql
//! SELECT patternID, transID FROM FABRIC F, Video V
//! WHERE F.humidity > 80 and F.temperature > 30
//!   and F.printdate > '2021-01-01' and F.printdate < '2021-1-31'
//!   and F.transID = V.transID
//!   and V.date > '2021-01-01' and V.date < '2021-1-31'
//!   and nUDF_detect(V.keyframe) = FALSE;
//! ```
//!
//! ```sh
//! cargo run --release --example fault_detection
//! ```

use std::sync::Arc;

use collab::{classify_sql, CollabEngine, StrategyKind};
use minidb::Database;
use workload::{build_dataset, build_repo, DatasetConfig, RepoConfig};

fn main() {
    // The shared database + model repository.
    let db = Arc::new(Database::new());
    let config = DatasetConfig { video_rows: 1000, ..Default::default() };
    let summary = build_dataset(&db, &config).expect("dataset builds");
    println!(
        "dataset: {} tuples across video/fabric/client/order/device ({}:{}:{}:{}:{})",
        summary.total_rows(),
        summary.video_rows,
        summary.fabric_rows,
        summary.client_rows,
        summary.order_rows,
        summary.device_rows
    );
    let repo = build_repo(&RepoConfig {
        keyframe_shape: config.keyframe_shape.clone(),
        patterns: config.patterns,
        ..Default::default()
    });
    let engine = CollabEngine::new(db, repo);

    // The paper's January window over a year-scale dataset; thresholds
    // loosened slightly so the miniature dataset yields visible rows.
    let sql = "SELECT F.patternID, F.transID FROM fabric F, video V \
               WHERE F.humidity > 80 and F.temperature > 25 \
               and F.printdate > '2021-01-01' and F.printdate < '2021-03-31' \
               and F.transID = V.transID \
               and V.date > '2021-01-01' and V.date < '2021-03-31' \
               and nUDF_detect(V.keyframe) = FALSE \
               ORDER BY F.transID";
    println!(
        "\nquery type: {:?} (Q_learning depends on Q_db)",
        classify_sql(sql, engine.repo()).expect("classifies")
    );

    println!(
        "\n{:<12} {:>10} {:>10} {:>10} {:>8}",
        "strategy", "load(ms)", "infer(ms)", "rel(ms)", "rows"
    );
    let mut reference: Option<Vec<String>> = None;
    for kind in StrategyKind::all() {
        let out = engine.execute(sql, kind).expect("strategy runs");
        println!(
            "{:<12} {:>10.3} {:>10.3} {:>10.3} {:>8}",
            kind.label(),
            out.breakdown.loading.as_secs_f64() * 1e3,
            out.breakdown.inference.as_secs_f64() * 1e3,
            out.breakdown.relational.as_secs_f64() * 1e3,
            out.table.num_rows()
        );
        // All strategies must return the same faults.
        let rows: Vec<String> = (0..out.table.num_rows())
            .map(|r| format!("{}|{}", out.table.column(0).i64_at(r), out.table.column(1).i64_at(r)))
            .collect();
        match &reference {
            None => reference = Some(rows),
            Some(expected) => assert_eq!(&rows, expected, "{} disagrees", kind.label()),
        }
    }
    println!("\nall four strategies returned identical fault lists ✓");
}
