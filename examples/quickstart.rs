//! Quickstart: compile a CNN to SQL and run inference inside the database.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use dl2sql::{compile_model, NeuralRegistry, Runner};
use minidb::Database;
use neuro::{zoo, Tensor};

fn main() {
    // 1. A database and a model. The "student" CNN is the paper's
    //    distilled 3x(Conv+BN+ReLU) network.
    let db = Arc::new(Database::new());
    let registry = NeuralRegistry::shared();
    let model = zoo::student(vec![1, 12, 12], 4, 7);
    println!("model: {} ({} parameters)", model.name, model.param_count());

    // 2. Compile: weights become relational tables, inference becomes SQL.
    let compiled = Arc::new(compile_model(&db, &registry, &model).expect("compiles"));
    println!(
        "compiled into {} SQL steps over {} persistent tables",
        compiled.steps.len(),
        compiled.persistent_tables.len()
    );
    println!("\nthe convolution of layer 1, as SQL (paper query Q1):");
    let conv1 = compiled.steps.iter().find(|s| s.label == "Conv1").expect("has a conv");
    println!("  {}\n", conv1.statements[0]);

    // 3. Run one keyframe through the SQL program.
    let input =
        Tensor::new(vec![1, 12, 12], (0..144).map(|i| ((i % 13) as f32 / 6.5) - 1.0).collect())
            .expect("valid tensor");
    let runner = Runner::new(Arc::clone(&db), Arc::clone(&registry), Arc::clone(&compiled))
        .expect("runner builds");
    let outcome = runner.infer(&input).expect("inference runs");
    println!("SQL inference predicted class {}", outcome.predicted_class);
    println!("class probabilities: {:?}", outcome.probabilities);

    // 4. Cross-check against the direct tensor engine.
    let reference = model.forward(&input).expect("reference runs");
    println!("tensor engine predicted class {}", reference.argmax());
    assert_eq!(outcome.predicted_class, reference.argmax(), "the two engines agree");

    // 5. Where did the time go? (paper Fig. 9's per-block view)
    println!("\nper-step timings:");
    for t in &outcome.step_timings {
        println!("  {:<16} {:>8.3} ms", t.label, t.duration.as_secs_f64() * 1e3);
    }
}
