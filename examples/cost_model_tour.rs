//! A tour of the customized cost model (paper Sec. IV).
//!
//! Shows EXPLAIN output for the conv query, and compares the default
//! (ClickHouse-like, no column statistics) estimator against the
//! customized DL2SQL model on single-layer and chained-layer queries.
//!
//! ```sh
//! cargo run --release --example cost_model_tour
//! ```

use std::sync::Arc;

use dl2sql::{compile_model, Dl2SqlCostModel, NeuralRegistry};
use minidb::{Database, DefaultCostModel};
use neuro::{zoo, Tensor};

fn main() {
    let db = Arc::new(Database::new());
    let registry = NeuralRegistry::shared();
    let model = zoo::student(vec![1, 12, 12], 4, 7);
    let compiled = compile_model(&db, &registry, &model).expect("compiles");

    // Materialize layer 1's staged feature map so the conv query plans.
    let input = Tensor::full(vec![1, 12, 12], 0.5);
    dl2sql::storage::load_state_table(&db, &registry, &compiled.input_table, &input)
        .expect("stages");
    for stmt in &compiled.steps[0].statements {
        db.execute(stmt).expect("staging runs");
    }

    let create = &compiled.steps[1].statements[0];
    let conv_sql = &create[create.find("SELECT").expect("embeds SELECT")..];
    println!("-- the convolution query (paper Q1):\n{conv_sql}\n");
    println!("-- its optimized plan:\n{}", db.explain(conv_sql).expect("explains"));

    let default = DefaultCostModel::clickhouse_like();
    let custom = Dl2SqlCostModel::new(Arc::clone(&registry));
    let actual = db.execute(conv_sql).expect("runs").table().num_rows() as f64;
    let d = db.estimate_with(conv_sql, &default).expect("estimates");
    let c = db.estimate_with(conv_sql, &custom).expect("estimates");
    println!("actual output rows:       {actual}");
    println!("default model estimate:   {:.0} rows (cost {:.0})", d.rows, d.cost);
    println!("customized model (Eq. 3-8): {:.0} rows (cost {:.0})", c.rows, c.cost);
    println!(
        "\nthe customized estimate is {:.1}x closer on cardinality",
        (d.rows - actual).abs().max(1.0) / (c.rows - actual).abs().max(1.0)
    );
}
