//! An interactive SQL shell over the synthetic IoT database, with every
//! nUDF of the model repository registered — type the paper's
//! collaborative queries directly.
//!
//! ```sh
//! cargo run --release --example sql_shell
//! sql> SELECT count(*) FROM fabric WHERE humidity > 80;
//! sql> SELECT F.transID FROM fabric F, video V
//!      WHERE F.transID = V.transID and nUDF_detect(V.keyframe) = TRUE LIMIT 5;
//! sql> EXPLAIN SELECT f.transID FROM fabric f, video v WHERE f.transID = v.transID;
//! sql> \tables     -- list tables
//! sql> \q          -- quit
//! ```

use std::io::{BufRead, Write};
use std::sync::Arc;

use minidb::{DataType, Database, ScalarUdf};
use workload::{build_dataset, build_repo, DatasetConfig, RepoConfig};

fn main() {
    let db = Arc::new(Database::new());
    let config = DatasetConfig { video_rows: 1000, ..Default::default() };
    let summary = build_dataset(&db, &config).expect("dataset builds");
    let repo = build_repo(&RepoConfig {
        keyframe_shape: config.keyframe_shape.clone(),
        patterns: config.patterns,
        ..Default::default()
    });

    // Register every nUDF (loose-integration style: native inference).
    for name in repo.names() {
        let spec = repo.require(&name).expect("registered");
        let output = spec.output.clone();
        let model = Arc::clone(&spec.model);
        db.register_udf(
            ScalarUdf::new(
                &spec.name,
                vec![DataType::Blob],
                spec.output.data_type(),
                move |args| {
                    let tensor = collab::blob_to_tensor(&args[0])
                        .map_err(|e| minidb::Error::Exec(e.to_string()))?;
                    let out =
                        model.forward(&tensor).map_err(|e| minidb::Error::Exec(e.to_string()))?;
                    Ok(output.to_value(out.argmax()))
                },
            )
            .with_cost(spec.model.param_count() as f64)
            .with_class_probabilities(spec.output.value_histogram(&spec.class_probs)),
        );
    }

    println!(
        "dl2sql-repro SQL shell — {} tuples across {} tables, {} nUDFs registered",
        summary.total_rows(),
        db.catalog().table_names().len(),
        repo.names().len()
    );
    println!("type SQL (single line), \\tables, \\udfs, or \\q\n");

    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    loop {
        print!("sql> ");
        stdout.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("read error: {e}");
                break;
            }
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            "\\q" | "exit" | "quit" => break,
            "\\tables" => {
                let mut names = db.catalog().table_names();
                names.sort();
                for n in names {
                    let rows = db.catalog().table(&n).map_or(0, |t| t.num_rows());
                    println!("  {n} ({rows} rows)");
                }
                continue;
            }
            "\\udfs" => {
                let mut names = db.udfs().names();
                names.sort();
                for n in names {
                    println!("  {n}");
                }
                continue;
            }
            _ => {}
        }
        match db.execute(line.trim_end_matches(';')) {
            Ok(result) => {
                let t = result.table();
                if t.num_columns() > 0 {
                    let header: Vec<String> = result
                        .column_names()
                        .iter()
                        .zip(result.column_types())
                        .map(|(n, ty)| format!("{n}:{ty:?}"))
                        .collect();
                    println!("-- {}", header.join("  "));
                    print!("{}", t.to_display_string());
                }
                // Timing and scan volume come stamped on the result itself.
                println!("({})", result.summary());
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
