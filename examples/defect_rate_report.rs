//! A Type-2 collaborative query: per-pattern defect rates.
//!
//! The aggregate consumes nUDF output (`Q_db` depends on `Q_learning`,
//! paper Table I row 2):
//!
//! ```sql
//! SELECT patternID, count(nUDF_detect(V.keyframe) = TRUE) / sum(meter)
//! FROM fabric F, video V WHERE ... GROUP BY patternID
//! ```
//!
//! ```sh
//! cargo run --release --example defect_rate_report
//! ```

use std::sync::Arc;

use collab::{classify_sql, CollabEngine, QueryType, StrategyKind};
use minidb::Database;
use workload::{build_dataset, build_repo, DatasetConfig, RepoConfig};

fn main() {
    let db = Arc::new(Database::new());
    let config = DatasetConfig { video_rows: 800, ..Default::default() };
    build_dataset(&db, &config).expect("dataset builds");
    let repo = build_repo(&RepoConfig {
        keyframe_shape: config.keyframe_shape.clone(),
        patterns: config.patterns,
        ..Default::default()
    });
    let engine = CollabEngine::new(db, repo);

    let sql =
        "SELECT patternID, count(nUDF_detect(V.keyframe) = TRUE) / sum(meter) AS defect_rate \
               FROM fabric F, video V \
               WHERE F.printdate >= '2021-01-01' and F.printdate < '2021-04-01' \
               and F.transID = V.transID \
               GROUP BY patternID ORDER BY patternID";
    assert_eq!(classify_sql(sql, engine.repo()).unwrap(), QueryType::Type2);

    // DL2SQL-OP produces the report...
    let outcome = engine.execute(sql, StrategyKind::TightOptimized).expect("runs");
    println!("defect rate per pattern (defects per printed meter):\n");
    println!("{}", outcome.table.to_display_string());
    println!(
        "cost: loading {:.1} ms, inference {:.1} ms, relational {:.1} ms",
        outcome.breakdown.loading.as_secs_f64() * 1e3,
        outcome.breakdown.inference.as_secs_f64() * 1e3,
        outcome.breakdown.relational.as_secs_f64() * 1e3,
    );

    // ...and the independent (DB-PyTorch) strategy agrees, at its own cost.
    let indep = engine.execute(sql, StrategyKind::Independent).expect("runs");
    assert_eq!(indep.table.num_rows(), outcome.table.num_rows());
    for r in 0..indep.table.num_rows() {
        let a = indep.table.column(1).f64_at(r);
        let b = outcome.table.column(1).f64_at(r);
        assert!((a - b).abs() < 1e-9, "strategies disagree on pattern {r}");
    }
    println!(
        "\nDB-PyTorch agrees; its cross-system coordination spent {:.1} ms on loading \
         (vs {:.1} ms for DL2SQL-OP)",
        indep.breakdown.loading.as_secs_f64() * 1e3,
        outcome.breakdown.loading.as_secs_f64() * 1e3,
    );
}
