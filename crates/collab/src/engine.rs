//! The engine: one database + one model repository, three strategies.

use std::sync::Arc;

use dl2sql::NeuralRegistry;
use minidb::sql::ast::{Query, Statement};
use minidb::sql::parser::parse_statement;
use minidb::Database;

use crate::error::Result;
use crate::independent::{DlServer, Independent};
use crate::loose::LooseUdf;
use crate::metrics::{InferenceMeter, StrategyOutcome};
use crate::nudf::ModelRepo;
use crate::tight::Tight;
use crate::Strategy;

/// Which strategy to run a collaborative query under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Independent processing (DB-PyTorch).
    Independent,
    /// Loose integration (DB-UDF).
    LooseUdf,
    /// Tight integration without the optimizer hints (DL2SQL).
    Tight,
    /// Tight integration with the customized cost model + hints
    /// (DL2SQL-OP).
    TightOptimized,
}

impl StrategyKind {
    /// All four configurations of paper Fig. 8, in its bar order.
    pub fn all() -> [StrategyKind; 4] {
        [
            StrategyKind::Tight,
            StrategyKind::TightOptimized,
            StrategyKind::LooseUdf,
            StrategyKind::Independent,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::Independent => "DB-PyTorch",
            StrategyKind::LooseUdf => "DB-UDF",
            StrategyKind::Tight => "DL2SQL",
            StrategyKind::TightOptimized => "DL2SQL-OP",
        }
    }
}

/// Shared execution environment for collaborative queries.
///
/// Strategy executions are sequential: each one (re)binds the nUDF names
/// in the shared database to its own implementation before running.
pub struct CollabEngine {
    db: Arc<Database>,
    repo: Arc<ModelRepo>,
    registry: Arc<NeuralRegistry>,
    meter: Arc<InferenceMeter>,
    server: Arc<DlServer>,
}

impl CollabEngine {
    /// Builds an engine over an already-populated database and repository
    /// (spawns the DL-serving thread used by the independent strategy).
    ///
    /// The database's `parallelism` knob is propagated to the process-wide
    /// kernel pool, so a `Database::builder().parallelism(n)` engine runs
    /// `neuro`'s conv/linear loops — the DB-UDF and DB-PyTorch inference
    /// paths — on the same number of workers as the SQL executor.
    pub fn new(db: Arc<Database>, repo: Arc<ModelRepo>) -> Self {
        taskpool::set_default_parallelism(db.exec_config().parallelism);
        let meter = InferenceMeter::shared();
        let server = Arc::new(DlServer::start(Arc::clone(&repo), Arc::clone(&meter)));
        CollabEngine { db, repo, registry: NeuralRegistry::shared(), meter, server }
    }

    /// The shared database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The model repository.
    pub fn repo(&self) -> &Arc<ModelRepo> {
        &self.repo
    }

    /// The DL2SQL table registry.
    pub fn registry(&self) -> &Arc<NeuralRegistry> {
        &self.registry
    }

    /// Instantiates a strategy.
    pub fn strategy(&self, kind: StrategyKind) -> Box<dyn Strategy + '_> {
        match kind {
            StrategyKind::Independent => Box::new(Independent::new(
                Arc::clone(&self.db),
                Arc::clone(&self.repo),
                Arc::clone(&self.server),
                Arc::clone(&self.meter),
            )),
            StrategyKind::LooseUdf => Box::new(LooseUdf::new(
                Arc::clone(&self.db),
                Arc::clone(&self.repo),
                Arc::clone(&self.meter),
            )),
            StrategyKind::Tight => Box::new(Tight::new(
                Arc::clone(&self.db),
                Arc::clone(&self.repo),
                Arc::clone(&self.registry),
                Arc::clone(&self.meter),
                false,
            )),
            StrategyKind::TightOptimized => Box::new(Tight::new(
                Arc::clone(&self.db),
                Arc::clone(&self.repo),
                Arc::clone(&self.registry),
                Arc::clone(&self.meter),
                true,
            )),
        }
    }

    /// Parses one collaborative query for repeated execution. The SQL text
    /// is parsed exactly once; [`PreparedCollabQuery::run`] can then replay
    /// it under any strategy (the bench harnesses run the same query under
    /// all four configurations).
    pub fn prepare(&self, sql: &str) -> Result<PreparedCollabQuery<'_>> {
        let Statement::Query(query) = parse_statement(sql)? else {
            return Err(crate::Error::Coordinator(
                "collaborative queries are SELECT statements".into(),
            ));
        };
        Ok(PreparedCollabQuery { engine: self, query })
    }

    /// Executes one collaborative query under one strategy.
    pub fn execute(&self, sql: &str, kind: StrategyKind) -> Result<StrategyOutcome> {
        self.prepare(sql)?.run(kind)
    }
}

/// A collaborative query parsed once, runnable under every strategy.
pub struct PreparedCollabQuery<'a> {
    engine: &'a CollabEngine,
    query: Query,
}

impl PreparedCollabQuery<'_> {
    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Runs the query under `kind` without re-parsing.
    pub fn run(&self, kind: StrategyKind) -> Result<StrategyOutcome> {
        self.engine.strategy(kind).execute_query(&self.query)
    }
}
