//! The engine: one database + one model repository, three strategies.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use dl2sql::{ArtifactCache, NeuralRegistry};
use minidb::sql::ast::{Query, Statement};
use minidb::sql::parser::parse_statement;
use minidb::Database;
use parking_lot::RwLock;

use crate::cache::InferenceCache;
use crate::error::Result;
use crate::independent::{DlServer, Independent};
use crate::loose::LooseUdf;
use crate::metrics::{CacheActivity, InferenceMeter, StrategyOutcome};
use crate::nudf::{ModelRepo, NudfSpec};
use crate::tight::Tight;
use crate::Strategy;

/// Which strategy to run a collaborative query under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Independent processing (DB-PyTorch).
    Independent,
    /// Loose integration (DB-UDF).
    LooseUdf,
    /// Tight integration without the optimizer hints (DL2SQL).
    Tight,
    /// Tight integration with the customized cost model + hints
    /// (DL2SQL-OP).
    TightOptimized,
}

impl StrategyKind {
    /// All four configurations of paper Fig. 8, in its bar order.
    pub fn all() -> [StrategyKind; 4] {
        [
            StrategyKind::Tight,
            StrategyKind::TightOptimized,
            StrategyKind::LooseUdf,
            StrategyKind::Independent,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::Independent => "DB-PyTorch",
            StrategyKind::LooseUdf => "DB-UDF",
            StrategyKind::Tight => "DL2SQL",
            StrategyKind::TightOptimized => "DL2SQL-OP",
        }
    }
}

/// Shared execution environment for collaborative queries.
///
/// Strategy executions are sequential: each one (re)binds the nUDF names
/// in the shared database to its own implementation before running.
pub struct CollabEngine {
    db: Arc<Database>,
    repo: Arc<ModelRepo>,
    registry: Arc<NeuralRegistry>,
    meter: Arc<InferenceMeter>,
    server: Arc<DlServer>,
    /// nUDF result memoization, shared by all four strategies. Disabled
    /// (capacity 0) by default so the Fig. 8 harnesses keep measuring
    /// cold inference costs; see [`CollabEngine::set_inference_cache_capacity`].
    inference_cache: Arc<InferenceCache>,
    /// Compiled-artifact reuse for the tight strategies. Disabled by
    /// default ("integrated on the fly" is part of what Fig. 8 measures);
    /// see [`CollabEngine::set_artifact_cache_capacity`].
    artifact_cache: Arc<ArtifactCache>,
    /// Cumulative per-strategy run counters, exported by
    /// [`CollabEngine::metrics_snapshot`].
    totals: RwLock<HashMap<StrategyKind, StrategyTotals>>,
    /// Retry/backoff policy for the independent strategy's DB↔DL
    /// transfer.
    retry_policy: RwLock<govern::RetryPolicy>,
    /// Graceful-degradation order: when a strategy fails for a
    /// recoverable reason, the engine retries the query under the next
    /// kind in this chain. Empty (the default) disables fallback.
    fallback_chain: RwLock<Vec<StrategyKind>>,
    /// Queries rescued by the fallback chain.
    fallbacks: std::sync::atomic::AtomicU64,
    /// DB↔DL transfer retries across all runs.
    transfer_retries: std::sync::atomic::AtomicU64,
}

/// Cumulative counters for one strategy across engine runs.
#[derive(Debug, Clone, Copy, Default)]
struct StrategyTotals {
    runs: u64,
    wall_nanos: u64,
    loading_nanos: u64,
    inference_nanos: u64,
    relational_nanos: u64,
    transfer_bytes: u64,
    cross_system_bytes: u64,
    inference_flops: u64,
}

impl CollabEngine {
    /// Builds an engine over an already-populated database and repository
    /// (spawns the DL-serving thread used by the independent strategy).
    ///
    /// The database's `parallelism` knob is propagated to the process-wide
    /// kernel pool, so a `Database::builder().parallelism(n)` engine runs
    /// `neuro`'s conv/linear loops — the DB-UDF and DB-PyTorch inference
    /// paths — on the same number of workers as the SQL executor.
    pub fn new(db: Arc<Database>, repo: Arc<ModelRepo>) -> Self {
        taskpool::set_default_parallelism(db.exec_config().parallelism);
        let meter = InferenceMeter::shared();
        let server = Arc::new(DlServer::start(Arc::clone(&repo), Arc::clone(&meter)));
        CollabEngine {
            db,
            repo,
            registry: NeuralRegistry::shared(),
            meter,
            server,
            inference_cache: Arc::new(InferenceCache::new(0)),
            artifact_cache: Arc::new(ArtifactCache::new(0)),
            totals: RwLock::new(HashMap::new()),
            retry_policy: RwLock::new(govern::RetryPolicy::default()),
            fallback_chain: RwLock::new(Vec::new()),
            fallbacks: std::sync::atomic::AtomicU64::new(0),
            transfer_retries: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Replaces the DB↔DL transfer retry policy, returning the previous
    /// one. Applies to strategies instantiated afterwards.
    pub fn set_retry_policy(&self, policy: govern::RetryPolicy) -> govern::RetryPolicy {
        std::mem::replace(&mut *self.retry_policy.write(), policy)
    }

    /// The current transfer retry policy.
    pub fn retry_policy(&self) -> govern::RetryPolicy {
        self.retry_policy.read().clone()
    }

    /// Installs the graceful-degradation chain: when a prepared query
    /// fails under a strategy for a recoverable cause, the engine re-runs
    /// it under the next kind in the chain (e.g. `[Tight, LooseUdf]`
    /// makes tight failures degrade to the loose UDF path). Cancellation
    /// and query timeouts never fall back — the caller asked for the
    /// abort. Empty disables fallback (the default).
    pub fn set_fallback_chain(&self, chain: Vec<StrategyKind>) {
        *self.fallback_chain.write() = chain;
    }

    /// The current fallback chain.
    pub fn fallback_chain(&self) -> Vec<StrategyKind> {
        self.fallback_chain.read().clone()
    }

    /// The shared database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The model repository.
    pub fn repo(&self) -> &Arc<ModelRepo> {
        &self.repo
    }

    /// The DL2SQL table registry.
    pub fn registry(&self) -> &Arc<NeuralRegistry> {
        &self.registry
    }

    /// The shared nUDF result-memoization cache.
    pub fn inference_cache(&self) -> &Arc<InferenceCache> {
        &self.inference_cache
    }

    /// The compiled-artifact cache used by the tight strategies.
    pub fn artifact_cache(&self) -> &Arc<ArtifactCache> {
        &self.artifact_cache
    }

    /// Bounds nUDF inference memoization to `capacity` results across all
    /// strategies (0 disables it, the default). Cached results are
    /// bit-identical to uncached ones; only the cost of producing them
    /// changes.
    pub fn set_inference_cache_capacity(&self, capacity: usize) {
        self.inference_cache.set_capacity(capacity);
    }

    /// Bounds compiled-artifact reuse to `capacity` (model, strategy)
    /// compilations (0 disables it, the default — every tight query then
    /// re-integrates its model "on the fly" as the paper describes).
    pub fn set_artifact_cache_capacity(&self, capacity: usize) {
        self.artifact_cache.set_capacity(capacity);
    }

    /// Replaces the model behind an nUDF. The old registration's compiled
    /// artifacts (relational tables + registry roles) are dropped, its
    /// memoized results invalidated, and the new spec registered under a
    /// fresh generation; returns that generation. Registering a brand-new
    /// name degenerates to a plain [`ModelRepo::register`].
    pub fn swap_nudf(&self, spec: NudfSpec) -> u64 {
        if let Some(old) = self.repo.get(&spec.name) {
            let old_generation = self.repo.generation(&spec.name);
            self.artifact_cache.invalidate_model(&self.db, &self.registry, &old.model);
            for v in &old.variants {
                self.artifact_cache.invalidate_model(&self.db, &self.registry, &v.model);
            }
            // Fresh generations stop matching on their own; dropping the
            // old entries now frees their capacity immediately.
            self.inference_cache.invalidate_generation(old_generation);
        }
        self.repo.register(spec)
    }

    /// Instantiates a strategy (sharing the engine's caches).
    pub fn strategy(&self, kind: StrategyKind) -> Box<dyn Strategy + '_> {
        match kind {
            StrategyKind::Independent => Box::new(
                Independent::new(
                    Arc::clone(&self.db),
                    Arc::clone(&self.repo),
                    Arc::clone(&self.server),
                    Arc::clone(&self.meter),
                )
                .with_inference_cache(Arc::clone(&self.inference_cache))
                .with_retry_policy(self.retry_policy()),
            ),
            StrategyKind::LooseUdf => Box::new(
                LooseUdf::new(
                    Arc::clone(&self.db),
                    Arc::clone(&self.repo),
                    Arc::clone(&self.meter),
                )
                .with_inference_cache(Arc::clone(&self.inference_cache)),
            ),
            StrategyKind::Tight => Box::new(
                Tight::new(
                    Arc::clone(&self.db),
                    Arc::clone(&self.repo),
                    Arc::clone(&self.registry),
                    Arc::clone(&self.meter),
                    false,
                )
                .with_caches(Arc::clone(&self.inference_cache), Arc::clone(&self.artifact_cache)),
            ),
            StrategyKind::TightOptimized => Box::new(
                Tight::new(
                    Arc::clone(&self.db),
                    Arc::clone(&self.repo),
                    Arc::clone(&self.registry),
                    Arc::clone(&self.meter),
                    true,
                )
                .with_caches(Arc::clone(&self.inference_cache), Arc::clone(&self.artifact_cache)),
            ),
        }
    }

    /// Parses one collaborative query for repeated execution. The SQL text
    /// is parsed exactly once; [`PreparedCollabQuery::run`] can then replay
    /// it under any strategy (the bench harnesses run the same query under
    /// all four configurations).
    pub fn prepare(&self, sql: &str) -> Result<PreparedCollabQuery<'_>> {
        let Statement::Query(query) = parse_statement(sql)? else {
            return Err(crate::Error::Coordinator(
                "collaborative queries are SELECT statements".into(),
            ));
        };
        Ok(PreparedCollabQuery { engine: self, query })
    }

    /// Executes one collaborative query under one strategy.
    pub fn execute(&self, sql: &str, kind: StrategyKind) -> Result<StrategyOutcome> {
        self.prepare(sql)?.run(kind)
    }

    /// Current cache counters at the three levels.
    fn cache_activity(&self) -> CacheActivity {
        CacheActivity {
            plan: self.db.profiler().plan_cache_stats(),
            inference: self.inference_cache.stats(),
            artifact: self.artifact_cache.stats(),
        }
    }

    fn note_run(&self, kind: StrategyKind, wall_nanos: u64, outcome: &StrategyOutcome) {
        let mut totals = self.totals.write();
        let t = totals.entry(kind).or_default();
        t.runs += 1;
        t.wall_nanos += wall_nanos;
        t.loading_nanos += outcome.breakdown.loading.as_nanos() as u64;
        t.inference_nanos += outcome.breakdown.inference.as_nanos() as u64;
        t.relational_nanos += outcome.breakdown.relational.as_nanos() as u64;
        t.transfer_bytes += outcome.sim.transfer_bytes;
        t.cross_system_bytes += outcome.sim.cross_system_bytes;
        t.inference_flops += outcome.sim.inference_flops;
        drop(totals);
        self.transfer_retries
            .fetch_add(outcome.governance.retries as u64, std::sync::atomic::Ordering::Relaxed);
    }

    /// A point-in-time metrics registry: the database's series
    /// (operators, plan cache, latency histogram, task pool) plus
    /// per-strategy run/transfer counters and the inference/artifact
    /// cache levels.
    pub fn metrics_snapshot(&self) -> obs::Registry {
        let mut reg = self.db.metrics_snapshot();
        let totals = self.totals.read();
        for kind in StrategyKind::all() {
            let Some(t) = totals.get(&kind) else { continue };
            let labels: &[(&str, &str)] = &[("strategy", kind.label())];
            reg.counter(
                "collab_strategy_runs_total",
                "Queries run under the strategy",
                labels,
                t.runs,
            );
            reg.counter(
                "collab_strategy_wall_nanoseconds_total",
                "Wall time of strategy executions",
                labels,
                t.wall_nanos,
            );
            reg.counter(
                "collab_strategy_loading_nanoseconds_total",
                "Loading-category time (paper Fig. 8)",
                labels,
                t.loading_nanos,
            );
            reg.counter(
                "collab_strategy_inference_nanoseconds_total",
                "Inference-category time (paper Fig. 8)",
                labels,
                t.inference_nanos,
            );
            reg.counter(
                "collab_strategy_relational_nanoseconds_total",
                "Relational-category time (paper Fig. 8)",
                labels,
                t.relational_nanos,
            );
            reg.counter(
                "collab_strategy_transfer_bytes_total",
                "Simulated host-device transfer bytes",
                labels,
                t.transfer_bytes,
            );
            reg.counter(
                "collab_strategy_cross_system_bytes_total",
                "Bytes crossing the database-DL-system boundary",
                labels,
                t.cross_system_bytes,
            );
            reg.counter(
                "collab_strategy_inference_flops_total",
                "Simulated inference floating-point work",
                labels,
                t.inference_flops,
            );
        }
        let inf = self.inference_cache.stats();
        reg.counter("collab_inference_cache_hits_total", "nUDF memoization hits", &[], inf.hits);
        reg.counter(
            "collab_inference_cache_misses_total",
            "nUDF memoization misses",
            &[],
            inf.misses,
        );
        reg.counter(
            "collab_inference_cache_evictions_total",
            "nUDF memoization evictions",
            &[],
            inf.evictions,
        );
        let art = self.artifact_cache.stats();
        reg.counter(
            "dl2sql_artifact_cache_hits_total",
            "Compiled-artifact reuse hits",
            &[],
            art.hits,
        );
        reg.counter(
            "dl2sql_artifact_cache_misses_total",
            "Compiled-artifact reuse misses",
            &[],
            art.misses,
        );
        reg.counter(
            "dl2sql_artifact_cache_evictions_total",
            "Compiled-artifact reuse evictions",
            &[],
            art.evictions,
        );
        reg.counter(
            "collab_fallbacks_total",
            "Queries rescued by the graceful-degradation chain",
            &[],
            self.fallbacks.load(std::sync::atomic::Ordering::Relaxed),
        );
        reg.counter(
            "collab_transfer_retries_total",
            "DB-DL transfer attempts that had to be retried",
            &[],
            self.transfer_retries.load(std::sync::atomic::Ordering::Relaxed),
        );
        reg
    }
}

/// A collaborative query parsed once, runnable under every strategy.
pub struct PreparedCollabQuery<'a> {
    engine: &'a CollabEngine,
    query: Query,
}

impl PreparedCollabQuery<'_> {
    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Runs the query under `kind` without re-parsing: the strategy
    /// executes under a `strategy:<name>` root span (when the database's
    /// tracer is enabled), and the outcome is annotated with per-level
    /// cache deltas and the span tree.
    ///
    /// When the engine has a [fallback chain](CollabEngine::set_fallback_chain)
    /// and the strategy fails for a recoverable cause, the query is re-run
    /// under the successor kinds in the chain; a rescued outcome records
    /// the originally-requested strategy in
    /// [`GovernanceActivity::fell_back_from`](crate::metrics::GovernanceActivity).
    /// Cancellation and query timeouts propagate immediately.
    pub fn run(&self, kind: StrategyKind) -> Result<StrategyOutcome> {
        let mut current = kind;
        let mut out = self.run_once(current);
        loop {
            let Err(err) = &out else { return out };
            if matches!(
                err.governance(),
                Some(govern::QueryError::Canceled) | Some(govern::QueryError::TimedOut { .. })
            ) {
                return out;
            }
            let chain = self.engine.fallback_chain();
            let Some(pos) = chain.iter().position(|k| *k == current) else { return out };
            let Some(next) = chain.get(pos + 1).copied() else { return out };
            current = next;
            match self.run_once(current) {
                Ok(mut o) => {
                    o.governance.fell_back_from = Some(kind);
                    self.engine.fallbacks.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return Ok(o);
                }
                Err(e) => out = Err(e),
            }
        }
    }

    /// One strategy execution with tracing, cache-delta annotation and
    /// run accounting — no fallback.
    fn run_once(&self, kind: StrategyKind) -> Result<StrategyOutcome> {
        let engine = self.engine;
        let tracer = engine.db.tracer();
        let root = if tracer.is_enabled() {
            tracer.start_root(&format!("strategy:{}", kind.label()))
        } else {
            obs::SpanId::NONE
        };
        let before = engine.cache_activity();
        let start = Instant::now();
        let mut out = engine.strategy(kind).execute_query(&self.query);
        let wall = start.elapsed();
        let cache = CacheActivity::delta(&before, &engine.cache_activity());
        if let Ok(o) = out.as_mut() {
            o.cache = cache;
            engine.note_run(kind, wall.as_nanos() as u64, o);
        }
        if root.is_some() {
            if let Ok(o) = out.as_ref() {
                let b = &o.breakdown;
                tracer.event(
                    root,
                    "breakdown",
                    &format!(
                        "loading={:?} inference={:?} relational={:?}",
                        b.loading, b.inference, b.relational
                    ),
                );
                tracer.event(
                    root,
                    "cache",
                    &format!(
                        "plan={}h/{}m inference={}h/{}m artifact={}h/{}m",
                        cache.plan.hits,
                        cache.plan.misses,
                        cache.inference.hits,
                        cache.inference.misses,
                        cache.artifact.hits,
                        cache.artifact.misses
                    ),
                );
                tracer.event(
                    root,
                    "transfer",
                    &format!(
                        "transfer_bytes={} cross_system_bytes={}",
                        o.sim.transfer_bytes, o.sim.cross_system_bytes
                    ),
                );
            }
            tracer.finish(root);
            let tree = Arc::new(tracer.take_tree(root));
            if let Ok(o) = out.as_mut() {
                o.trace = Some(tree);
            }
        }
        out
    }
}
