//! The engine: one database + one model repository, three strategies.

use std::sync::Arc;

use dl2sql::{ArtifactCache, NeuralRegistry};
use minidb::sql::ast::{Query, Statement};
use minidb::sql::parser::parse_statement;
use minidb::Database;

use crate::cache::InferenceCache;
use crate::error::Result;
use crate::independent::{DlServer, Independent};
use crate::loose::LooseUdf;
use crate::metrics::{InferenceMeter, StrategyOutcome};
use crate::nudf::{ModelRepo, NudfSpec};
use crate::tight::Tight;
use crate::Strategy;

/// Which strategy to run a collaborative query under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Independent processing (DB-PyTorch).
    Independent,
    /// Loose integration (DB-UDF).
    LooseUdf,
    /// Tight integration without the optimizer hints (DL2SQL).
    Tight,
    /// Tight integration with the customized cost model + hints
    /// (DL2SQL-OP).
    TightOptimized,
}

impl StrategyKind {
    /// All four configurations of paper Fig. 8, in its bar order.
    pub fn all() -> [StrategyKind; 4] {
        [
            StrategyKind::Tight,
            StrategyKind::TightOptimized,
            StrategyKind::LooseUdf,
            StrategyKind::Independent,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            StrategyKind::Independent => "DB-PyTorch",
            StrategyKind::LooseUdf => "DB-UDF",
            StrategyKind::Tight => "DL2SQL",
            StrategyKind::TightOptimized => "DL2SQL-OP",
        }
    }
}

/// Shared execution environment for collaborative queries.
///
/// Strategy executions are sequential: each one (re)binds the nUDF names
/// in the shared database to its own implementation before running.
pub struct CollabEngine {
    db: Arc<Database>,
    repo: Arc<ModelRepo>,
    registry: Arc<NeuralRegistry>,
    meter: Arc<InferenceMeter>,
    server: Arc<DlServer>,
    /// nUDF result memoization, shared by all four strategies. Disabled
    /// (capacity 0) by default so the Fig. 8 harnesses keep measuring
    /// cold inference costs; see [`CollabEngine::set_inference_cache_capacity`].
    inference_cache: Arc<InferenceCache>,
    /// Compiled-artifact reuse for the tight strategies. Disabled by
    /// default ("integrated on the fly" is part of what Fig. 8 measures);
    /// see [`CollabEngine::set_artifact_cache_capacity`].
    artifact_cache: Arc<ArtifactCache>,
}

impl CollabEngine {
    /// Builds an engine over an already-populated database and repository
    /// (spawns the DL-serving thread used by the independent strategy).
    ///
    /// The database's `parallelism` knob is propagated to the process-wide
    /// kernel pool, so a `Database::builder().parallelism(n)` engine runs
    /// `neuro`'s conv/linear loops — the DB-UDF and DB-PyTorch inference
    /// paths — on the same number of workers as the SQL executor.
    pub fn new(db: Arc<Database>, repo: Arc<ModelRepo>) -> Self {
        taskpool::set_default_parallelism(db.exec_config().parallelism);
        let meter = InferenceMeter::shared();
        let server = Arc::new(DlServer::start(Arc::clone(&repo), Arc::clone(&meter)));
        CollabEngine {
            db,
            repo,
            registry: NeuralRegistry::shared(),
            meter,
            server,
            inference_cache: Arc::new(InferenceCache::new(0)),
            artifact_cache: Arc::new(ArtifactCache::new(0)),
        }
    }

    /// The shared database.
    pub fn db(&self) -> &Arc<Database> {
        &self.db
    }

    /// The model repository.
    pub fn repo(&self) -> &Arc<ModelRepo> {
        &self.repo
    }

    /// The DL2SQL table registry.
    pub fn registry(&self) -> &Arc<NeuralRegistry> {
        &self.registry
    }

    /// The shared nUDF result-memoization cache.
    pub fn inference_cache(&self) -> &Arc<InferenceCache> {
        &self.inference_cache
    }

    /// The compiled-artifact cache used by the tight strategies.
    pub fn artifact_cache(&self) -> &Arc<ArtifactCache> {
        &self.artifact_cache
    }

    /// Bounds nUDF inference memoization to `capacity` results across all
    /// strategies (0 disables it, the default). Cached results are
    /// bit-identical to uncached ones; only the cost of producing them
    /// changes.
    pub fn set_inference_cache_capacity(&self, capacity: usize) {
        self.inference_cache.set_capacity(capacity);
    }

    /// Bounds compiled-artifact reuse to `capacity` (model, strategy)
    /// compilations (0 disables it, the default — every tight query then
    /// re-integrates its model "on the fly" as the paper describes).
    pub fn set_artifact_cache_capacity(&self, capacity: usize) {
        self.artifact_cache.set_capacity(capacity);
    }

    /// Replaces the model behind an nUDF. The old registration's compiled
    /// artifacts (relational tables + registry roles) are dropped, its
    /// memoized results invalidated, and the new spec registered under a
    /// fresh generation; returns that generation. Registering a brand-new
    /// name degenerates to a plain [`ModelRepo::register`].
    pub fn swap_nudf(&self, spec: NudfSpec) -> u64 {
        if let Some(old) = self.repo.get(&spec.name) {
            let old_generation = self.repo.generation(&spec.name);
            self.artifact_cache.invalidate_model(&self.db, &self.registry, &old.model);
            for v in &old.variants {
                self.artifact_cache.invalidate_model(&self.db, &self.registry, &v.model);
            }
            // Fresh generations stop matching on their own; dropping the
            // old entries now frees their capacity immediately.
            self.inference_cache.invalidate_generation(old_generation);
        }
        self.repo.register(spec)
    }

    /// Instantiates a strategy (sharing the engine's caches).
    pub fn strategy(&self, kind: StrategyKind) -> Box<dyn Strategy + '_> {
        match kind {
            StrategyKind::Independent => Box::new(
                Independent::new(
                    Arc::clone(&self.db),
                    Arc::clone(&self.repo),
                    Arc::clone(&self.server),
                    Arc::clone(&self.meter),
                )
                .with_inference_cache(Arc::clone(&self.inference_cache)),
            ),
            StrategyKind::LooseUdf => Box::new(
                LooseUdf::new(
                    Arc::clone(&self.db),
                    Arc::clone(&self.repo),
                    Arc::clone(&self.meter),
                )
                .with_inference_cache(Arc::clone(&self.inference_cache)),
            ),
            StrategyKind::Tight => Box::new(
                Tight::new(
                    Arc::clone(&self.db),
                    Arc::clone(&self.repo),
                    Arc::clone(&self.registry),
                    Arc::clone(&self.meter),
                    false,
                )
                .with_caches(Arc::clone(&self.inference_cache), Arc::clone(&self.artifact_cache)),
            ),
            StrategyKind::TightOptimized => Box::new(
                Tight::new(
                    Arc::clone(&self.db),
                    Arc::clone(&self.repo),
                    Arc::clone(&self.registry),
                    Arc::clone(&self.meter),
                    true,
                )
                .with_caches(Arc::clone(&self.inference_cache), Arc::clone(&self.artifact_cache)),
            ),
        }
    }

    /// Parses one collaborative query for repeated execution. The SQL text
    /// is parsed exactly once; [`PreparedCollabQuery::run`] can then replay
    /// it under any strategy (the bench harnesses run the same query under
    /// all four configurations).
    pub fn prepare(&self, sql: &str) -> Result<PreparedCollabQuery<'_>> {
        let Statement::Query(query) = parse_statement(sql)? else {
            return Err(crate::Error::Coordinator(
                "collaborative queries are SELECT statements".into(),
            ));
        };
        Ok(PreparedCollabQuery { engine: self, query })
    }

    /// Executes one collaborative query under one strategy.
    pub fn execute(&self, sql: &str, kind: StrategyKind) -> Result<StrategyOutcome> {
        self.prepare(sql)?.run(kind)
    }
}

/// A collaborative query parsed once, runnable under every strategy.
pub struct PreparedCollabQuery<'a> {
    engine: &'a CollabEngine,
    query: Query,
}

impl PreparedCollabQuery<'_> {
    /// The parsed query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Runs the query under `kind` without re-parsing.
    pub fn run(&self, kind: StrategyKind) -> Result<StrategyOutcome> {
        self.engine.strategy(kind).execute_query(&self.query)
    }
}
