//! The **independent processing** strategy (paper "DB-PyTorch").
//!
//! An application-layer coordinator parses the collaborative query, splits
//! it into a database part and a DL part, and moves intermediate results
//! between the two systems. The DL system runs on its own thread behind a
//! byte channel: every keyframe is *actually serialized*, crosses the
//! channel, is deserialized, batch-predicted, and the predictions travel
//! back the same way — the cross-system I/O and (de)serialization costs
//! the paper attributes to this strategy are physically incurred.
//!
//! Execution pipeline per query:
//!
//! 1. run the relational part (`Q_db`: joins + non-nUDF predicates) in the
//!    database, also projecting every nUDF argument,
//! 2. ship argument blobs to the DL server, get predictions back,
//! 3. materialize an intermediate table (base columns + one `__nudf_i`
//!    column per call) back into the database,
//! 4. run the original query, rewritten over the intermediate table with
//!    nUDF calls replaced by their prediction columns.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::{BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Sender};
use minidb::sql::ast::{Expr, FromItem, Query, SelectItem, TableFactor};
use minidb::{Column, Database, Field, Schema, Table};
use neuro::serialize::tensor_from_bytes;

use crate::cache::{BlobKey, InferenceCache, InferenceKey};
use crate::error::{Error, Result};
use crate::metrics::{CostBreakdown, InferenceMeter, StrategyOutcome};
use crate::nudf::ModelRepo;
use crate::query::nudf_calls_in_query;
use crate::Strategy;

// ---------------------------------------------------------------------------
// the DL-serving component
// ---------------------------------------------------------------------------

struct InferRequest {
    nudf: String,
    payload: Bytes,
    reply: Sender<Result<InferResponse>>,
}

struct InferResponse {
    /// One `u32` class id per input tensor.
    payload: Bytes,
}

/// The model-serving process: a thread that owns the model repository's
/// inference side and communicates only via serialized messages.
pub struct DlServer {
    tx: Sender<InferRequest>,
    handle: Option<JoinHandle<()>>,
}

impl DlServer {
    /// Spawns the serving thread.
    pub fn start(repo: Arc<ModelRepo>, meter: Arc<InferenceMeter>) -> Self {
        let (tx, rx) = bounded::<InferRequest>(16);
        let handle = std::thread::spawn(move || {
            while let Ok(req) = rx.recv() {
                let result = serve(&repo, &meter, &req.nudf, &req.payload);
                // A dropped reply receiver just means the client gave up.
                let _ = req.reply.send(result);
            }
        });
        DlServer { tx, handle: Some(handle) }
    }

    /// Sends a batch and waits for predictions, bounding the wait by
    /// `timeout` when given. The `independent.transfer` failpoint sits in
    /// front of the send so fault-injection tests can fail or delay the
    /// cross-system hop deterministically.
    fn infer(
        &self,
        nudf: &str,
        payload: Bytes,
        timeout: Option<Duration>,
    ) -> Result<InferResponse> {
        govern::failpoints::fire("independent.transfer")
            .map_err(|f| Error::Channel(format!("injected transfer fault: {f:?}")))?;
        let (reply_tx, reply_rx) = bounded(1);
        self.tx
            .send(InferRequest { nudf: nudf.to_string(), payload, reply: reply_tx })
            .map_err(|_| Error::Channel("DL server is down".into()))?;
        match timeout {
            Some(limit) => reply_rx.recv_timeout(limit).map_err(|e| match e {
                crossbeam::channel::RecvTimeoutError::Timeout => {
                    Error::Channel(format!("transfer timed out after {limit:?}"))
                }
                crossbeam::channel::RecvTimeoutError::Disconnected => {
                    Error::Channel("DL server dropped the request".into())
                }
            })?,
            None => reply_rx
                .recv()
                .map_err(|_| Error::Channel("DL server dropped the request".into()))?,
        }
    }
}

impl Drop for DlServer {
    fn drop(&mut self) {
        // Closing the channel stops the loop.
        let (tx, _) = bounded(1);
        let _ = std::mem::replace(&mut self.tx, tx);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve(
    repo: &ModelRepo,
    meter: &InferenceMeter,
    nudf: &str,
    payload: &[u8],
) -> Result<InferResponse> {
    let spec = repo.require(nudf)?;
    // Deserialize the batch. A leading flag byte says whether each item
    // carries a model-selection condition (paper Type 3).
    let mut pos = 0usize;
    if payload.is_empty() {
        return Err(Error::Channel("empty request".into()));
    }
    let conditional = payload[0] == 1;
    pos += 1;
    let mut tensors = Vec::new();
    let mut conditions: Vec<Option<f64>> = Vec::new();
    let count = read_u32(payload, &mut pos)? as usize;
    for _ in 0..count {
        let len = read_u32(payload, &mut pos)? as usize;
        if pos + len > payload.len() {
            return Err(Error::Channel("truncated tensor batch".into()));
        }
        tensors.push(tensor_from_bytes(&payload[pos..pos + len])?);
        pos += len;
        if conditional {
            if pos + 8 > payload.len() {
                return Err(Error::Channel("truncated condition value".into()));
            }
            let bits = u64::from_le_bytes(payload[pos..pos + 8].try_into().expect("8 bytes"));
            conditions.push(Some(f64::from_bits(bits)));
            pos += 8;
        } else {
            conditions.push(None);
        }
    }
    // Each keyframe moves onto the serving system's inference device;
    // one synchronous round trip covers the whole batch.
    meter.clock.charge_round_trip();
    for t in &tensors {
        meter.clock.charge_transfer((t.len() * 4) as u64);
    }
    // Batch inference ("nUDF is performed in a batch manner") across the
    // serving system's workers; each item's condition selects the model
    // variant. `run_indexed` returns predictions in request order, so the
    // reply is identical at any worker count.
    let t0 = Instant::now();
    let workers = taskpool::default_parallelism();
    let classes = taskpool::run_indexed(workers, tensors.len(), |i| {
        spec.select_model(conditions[i])
            .forward_with_clock(&tensors[i], Some(&meter.clock))
            .map(|out| out.argmax())
    })
    .into_iter()
    .collect::<std::result::Result<Vec<usize>, _>>()?;
    meter.add(t0.elapsed());
    // Serialize predictions.
    let mut out = BytesMut::with_capacity(4 + 4 * classes.len());
    out.put_u32_le(classes.len() as u32);
    for c in classes {
        out.put_u32_le(c as u32);
    }
    Ok(InferResponse { payload: out.freeze() })
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32> {
    if *pos + 4 > buf.len() {
        return Err(Error::Channel("truncated message".into()));
    }
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().expect("4 bytes"));
    *pos += 4;
    Ok(v)
}

// ---------------------------------------------------------------------------
// the application-layer coordinator
// ---------------------------------------------------------------------------

const INTERMEDIATE_TABLE: &str = "__indep_base";

/// The DB-PyTorch strategy.
pub struct Independent {
    db: Arc<Database>,
    repo: Arc<ModelRepo>,
    server: Arc<DlServer>,
    meter: Arc<InferenceMeter>,
    inference: Arc<InferenceCache>,
    retry: govern::RetryPolicy,
}

impl Independent {
    /// Builds the strategy over a shared database, repository and serving
    /// thread. `meter` must be the one the server was started with.
    pub fn new(
        db: Arc<Database>,
        repo: Arc<ModelRepo>,
        server: Arc<DlServer>,
        meter: Arc<InferenceMeter>,
    ) -> Self {
        Independent {
            db,
            repo,
            server,
            meter,
            inference: Arc::new(InferenceCache::new(0)),
            retry: govern::RetryPolicy::default(),
        }
    }

    /// Attaches a shared result-memoization cache. Memoized keyframes are
    /// answered at the coordinator — they never cross the channel — so
    /// only cache misses are serialized, shipped and scored.
    pub fn with_inference_cache(mut self, inference: Arc<InferenceCache>) -> Self {
        self.inference = inference;
        self
    }

    /// Sets the retry/backoff policy for the DB↔DL transfer.
    pub fn with_retry_policy(mut self, retry: govern::RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// One transfer with bounded retries: transient channel failures are
    /// retried with exponential backoff under the policy's per-call
    /// timeout; anything else propagates immediately. Returns the reply
    /// and how many retries it took.
    fn transfer(&self, nudf: &str, payload: &Bytes) -> Result<(InferResponse, u32)> {
        let attempts = self.retry.max_attempts.max(1);
        let mut last: Option<Error> = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(self.retry.delay(attempt - 1));
            }
            match self.server.infer(nudf, payload.clone(), self.retry.call_timeout) {
                Ok(resp) => return Ok((resp, attempt)),
                // Channel-level failures (server hiccup, per-call timeout,
                // injected fault) are the transient class worth retrying.
                Err(e @ Error::Channel(_)) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(Error::Governance(govern::QueryError::RetryExhausted {
            attempts,
            last: last.map(|e| e.to_string()).unwrap_or_default(),
        }))
    }
}

/// Drops the intermediate table when the coordinator unwinds early, so an
/// errored or canceled query never leaks `__indep_base` into the catalog.
struct IntermediateGuard<'a> {
    db: &'a Database,
    armed: bool,
}

impl Drop for IntermediateGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            let _ = self.db.catalog().drop_table(INTERMEDIATE_TABLE, true);
        }
    }
}

/// Maps a (qualifier, column) reference onto the intermediate table's
/// flattened `binding__column` namespace.
struct Renamer {
    bindings: Vec<(String, Vec<String>)>,
}

impl Renamer {
    fn rename(&self, qualifier: Option<&str>, name: &str) -> Result<String> {
        let mut found = None;
        for (binding, cols) in &self.bindings {
            let qual_ok = qualifier.is_none_or(|q| binding.eq_ignore_ascii_case(q));
            if qual_ok && cols.iter().any(|c| c.eq_ignore_ascii_case(name)) {
                if found.is_some() {
                    return Err(Error::Coordinator(format!("ambiguous column '{name}'")));
                }
                found = Some(format!("{binding}__{name}"));
            }
        }
        found.ok_or_else(|| Error::Coordinator(format!("cannot resolve column '{name}'")))
    }
}

/// Rewrites an expression onto the intermediate table: column references
/// are renamed, nUDF calls become `__nudf_i` references.
fn rewrite(expr: &Expr, calls: &[Expr], renamer: &Renamer) -> Result<Expr> {
    if let Some(i) = calls.iter().position(|c| c == expr) {
        return Ok(Expr::col(&format!("__nudf_{i}")));
    }
    Ok(match expr {
        Expr::Column { qualifier, name } => Expr::col(&renamer.rename(qualifier.as_deref(), name)?),
        Expr::Literal(_) => expr.clone(),
        Expr::Unary { op, expr } => {
            Expr::Unary { op: *op, expr: Box::new(rewrite(expr, calls, renamer)?) }
        }
        Expr::Binary { left, op, right } => Expr::Binary {
            left: Box::new(rewrite(left, calls, renamer)?),
            op: *op,
            right: Box::new(rewrite(right, calls, renamer)?),
        },
        Expr::Function { name, args, star, distinct } => Expr::Function {
            name: name.clone(),
            args: args.iter().map(|a| rewrite(a, calls, renamer)).collect::<Result<_>>()?,
            star: *star,
            distinct: *distinct,
        },
        Expr::Subquery(_) => {
            return Err(Error::Coordinator(
                "scalar subqueries are not supported in collaborative queries".into(),
            ))
        }
    })
}

/// The table binding a keyframe argument belongs to.
fn argument_binding(arg: &Expr, bindings: &[(String, Schema)]) -> Result<String> {
    let Expr::Column { qualifier, name } = arg else {
        return Err(Error::Coordinator("nUDF arguments must be plain keyframe columns".into()));
    };
    if let Some(q) = qualifier {
        return Ok(bindings
            .iter()
            .find(|(b, _)| b.eq_ignore_ascii_case(q))
            .ok_or_else(|| Error::Coordinator(format!("unknown table alias '{q}'")))?
            .0
            .clone());
    }
    let owners: Vec<&String> = bindings
        .iter()
        .filter(|(_, s)| s.fields().iter().any(|f| f.name.eq_ignore_ascii_case(name)))
        .map(|(b, _)| b)
        .collect();
    match owners.as_slice() {
        [one] => Ok((*one).clone()),
        [] => Err(Error::Coordinator(format!("cannot resolve column '{name}'"))),
        _ => Err(Error::Coordinator(format!("ambiguous column '{name}'"))),
    }
}

/// The FROM factor whose binding name is `binding`.
fn find_factor(q: &Query, binding: &str) -> Result<TableFactor> {
    for item in &q.from {
        if item.factor.binding_name().eq_ignore_ascii_case(binding) {
            return Ok(item.factor.clone());
        }
        for j in &item.joins {
            if j.factor.binding_name().eq_ignore_ascii_case(binding) {
                return Ok(j.factor.clone());
            }
        }
    }
    Err(Error::Coordinator(format!("no FROM entry binds '{binding}'")))
}

/// Whether a conjunct references only columns of `binding`.
fn conjunct_local_to(expr: &Expr, binding: &str, bindings: &[(String, Schema)]) -> bool {
    let mut local = true;
    expr.visit(&mut |e| {
        if let Expr::Column { .. } = e {
            match argument_binding(e, bindings) {
                Ok(b) if b.eq_ignore_ascii_case(binding) => {}
                _ => local = false,
            }
        }
    });
    local
}

impl Strategy for Independent {
    fn name(&self) -> &'static str {
        "DB-PyTorch"
    }

    fn execute_query(&self, q: &Query) -> Result<StrategyOutcome> {
        self.meter.reset();
        let mut loading = Duration::ZERO;
        let mut relational = Duration::ZERO;
        let mut transfer_retries = 0u32;

        let calls = nudf_calls_in_query(q, &self.repo);

        // ---- split the predicate -------------------------------------
        let (db_conjuncts, learn_conjuncts): (Vec<Expr>, Vec<Expr>) = match &q.predicate {
            Some(p) => p
                .conjuncts()
                .into_iter()
                .cloned()
                .partition(|c| !crate::query::contains_nudf(c, &self.repo)),
            None => (vec![], vec![]),
        };

        // ---- bindings & schemas ---------------------------------------
        let mut bindings: Vec<(String, Schema)> = Vec::new();
        let mut collect = |factor: &TableFactor| -> Result<()> {
            let TableFactor::Named { name, .. } = factor else {
                return Err(Error::Coordinator(
                    "the coordinator supports plain table references only".into(),
                ));
            };
            let table = self
                .db
                .catalog()
                .table(name)
                .ok_or_else(|| Error::Db(minidb::Error::NotFound(format!("table '{name}'"))))?;
            bindings.push((factor.binding_name().to_string(), table.schema().clone()));
            Ok(())
        };
        for item in &q.from {
            collect(&item.factor)?;
            for j in &item.joins {
                collect(&j.factor)?;
            }
        }

        // ---- phase 1: Q_db --------------------------------------------
        let mut base_projections = Vec::new();
        for (binding, schema) in &bindings {
            for f in schema.fields() {
                base_projections.push(SelectItem::Expr {
                    expr: Expr::qcol(binding, &f.name),
                    alias: Some(format!("{binding}__{}", f.name)),
                });
            }
        }
        for (i, call) in calls.iter().enumerate() {
            let Expr::Function { name, args, .. } = call else {
                unreachable!("calls are functions")
            };
            let spec = self.repo.require(name)?;
            let expected = spec.arg_types().len();
            if args.len() != expected {
                return Err(Error::Coordinator(format!(
                    "{name} takes {expected} argument(s), got {}",
                    args.len()
                )));
            }
            base_projections.push(SelectItem::Expr {
                expr: args[0].clone(),
                alias: Some(format!("__arg_{i}")),
            });
            if spec.is_conditional() {
                base_projections.push(SelectItem::Expr {
                    expr: args[1].clone(),
                    alias: Some(format!("__cond_{i}")),
                });
            }
        }
        let base_query = Query {
            distinct: false,
            projections: base_projections,
            from: q.from.clone(),
            predicate: (!db_conjuncts.is_empty()).then(|| Expr::conjoin(db_conjuncts.clone())),
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        };
        let t0 = Instant::now();
        let base = self.db.run_query(&base_query)?;
        relational += t0.elapsed();

        // ---- phase 2: Q_learning (cross-system) ------------------------
        //
        // The coordination pattern is hand-crafted per query type, as the
        // paper describes ("different collaborative queries usually
        // correspond to different data transformations"):
        //
        // * Types 2 and 3 — `Q_learning` is *gated by* `Q_db`'s output:
        //   the coordinator ships the keyframes of the joined/filtered
        //   rows to the DL system (paying transfer for the intermediate
        //   result),
        // * Types 1 and 4 — no usable dependency: the DL system works
        //   through every keyframe its own table's local predicates admit
        //   (the "unnecessary inference" the DL2SQL-OP hints avoid).
        let qtype = crate::query::classify_query(q, &self.repo);
        let gate_by_qdb =
            matches!(qtype, crate::query::QueryType::Type2 | crate::query::QueryType::Type3);

        let renamer = Renamer {
            bindings: bindings
                .iter()
                .map(|(b, s)| (b.clone(), s.fields().iter().map(|f| f.name.clone()).collect()))
                .collect(),
        };
        let mut prediction_columns: Vec<(String, Column)> = Vec::new();
        for (i, call) in calls.iter().enumerate() {
            let Expr::Function { name, args, .. } = call else { unreachable!() };
            let spec = self.repo.require(name)?;
            let conditional = spec.is_conditional();

            // Build the work list: distinct (keyframe, condition) items,
            // either from the Q_db output or from the nUDF table gated by
            // its own predicates. A conditional nUDF's model choice
            // depends on Q_db output ("Q_learning needs the output of
            // Q_db to determine which neural models should be used"), so
            // it always gates by Q_db.
            let gate = gate_by_qdb || conditional;
            let t_work = Instant::now();
            let mut work_items: Vec<(std::sync::Arc<Vec<u8>>, Option<f64>)> = Vec::new();
            let mut seen: std::collections::HashSet<Vec<u8>> = std::collections::HashSet::new();
            let item_key = |bytes: &[u8], cond: Option<f64>| -> Vec<u8> {
                let mut k = bytes.to_vec();
                if let Some(c) = cond {
                    k.extend_from_slice(&c.to_bits().to_le_bytes());
                }
                k
            };
            let mut push_item = |v: minidb::Value, cond: Option<f64>| -> Result<()> {
                let minidb::Value::Blob(bytes) = v else {
                    return Err(Error::Coordinator("keyframe column is not a blob".into()));
                };
                if seen.insert(item_key(&bytes, cond)) {
                    work_items.push((bytes, cond));
                }
                Ok(())
            };
            if gate {
                let arg_col = base.column_by_name(&format!("__arg_{i}"))?;
                let cond_col = if conditional {
                    Some(base.column_by_name(&format!("__cond_{i}"))?)
                } else {
                    None
                };
                for row in 0..base.num_rows() {
                    let cond =
                        cond_col.map(|c| c.value(row).as_f64()).transpose().map_err(Error::Db)?;
                    push_item(arg_col.value(row), cond)?;
                }
                relational += t_work.elapsed();
            } else {
                let arg_binding = argument_binding(&args[0], &bindings)?;
                let arg_factor = find_factor(q, &arg_binding)?;
                let local_conjuncts: Vec<Expr> = db_conjuncts
                    .iter()
                    .filter(|c| conjunct_local_to(c, &arg_binding, &bindings))
                    .cloned()
                    .collect();
                let learning_query = Query {
                    distinct: false,
                    projections: vec![SelectItem::Expr {
                        expr: args[0].clone(),
                        alias: Some("__arg".into()),
                    }],
                    from: vec![FromItem { factor: arg_factor, joins: vec![] }],
                    predicate: (!local_conjuncts.is_empty())
                        .then(|| Expr::conjoin(local_conjuncts)),
                    group_by: vec![],
                    having: None,
                    order_by: vec![],
                    limit: None,
                };
                let work = self.db.run_query(&learning_query)?;
                let work_col = work.column_by_name("__arg")?;
                for row in 0..work.num_rows() {
                    push_item(work_col.value(row), None)?;
                }
                relational += t_work.elapsed();
            }

            // Answer memoized keyframes at the coordinator: they never
            // cross the channel; only misses are serialized and shipped.
            let generation = self.inference.enabled().then(|| self.repo.generation(name));
            let cache_key = |blob: &std::sync::Arc<Vec<u8>>, cond: Option<f64>| InferenceKey {
                generation: generation.unwrap_or(0),
                condition_bits: cond.map(f64::to_bits),
                blob: BlobKey(std::sync::Arc::clone(blob)),
            };
            let mut by_item: std::collections::HashMap<Vec<u8>, minidb::Value> =
                std::collections::HashMap::with_capacity(work_items.len());
            let mut misses: Vec<(std::sync::Arc<Vec<u8>>, Option<f64>)> = Vec::new();
            let t_partition = Instant::now();
            for (blob, cond) in work_items {
                if generation.is_some() {
                    if let Some(v) = self.inference.get(&cache_key(&blob, cond)) {
                        by_item.insert(item_key(&blob, cond), v);
                        continue;
                    }
                }
                misses.push((blob, cond));
            }
            loading += t_partition.elapsed();

            if !misses.is_empty() {
                // Per-query model loading: the serving system receives the
                // model's script file and deserializes it ("the neural
                // model corresponding to a collaborative query is
                // integrated into the system on the fly").
                let t_model = Instant::now();
                let script = neuro::serialize::save_model(&spec.model);
                let _loaded = neuro::serialize::load_model(&script)?;
                self.meter.add_cross_bytes(script.len() as u64);
                loading += t_model.elapsed();

                // Serialize the work list (loading: data transformation +
                // cross-system I/O). Keyframe blobs already hold the tensor
                // wire format; conditions travel as raw f64 bits.
                let t_ser = Instant::now();
                let mut payload = BytesMut::new();
                payload.put_u8(conditional as u8);
                payload.put_u32_le(misses.len() as u32);
                for (blob, cond) in &misses {
                    payload.put_u32_le(blob.len() as u32);
                    payload.extend_from_slice(blob);
                    if let Some(c) = cond {
                        payload.put_u64_le(c.to_bits());
                    }
                }
                let payload = payload.freeze();
                let request_bytes = payload.len();
                loading += t_ser.elapsed();

                let (response, retries) = self.transfer(name, &payload)?;
                transfer_retries += retries;
                self.meter.add_cross_bytes((request_bytes + response.payload.len()) as u64);

                // Decode predictions and key them by their (keyframe,
                // condition) item (loading).
                let t_de = Instant::now();
                let mut pos = 0usize;
                let count = read_u32(&response.payload, &mut pos)? as usize;
                if count != misses.len() {
                    return Err(Error::Channel(format!(
                        "server returned {count} predictions for {} items",
                        misses.len()
                    )));
                }
                for (blob, cond) in &misses {
                    let class = read_u32(&response.payload, &mut pos)? as usize;
                    let value = spec.output.to_value(class);
                    if generation.is_some() {
                        self.inference.insert(cache_key(blob, *cond), value.clone());
                    }
                    by_item.insert(item_key(blob, *cond), value);
                }
                loading += t_de.elapsed();
            }

            // Attach predictions to the joined base rows. The gated work
            // list came from the base itself; the local work list is a
            // superset of the base's keyframes — the lookup cannot miss.
            let t_attach = Instant::now();
            let arg_col = base.column_by_name(&format!("__arg_{i}"))?;
            let cond_col =
                if conditional { Some(base.column_by_name(&format!("__cond_{i}"))?) } else { None };
            let mut col = Column::empty(spec.output.data_type());
            for row in 0..base.num_rows() {
                let minidb::Value::Blob(bytes) = arg_col.value(row) else {
                    return Err(Error::Coordinator("keyframe column is not a blob".into()));
                };
                let cond =
                    cond_col.map(|c| c.value(row).as_f64()).transpose().map_err(Error::Db)?;
                let v = by_item.get(&item_key(&bytes, cond)).ok_or_else(|| {
                    Error::Coordinator("base row's keyframe missing from the DL work list".into())
                })?;
                col.push(v.clone())?;
            }
            prediction_columns.push((format!("__nudf_{i}"), col));
            loading += t_attach.elapsed();
        }

        // ---- phase 3: materialize the intermediate table ----------------
        let t_mat = Instant::now();
        let mut fields: Vec<Field> = base.schema().fields().to_vec();
        let mut columns: Vec<Column> = base.columns().to_vec();
        for (name, col) in prediction_columns {
            fields.push(Field::new(name, col.data_type()));
            columns.push(col);
        }
        let intermediate = Table::new(Schema::new(fields), columns)?;
        self.db.catalog().create_table(INTERMEDIATE_TABLE, intermediate, true)?;
        let mut guard = IntermediateGuard { db: &self.db, armed: true };
        loading += t_mat.elapsed();

        // ---- phase 4: the rewritten final query --------------------------
        let rewrite_item = |item: &SelectItem| -> Result<SelectItem> {
            Ok(match item {
                SelectItem::Wildcard => {
                    return Err(Error::Coordinator(
                        "SELECT * is not supported in collaborative queries".into(),
                    ))
                }
                SelectItem::Expr { expr, alias } => SelectItem::Expr {
                    expr: rewrite(expr, &calls, &renamer)?,
                    alias: alias.clone(),
                },
            })
        };
        let final_query = Query {
            distinct: q.distinct,
            projections: q.projections.iter().map(rewrite_item).collect::<Result<_>>()?,
            from: vec![FromItem {
                factor: TableFactor::Named { name: INTERMEDIATE_TABLE.into(), alias: None },
                joins: vec![],
            }],
            predicate: if learn_conjuncts.is_empty() {
                None
            } else {
                Some(Expr::conjoin(
                    learn_conjuncts
                        .iter()
                        .map(|c| rewrite(c, &calls, &renamer))
                        .collect::<Result<_>>()?,
                ))
            },
            group_by: q
                .group_by
                .iter()
                .map(|g| rewrite(g, &calls, &renamer))
                .collect::<Result<_>>()?,
            having: q.having.as_ref().map(|h| rewrite(h, &calls, &renamer)).transpose()?,
            order_by: q
                .order_by
                .iter()
                .map(|ob| {
                    Ok(minidb::sql::ast::OrderByItem {
                        expr: rewrite(&ob.expr, &calls, &renamer)?,
                        ascending: ob.ascending,
                    })
                })
                .collect::<Result<_>>()?,
            limit: q.limit,
        };
        let t_final = Instant::now();
        let table = self.db.run_query(&final_query)?;
        relational += t_final.elapsed();

        // Cleanup of the intermediate (coordination overhead).
        let t_drop = Instant::now();
        guard.armed = false;
        self.db.catalog().drop_table(INTERMEDIATE_TABLE, true)?;
        loading += t_drop.elapsed();

        Ok(StrategyOutcome {
            cache: crate::metrics::CacheActivity::default(),
            trace: None,
            table,
            breakdown: CostBreakdown { loading, inference: self.meter.total(), relational },
            sim: self.meter.summary(),
            governance: crate::metrics::GovernanceActivity {
                retries: transfer_retries,
                fell_back_from: None,
            },
        })
    }
}
