//! Collaborative-query analysis: finding nUDF calls and classifying
//! queries into the paper's four types (Table I).

use minidb::sql::ast::{BinOp, Expr, Query, SelectItem, Statement};
use minidb::sql::parser::parse_statement;

use crate::error::{Error, Result};
use crate::nudf::ModelRepo;

/// The four collaborative-query types of paper Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum QueryType {
    /// `Q_db` and `Q_learning` are independent: the nUDF filters one
    /// table, the relational predicates another, with no join tying the
    /// nUDF's input to the relational side.
    Type1,
    /// `Q_db` depends on `Q_learning`: nUDF output feeds an aggregate or
    /// projection.
    Type2,
    /// `Q_learning` depends on `Q_db`: relational predicates (joined to
    /// the nUDF's table) gate which rows reach inference.
    Type3,
    /// Mutual dependence: the nUDF result is compared against another
    /// column (e.g. `F.patternID != nUDF_recog(V.keyframe)`).
    Type4,
}

impl QueryType {
    /// Paper Table I's difficulty column.
    pub fn difficulty(&self) -> &'static str {
        match self {
            QueryType::Type1 => "Easy",
            QueryType::Type2 | QueryType::Type3 => "Medium",
            QueryType::Type4 => "Hard",
        }
    }
}

/// Whether an expression is (or contains) an nUDF call.
pub fn contains_nudf(expr: &Expr, repo: &ModelRepo) -> bool {
    expr.any(&|e| matches!(e, Expr::Function { name, .. } if repo.is_nudf(name)))
}

/// All distinct nUDF call expressions in a query (projections, WHERE,
/// HAVING, ON).
pub fn nudf_calls_in_query(q: &Query, repo: &ModelRepo) -> Vec<Expr> {
    let mut out: Vec<Expr> = Vec::new();
    let mut visit = |expr: &Expr| {
        expr.visit(&mut |e| {
            if let Expr::Function { name, .. } = e {
                if repo.is_nudf(name) && !out.contains(e) {
                    out.push(e.clone());
                }
            }
        });
    };
    for item in &q.projections {
        if let SelectItem::Expr { expr, .. } = item {
            visit(expr);
        }
    }
    if let Some(p) = &q.predicate {
        visit(p);
    }
    if let Some(h) = &q.having {
        visit(h);
    }
    for f in &q.from {
        for j in &f.joins {
            visit(&j.on);
        }
    }
    out
}

/// All WHERE/ON conjuncts of a query.
fn all_conjuncts(q: &Query) -> Vec<Expr> {
    let mut out = Vec::new();
    if let Some(p) = &q.predicate {
        out.extend(p.conjuncts().into_iter().cloned());
    }
    for f in &q.from {
        for j in &f.joins {
            out.extend(j.on.conjuncts().into_iter().cloned());
        }
    }
    out
}

fn is_column_to_column_eq(e: &Expr) -> bool {
    matches!(
        e,
        Expr::Binary { left, op: BinOp::Eq, right }
            if matches!(**left, Expr::Column { .. }) && matches!(**right, Expr::Column { .. })
    )
}

/// Parses and classifies a collaborative query (must be a SELECT).
pub fn classify_sql(sql: &str, repo: &ModelRepo) -> Result<QueryType> {
    let Statement::Query(q) = parse_statement(sql)? else {
        return Err(Error::Coordinator("collaborative queries are SELECT statements".into()));
    };
    Ok(classify_query(&q, repo))
}

/// Classifies a parsed query into its type. Precedence follows the
/// dependency strength: Type 4 (mutual) > Type 2 (`Q_db` ← `Q_learning`)
/// > Type 3 (`Q_learning` ← `Q_db`) > Type 1.
pub fn classify_query(q: &Query, repo: &ModelRepo) -> QueryType {
    let conjuncts = all_conjuncts(q);

    // Type 4: an nUDF compared against something containing a column.
    for c in &conjuncts {
        if let Expr::Binary { left, op, right } = c {
            let comparison = matches!(
                op,
                BinOp::Eq | BinOp::NotEq | BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq
            );
            if comparison {
                let l_udf = contains_nudf(left, repo);
                let r_udf = contains_nudf(right, repo);
                let l_col =
                    left.any(&|e| matches!(e, Expr::Column { .. }) && !contains_nudf(e, repo));
                let r_col = right.any(&|e| matches!(e, Expr::Column { .. }));
                // A column on the opposite side of the nUDF (not merely the
                // nUDF's own argument) ties the two subsystems together.
                if (l_udf && r_col && !r_udf) || (r_udf && l_col && !l_udf) {
                    return QueryType::Type4;
                }
            }
        }
    }

    // Type 2: nUDF inside the select list (typically inside an aggregate).
    let in_projection = q
        .projections
        .iter()
        .any(|item| matches!(item, SelectItem::Expr { expr, .. } if contains_nudf(expr, repo)))
        || q.having.as_ref().is_some_and(|h| contains_nudf(h, repo));
    if in_projection {
        return QueryType::Type2;
    }

    // Type 3 vs Type 1: is the nUDF's input gated by relational
    // predicates through a join?
    let has_nudf_filter = conjuncts.iter().any(|c| contains_nudf(c, repo));
    let has_join = conjuncts.iter().any(is_column_to_column_eq);
    let has_relational_filter =
        conjuncts.iter().any(|c| !contains_nudf(c, repo) && !is_column_to_column_eq(c));
    if has_nudf_filter && has_join && has_relational_filter {
        return QueryType::Type3;
    }
    QueryType::Type1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nudf::{NudfOutput, NudfSpec};
    use std::sync::Arc;

    fn repo() -> ModelRepo {
        let r = ModelRepo::new();
        let model = Arc::new(neuro::zoo::student(vec![1, 4, 4], 2, 1));
        for (name, output) in [
            ("nUDF_detect", NudfOutput::Bool { true_class: 1 }),
            (
                "nUDF_classify",
                NudfOutput::Label { labels: vec!["Floral Pattern".into(), "Stripe".into()] },
            ),
            ("nUDF_recog", NudfOutput::ClassId),
        ] {
            r.register(NudfSpec::new(name, Arc::clone(&model), output, vec![0.5, 0.5]));
        }
        r
    }

    #[test]
    fn classifies_paper_table_i_examples() {
        let repo = repo();
        // Type 1: date filters + nUDF filter, no join.
        let t1 = "SELECT sum(meter) FROM FABRIC F, Video V \
                  WHERE F.printdate>'2021-01-01' and F.printdate<'2021-1-31' \
                  and V.date>'2021-01-01' and V.date<'2021-1-31' \
                  and nUDF_classify(V.keyframe)='Floral Pattern'";
        assert_eq!(classify_sql(t1, &repo).unwrap(), QueryType::Type1);

        // Type 2: nUDF inside an aggregate in the select list.
        let t2 = "SELECT patternID, count(nUDF_detect(V.keyframe)=TRUE)/sum(meter) \
                  FROM FABRIC F, Video V \
                  WHERE F.printdate>'2021-01-01' and F.transID=V.transID \
                  GROUP BY patternID";
        assert_eq!(classify_sql(t2, &repo).unwrap(), QueryType::Type2);

        // Type 3: relational predicates + join + nUDF filter.
        let t3 = "SELECT patternID FROM FABRIC F, Video V \
                  WHERE F.humidity>80 and F.temperature>30 \
                  and F.transID=V.transID and nUDF_detect(V.keyframe)=FALSE";
        assert_eq!(classify_sql(t3, &repo).unwrap(), QueryType::Type3);

        // Type 4: nUDF compared against a column.
        let t4 = "SELECT patternID FROM FABRIC F, Video V \
                  WHERE F.transID=V.transID and F.patternID != nUDF_recog(V.keyframe)";
        assert_eq!(classify_sql(t4, &repo).unwrap(), QueryType::Type4);
    }

    #[test]
    fn difficulty_labels_match_table_i() {
        assert_eq!(QueryType::Type1.difficulty(), "Easy");
        assert_eq!(QueryType::Type2.difficulty(), "Medium");
        assert_eq!(QueryType::Type3.difficulty(), "Medium");
        assert_eq!(QueryType::Type4.difficulty(), "Hard");
    }

    #[test]
    fn finds_distinct_nudf_calls() {
        let repo = repo();
        let sql = "SELECT patternID FROM FABRIC F, Video V \
                   WHERE F.transID = V.transID and nUDF_detect(V.keyframe) = TRUE \
                   and nUDF_classify(V.keyframe) = 'Floral Pattern' \
                   and nUDF_detect(V.keyframe) = TRUE";
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        let calls = nudf_calls_in_query(&q, &repo);
        assert_eq!(calls.len(), 2, "duplicates collapse");
    }

    #[test]
    fn non_select_is_rejected() {
        let repo = repo();
        assert!(classify_sql("DROP TABLE x", &repo).is_err());
    }
}
