//! nUDF specifications and the model repository.
//!
//! An `nUDF` is a named inference function over a keyframe blob. Its
//! semantics are given by a [`NudfSpec`]: which model runs and how the
//! class id maps to a SQL value (`nUDF_detect` returns a boolean,
//! `nUDF_classify` a label string, `nUDF_recog` a numeric id — matching
//! the paper's example queries).

use std::collections::HashMap;
use std::sync::Arc;

use minidb::{DataType, Value};
use neuro::serialize::{tensor_from_bytes, tensor_to_bytes};
use neuro::{Model, Tensor};
use parking_lot::RwLock;

use crate::error::{Error, Result};

/// Serializes a keyframe tensor into a database blob value.
pub fn tensor_to_blob(t: &Tensor) -> Value {
    Value::Blob(Arc::new(tensor_to_bytes(t)))
}

/// Decodes a keyframe blob back into a tensor.
pub fn blob_to_tensor(v: &Value) -> Result<Tensor> {
    match v {
        Value::Blob(bytes) => Ok(tensor_from_bytes(bytes)?),
        other => Err(Error::Coordinator(format!(
            "nUDF argument must be a keyframe blob, got {}",
            other.data_type()
        ))),
    }
}

/// How a model's predicted class id becomes a SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum NudfOutput {
    /// `TRUE` iff the predicted class equals `true_class`
    /// (`nUDF_detect(k) = TRUE`).
    Bool { true_class: usize },
    /// The label string of the predicted class
    /// (`nUDF_classify(k) = 'Floral Pattern'`).
    Label { labels: Vec<String> },
    /// The raw class id as Int64 (`F.patternID != nUDF_recog(k)`).
    ClassId,
}

impl NudfOutput {
    /// The SQL type this output produces.
    pub fn data_type(&self) -> DataType {
        match self {
            NudfOutput::Bool { .. } => DataType::Bool,
            NudfOutput::Label { .. } => DataType::Utf8,
            NudfOutput::ClassId => DataType::Int64,
        }
    }

    /// Maps a predicted class id to the SQL value.
    pub fn to_value(&self, class: usize) -> Value {
        match self {
            NudfOutput::Bool { true_class } => Value::Bool(class == *true_class),
            NudfOutput::Label { labels } => {
                Value::Utf8(labels.get(class).cloned().unwrap_or_else(|| format!("class_{class}")))
            }
            NudfOutput::ClassId => Value::Int64(class as i64),
        }
    }

    /// The histogram over SQL values implied by a class histogram
    /// (feeds [`minidb::ScalarUdf::with_class_probabilities`]). Boolean
    /// outputs fold all non-true classes into `FALSE`.
    pub fn value_histogram(&self, class_probs: &[f64]) -> Vec<(Value, f64)> {
        match self {
            NudfOutput::Bool { true_class } => {
                let p_true = class_probs.get(*true_class).copied().unwrap_or(0.0);
                vec![(Value::Bool(true), p_true), (Value::Bool(false), 1.0 - p_true)]
            }
            NudfOutput::Label { labels } => class_probs
                .iter()
                .enumerate()
                .map(|(i, &p)| {
                    (Value::Utf8(labels.get(i).cloned().unwrap_or_else(|| format!("class_{i}"))), p)
                })
                .collect(),
            NudfOutput::ClassId => {
                class_probs.iter().enumerate().map(|(i, &p)| (Value::Int64(i as i64), p)).collect()
            }
        }
    }
}

/// A condition-selected model variant (paper Type 3: "various models are
/// trained for different humidity and temperature combinations ...
/// Q_learning needs the output of Q_db to determine which neural models
/// should be used").
#[derive(Debug, Clone)]
pub struct ConditionalVariant {
    /// The variant applies when the condition value is ≥ this bound (the
    /// variant with the highest satisfied bound wins).
    pub min_condition: f64,
    /// The model to run.
    pub model: Arc<Model>,
}

/// One registered nUDF: name, model, output semantics, and the class
/// histogram learned offline (paper Eq. 9–10).
#[derive(Debug, Clone)]
pub struct NudfSpec {
    /// SQL function name, e.g. `nUDF_detect` (matched case-insensitively).
    pub name: String,
    /// The (default) model that implements it.
    pub model: Arc<Model>,
    /// Output mapping.
    pub output: NudfOutput,
    /// `Pr(c_i)` per class; empty when unknown.
    pub class_probs: Vec<f64>,
    /// Condition-selected variants; empty for an unconditional nUDF. A
    /// conditional nUDF takes a second (Float64) argument — e.g.
    /// `nUDF_detect_cond(V.keyframe, F.humidity)` — whose value selects
    /// the model.
    pub variants: Vec<ConditionalVariant>,
}

impl NudfSpec {
    /// An unconditional spec.
    pub fn new(
        name: impl Into<String>,
        model: Arc<Model>,
        output: NudfOutput,
        class_probs: Vec<f64>,
    ) -> Self {
        NudfSpec { name: name.into(), model, output, class_probs, variants: Vec::new() }
    }

    /// Whether this nUDF selects its model by a condition argument.
    pub fn is_conditional(&self) -> bool {
        !self.variants.is_empty()
    }

    /// The SQL argument types: `[Blob]`, or `[Blob, Float64]` when
    /// conditional.
    pub fn arg_types(&self) -> Vec<DataType> {
        if self.is_conditional() {
            vec![DataType::Blob, DataType::Float64]
        } else {
            vec![DataType::Blob]
        }
    }

    /// The model for a given condition: the variant with the highest
    /// satisfied `min_condition`, else the default model.
    pub fn select_model(&self, condition: Option<f64>) -> &Arc<Model> {
        if let Some(cond) = condition {
            self.variants
                .iter()
                .filter(|v| cond >= v.min_condition)
                .max_by(|a, b| a.min_condition.total_cmp(&b.min_condition))
                .map(|v| &v.model)
                .unwrap_or(&self.model)
        } else {
            &self.model
        }
    }

    /// Runs the (condition-selected) model on a keyframe blob and maps the
    /// prediction.
    pub fn invoke(&self, blob: &Value, clock: Option<&neuro::SimClock>) -> Result<Value> {
        self.invoke_with_condition(blob, None, clock)
    }

    /// As [`NudfSpec::invoke`], with an explicit condition value.
    pub fn invoke_with_condition(
        &self,
        blob: &Value,
        condition: Option<f64>,
        clock: Option<&neuro::SimClock>,
    ) -> Result<Value> {
        let tensor = blob_to_tensor(blob)?;
        if let Some(c) = clock {
            // The keyframe crosses onto the inference device.
            c.charge_transfer((tensor.len() * 4) as u64);
        }
        let out = self.select_model(condition).forward_with_clock(&tensor, clock)?;
        Ok(self.output.to_value(out.argmax()))
    }
}

/// The repository of task models ("We train a model repository consisting
/// of 20 neural networks for various tasks").
#[derive(Debug, Default)]
pub struct ModelRepo {
    map: RwLock<HashMap<String, (u64, Arc<NudfSpec>)>>,
    /// Source of generation ids: every `register` call claims a fresh one,
    /// so a re-registered (swapped) nUDF can never be confused with its
    /// predecessor by a generation-keyed cache.
    generations: cachekit::Epoch,
}

impl ModelRepo {
    /// An empty repository.
    pub fn new() -> Self {
        ModelRepo::default()
    }

    /// Registers an nUDF spec, returning its generation id. Re-registering
    /// a name assigns a new generation: inference results memoized under
    /// the old one silently stop matching.
    pub fn register(&self, spec: NudfSpec) -> u64 {
        let generation = self.generations.bump();
        self.map.write().insert(spec.name.to_ascii_lowercase(), (generation, Arc::new(spec)));
        generation
    }

    /// Looks up a spec by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<Arc<NudfSpec>> {
        self.map.read().get(&name.to_ascii_lowercase()).map(|(_, s)| Arc::clone(s))
    }

    /// The generation id of a registered nUDF (0 for unknown names; real
    /// generations start at 1).
    pub fn generation(&self, name: &str) -> u64 {
        self.map.read().get(&name.to_ascii_lowercase()).map_or(0, |(g, _)| *g)
    }

    /// Looks up or errors.
    pub fn require(&self, name: &str) -> Result<Arc<NudfSpec>> {
        self.get(name).ok_or_else(|| Error::UnknownNudf(name.to_string()))
    }

    /// Whether `name` is a registered nUDF.
    pub fn is_nudf(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// All registered names.
    pub fn names(&self) -> Vec<String> {
        self.map.read().values().map(|(_, s)| s.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detect_spec() -> NudfSpec {
        NudfSpec::new(
            "nUDF_detect",
            Arc::new(neuro::zoo::student(vec![1, 8, 8], 2, 3)),
            NudfOutput::Bool { true_class: 1 },
            vec![0.9, 0.1],
        )
    }

    #[test]
    fn blob_roundtrip() {
        let t = Tensor::full(vec![1, 4, 4], 0.25);
        let blob = tensor_to_blob(&t);
        assert_eq!(blob_to_tensor(&blob).unwrap(), t);
        assert!(blob_to_tensor(&Value::Int64(1)).is_err());
    }

    #[test]
    fn invoke_maps_class_to_value() {
        let spec = detect_spec();
        let blob = tensor_to_blob(&Tensor::full(vec![1, 8, 8], 0.5));
        let v = spec.invoke(&blob, None).unwrap();
        assert!(matches!(v, Value::Bool(_)));
        // Must agree with the model's own prediction.
        let expected = spec.model.predict(&Tensor::full(vec![1, 8, 8], 0.5)).unwrap();
        assert_eq!(v, Value::Bool(expected == 1));
    }

    #[test]
    fn output_histograms() {
        let b = NudfOutput::Bool { true_class: 1 }.value_histogram(&[0.7, 0.3]);
        assert!(b.contains(&(Value::Bool(true), 0.3)));
        let l =
            NudfOutput::Label { labels: vec!["a".into(), "b".into()] }.value_histogram(&[0.4, 0.6]);
        assert_eq!(l[1], (Value::Utf8("b".into()), 0.6));
        let c = NudfOutput::ClassId.value_histogram(&[1.0]);
        assert_eq!(c[0], (Value::Int64(0), 1.0));
    }

    #[test]
    fn repo_lookup_is_case_insensitive() {
        let repo = ModelRepo::new();
        repo.register(detect_spec());
        assert!(repo.is_nudf("NUDF_DETECT"));
        assert!(repo.require("nudf_detect").is_ok());
        assert!(matches!(repo.require("nudf_ghost"), Err(Error::UnknownNudf(_))));
    }

    #[test]
    fn reregistration_assigns_a_new_generation() {
        let repo = ModelRepo::new();
        assert_eq!(repo.generation("nudf_detect"), 0);
        let g1 = repo.register(detect_spec());
        assert_eq!(repo.generation("NUDF_DETECT"), g1);
        let g2 = repo.register(detect_spec());
        assert!(g2 > g1, "model swap gets a fresh generation");
        assert_eq!(repo.generation("nudf_detect"), g2);
    }

    #[test]
    fn conditional_variant_selection() {
        let low = Arc::new(neuro::zoo::student(vec![1, 8, 8], 2, 10));
        let high = Arc::new(neuro::zoo::student(vec![1, 8, 8], 2, 11));
        let mut spec = detect_spec();
        spec.variants = vec![
            ConditionalVariant { min_condition: 0.0, model: Arc::clone(&low) },
            ConditionalVariant { min_condition: 80.0, model: Arc::clone(&high) },
        ];
        assert!(spec.is_conditional());
        assert_eq!(spec.arg_types().len(), 2);
        assert!(Arc::ptr_eq(spec.select_model(Some(50.0)), &low));
        assert!(Arc::ptr_eq(spec.select_model(Some(85.0)), &high));
        // No condition: the default model.
        assert!(Arc::ptr_eq(spec.select_model(None), &spec.model));

        // The two variants can genuinely disagree on some keyframe.
        let blob = tensor_to_blob(&Tensor::full(vec![1, 8, 8], 0.3));
        let a = spec.invoke_with_condition(&blob, Some(50.0), None).unwrap();
        let b = spec.invoke_with_condition(&blob, Some(85.0), None).unwrap();
        // (Not asserting inequality — weights are random — but both run.)
        let _ = (a, b);
    }

    #[test]
    fn clock_records_transfer_and_flops() {
        let spec = detect_spec();
        let clock = neuro::SimClock::new();
        let blob = tensor_to_blob(&Tensor::full(vec![1, 8, 8], 0.1));
        spec.invoke(&blob, Some(&clock)).unwrap();
        assert!(clock.flops() > 0);
        assert_eq!(clock.transfer_bytes(), 64 * 4);
    }
}
