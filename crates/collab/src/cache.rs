//! nUDF inference memoization.
//!
//! The paper's dashboard workload re-runs the same collaborative queries
//! over a slowly-growing video table: the overwhelming majority of
//! keyframes scored by one query were already scored by the previous one.
//! This module memoizes inference *results* — not tensors, not plans — in
//! a sharded LRU shared by all four strategies, keyed by
//!
//! * the nUDF's **generation id** (assigned by [`ModelRepo::register`];
//!   swapping a model re-registers and gets a fresh generation, so stale
//!   entries stop matching without an explicit flush),
//! * the model-selection **condition** (paper Type 3 nUDFs pick a variant
//!   per row), and
//! * the **full keyframe blob bytes** ([`BlobKey`] hashes and compares
//!   contents, so a hash collision can degrade to a miss but can never
//!   return the wrong row's prediction — cached results stay bit-identical
//!   to uncached ones).
//!
//! The cache is disabled (capacity 0) by default: the Fig. 8 harnesses
//! compare strategies on cold inference costs, and memoization would
//! flatten exactly the differences they measure. Engines opt in via
//! [`crate::CollabEngine::set_inference_cache_capacity`].

use std::hash::{Hash, Hasher};
use std::sync::Arc;

use cachekit::{ShardedLru, StatsSnapshot};
use minidb::Value;

use crate::nudf::ModelRepo;

/// A keyframe blob as a cache key: hashes and compares the *contents*.
#[derive(Debug, Clone)]
pub struct BlobKey(pub Arc<Vec<u8>>);

impl PartialEq for BlobKey {
    fn eq(&self, other: &Self) -> bool {
        self.0.as_slice() == other.0.as_slice()
    }
}
impl Eq for BlobKey {}
impl Hash for BlobKey {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(cachekit::fnv1a(&self.0));
    }
}

/// One memoized inference: which nUDF generation scored which keyframe
/// under which model-selection condition.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct InferenceKey {
    /// The nUDF's generation id in the [`ModelRepo`].
    pub generation: u64,
    /// `f64::to_bits` of the condition argument, `None` when the nUDF is
    /// unconditional. Bits (not the float) so `NaN`/`-0.0` stay distinct
    /// keys rather than poisoning equality.
    pub condition_bits: Option<u64>,
    /// The keyframe contents.
    pub blob: BlobKey,
}

impl InferenceKey {
    /// Builds a key; fails if `value` is not a blob.
    pub fn new(
        generation: u64,
        condition: Option<f64>,
        value: &Value,
    ) -> std::result::Result<Self, crate::Error> {
        let Value::Blob(bytes) = value else {
            return Err(crate::Error::Coordinator("keyframe column is not a blob".into()));
        };
        Ok(InferenceKey {
            generation,
            condition_bits: condition.map(f64::to_bits),
            blob: BlobKey(Arc::clone(bytes)),
        })
    }
}

/// The shared, capacity-bounded nUDF result cache.
pub struct InferenceCache {
    lru: ShardedLru<InferenceKey, Value>,
}

const SHARDS: usize = 8;

impl InferenceCache {
    /// A cache bounded to `capacity` memoized results across all models.
    /// `0` disables it ([`InferenceCache::enabled`] is false and every
    /// strategy skips the lookup entirely).
    pub fn new(capacity: usize) -> Self {
        InferenceCache { lru: ShardedLru::new(capacity, SHARDS) }
    }

    /// Whether memoization is active.
    pub fn enabled(&self) -> bool {
        self.lru.capacity() > 0
    }

    /// Changes the capacity in place (0 disables; shrinking evicts).
    pub fn set_capacity(&self, capacity: usize) {
        self.lru.set_capacity(capacity);
    }

    /// A memoized prediction, refreshing recency.
    pub fn get(&self, key: &InferenceKey) -> Option<Value> {
        self.lru.get(key)
    }

    /// Memoizes one prediction.
    pub fn insert(&self, key: InferenceKey, value: Value) {
        self.lru.insert(key, value);
    }

    /// Drops every entry belonging to generations ≤ `generation` of no
    /// particular name — in practice unnecessary (stale generations age
    /// out via LRU), but exposed for deterministic teardown in tests.
    pub fn invalidate_generation(&self, generation: u64) -> usize {
        self.lru.retain(|k, _| k.generation != generation)
    }

    /// Live memoized results.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Drops all entries (capacity and counters unchanged).
    pub fn clear(&self) {
        self.lru.clear();
    }

    /// Aggregated hit/miss/eviction counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.lru.stats()
    }

    /// Zeroes the counters.
    pub fn reset_stats(&self) {
        self.lru.reset_stats();
    }
}

/// Resolves the generation for `spec_name`, erroring on unknown names so a
/// generation-0 key can never be created by accident.
pub fn generation_for(repo: &ModelRepo, spec_name: &str) -> crate::Result<u64> {
    match repo.generation(spec_name) {
        0 => Err(crate::Error::UnknownNudf(spec_name.to_string())),
        g => Ok(g),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(bytes: &[u8]) -> Value {
        Value::Blob(Arc::new(bytes.to_vec()))
    }

    #[test]
    fn keys_compare_contents_not_pointers() {
        let a = InferenceKey::new(1, None, &blob(b"kf")).unwrap();
        let b = InferenceKey::new(1, None, &blob(b"kf")).unwrap();
        assert_eq!(a, b);
        let c = InferenceKey::new(1, None, &blob(b"other")).unwrap();
        assert_ne!(a, c);
        // Generation and condition discriminate.
        assert_ne!(a, InferenceKey::new(2, None, &blob(b"kf")).unwrap());
        assert_ne!(a, InferenceKey::new(1, Some(0.5), &blob(b"kf")).unwrap());
        assert!(InferenceKey::new(1, None, &Value::Int64(3)).is_err());
    }

    #[test]
    fn memoizes_and_respects_capacity_zero() {
        let cache = InferenceCache::new(16);
        assert!(cache.enabled());
        let k = InferenceKey::new(1, None, &blob(b"kf")).unwrap();
        assert_eq!(cache.get(&k), None);
        cache.insert(k.clone(), Value::Bool(true));
        assert_eq!(cache.get(&k), Some(Value::Bool(true)));

        let off = InferenceCache::new(0);
        assert!(!off.enabled());
        off.insert(k.clone(), Value::Bool(true));
        assert_eq!(off.get(&k), None);
    }

    #[test]
    fn generation_invalidation_removes_only_that_generation() {
        let cache = InferenceCache::new(16);
        let k1 = InferenceKey::new(1, None, &blob(b"a")).unwrap();
        let k2 = InferenceKey::new(2, None, &blob(b"a")).unwrap();
        cache.insert(k1.clone(), Value::Bool(true));
        cache.insert(k2.clone(), Value::Bool(false));
        assert_eq!(cache.invalidate_generation(1), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(&k2), Some(Value::Bool(false)));
    }
}
