//! Error type for the collaborative-query layer.

use std::fmt;

/// Errors from strategy setup or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Database failure.
    Db(minidb::Error),
    /// Tensor-engine failure.
    Neuro(neuro::Error),
    /// DL2SQL compilation/execution failure.
    Dl2Sql(dl2sql::Error),
    /// The query references an nUDF that no model is registered for.
    UnknownNudf(String),
    /// The collaborative query has a shape the coordinator cannot split
    /// (independent strategy only).
    Coordinator(String),
    /// The in-process DL-serving channel failed.
    Channel(String),
    /// A governance failure raised at the coordinator layer itself
    /// (retry exhaustion on the DB↔DL transfer). Failures inside the
    /// database arrive as [`Error::Db`] wrapping the same typed cause.
    Governance(govern::QueryError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Db(e) => write!(f, "database error: {e}"),
            Error::Neuro(e) => write!(f, "tensor engine error: {e}"),
            Error::Dl2Sql(e) => write!(f, "DL2SQL error: {e}"),
            Error::UnknownNudf(name) => write!(f, "no model registered for nUDF '{name}'"),
            Error::Coordinator(msg) => write!(f, "coordinator error: {msg}"),
            Error::Channel(msg) => write!(f, "DL-serving channel error: {msg}"),
            Error::Governance(e) => write!(f, "governance: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<minidb::Error> for Error {
    fn from(e: minidb::Error) -> Self {
        Error::Db(e)
    }
}

impl From<neuro::Error> for Error {
    fn from(e: neuro::Error) -> Self {
        Error::Neuro(e)
    }
}

impl From<dl2sql::Error> for Error {
    fn from(e: dl2sql::Error) -> Self {
        Error::Dl2Sql(e)
    }
}

impl From<govern::QueryError> for Error {
    fn from(e: govern::QueryError) -> Self {
        Error::Governance(e)
    }
}

impl Error {
    /// The governance cause (cancellation, timeout, budget, worker panic,
    /// retry exhaustion), if this error is or wraps one — digs through the
    /// database and DL2SQL layers so callers match on the typed cause
    /// instead of parsing strings.
    pub fn governance(&self) -> Option<&govern::QueryError> {
        match self {
            Error::Governance(e) => Some(e),
            Error::Db(e) => e.governance(),
            Error::Dl2Sql(e) => e.governance(),
            _ => None,
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
