//! Error type for the collaborative-query layer.

use std::fmt;

/// Errors from strategy setup or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Database failure.
    Db(minidb::Error),
    /// Tensor-engine failure.
    Neuro(neuro::Error),
    /// DL2SQL compilation/execution failure.
    Dl2Sql(dl2sql::Error),
    /// The query references an nUDF that no model is registered for.
    UnknownNudf(String),
    /// The collaborative query has a shape the coordinator cannot split
    /// (independent strategy only).
    Coordinator(String),
    /// The in-process DL-serving channel failed.
    Channel(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Db(e) => write!(f, "database error: {e}"),
            Error::Neuro(e) => write!(f, "tensor engine error: {e}"),
            Error::Dl2Sql(e) => write!(f, "DL2SQL error: {e}"),
            Error::UnknownNudf(name) => write!(f, "no model registered for nUDF '{name}'"),
            Error::Coordinator(msg) => write!(f, "coordinator error: {msg}"),
            Error::Channel(msg) => write!(f, "DL-serving channel error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<minidb::Error> for Error {
    fn from(e: minidb::Error) -> Self {
        Error::Db(e)
    }
}

impl From<neuro::Error> for Error {
    fn from(e: neuro::Error) -> Self {
        Error::Neuro(e)
    }
}

impl From<dl2sql::Error> for Error {
    fn from(e: dl2sql::Error) -> Self {
        Error::Dl2Sql(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
