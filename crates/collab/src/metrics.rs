//! The loading / inference / relational cost breakdown (paper Fig. 8).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use neuro::{DeviceProfile, SimClock};

/// Measured costs of one collaborative-query execution, split the way the
/// paper reports them:
///
/// * **loading** — moving models and data into position: model
///   compilation/staging, cross-system transfer and (de)serialization,
///   input staging,
/// * **inference** — time spent inside neural-model prediction,
/// * **relational** — everything the database's relational operators do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostBreakdown {
    pub loading: Duration,
    pub inference: Duration,
    pub relational: Duration,
}

impl CostBreakdown {
    /// Total across the three categories.
    pub fn total(&self) -> Duration {
        self.loading + self.inference + self.relational
    }
}

/// Per-query cache-lookup deltas at the three cache levels, recorded by
/// [`crate::engine::PreparedCollabQuery::run`] around each execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheActivity {
    /// The database's plan cache.
    pub plan: cachekit::StatsSnapshot,
    /// nUDF result memoization.
    pub inference: cachekit::StatsSnapshot,
    /// Compiled-artifact reuse (tight strategies).
    pub artifact: cachekit::StatsSnapshot,
}

impl CacheActivity {
    /// Level-wise difference `after - before` (saturating).
    pub fn delta(before: &CacheActivity, after: &CacheActivity) -> CacheActivity {
        fn sub(a: cachekit::StatsSnapshot, b: cachekit::StatsSnapshot) -> cachekit::StatsSnapshot {
            cachekit::StatsSnapshot {
                hits: a.hits.saturating_sub(b.hits),
                misses: a.misses.saturating_sub(b.misses),
                evictions: a.evictions.saturating_sub(b.evictions),
            }
        }
        CacheActivity {
            plan: sub(after.plan, before.plan),
            inference: sub(after.inference, before.inference),
            artifact: sub(after.artifact, before.artifact),
        }
    }
}

/// Governance activity observed while producing one outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GovernanceActivity {
    /// DB↔DL transfer attempts that had to be retried (independent
    /// strategy; 0 when every transfer succeeded first try).
    pub retries: u32,
    /// When the engine's fallback chain rescued this query, the strategy
    /// that originally failed. `None` for a first-try success.
    pub fell_back_from: Option<crate::engine::StrategyKind>,
}

/// Result of one strategy execution.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// The query's result table.
    pub table: minidb::Table,
    /// Measured wall-time breakdown on the host.
    pub breakdown: CostBreakdown,
    /// Simulated device work accumulated during the run (inference flops,
    /// host↔device transfer bytes) for cross-hardware projection.
    pub sim: SimSummary,
    /// Cache hits/misses this query caused at each cache level (populated
    /// by the engine's prepared-query path; zero when a strategy is driven
    /// directly).
    pub cache: CacheActivity,
    /// Strategy-level span tree, present when the database's tracer was
    /// enabled (populated by the engine's prepared-query path).
    pub trace: Option<Arc<obs::SpanTree>>,
    /// Retries and fallbacks behind this result (retries set by the
    /// strategy, the fallback provenance by the engine's prepared-query
    /// path).
    pub governance: GovernanceActivity,
}

/// Simulated-work summary for device projection (see
/// [`crate::metrics::project_to_device`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimSummary {
    /// Floating-point work of all inference during the query.
    pub inference_flops: u64,
    /// Bytes that would cross a host↔accelerator boundary.
    pub transfer_bytes: u64,
    /// Operator dispatches (kernel launches on a GPU).
    pub dispatches: u64,
    /// Synchronous host↔device round trips (unbatched inference calls).
    pub round_trips: u64,
    /// Bytes crossing the database↔DL-system boundary (independent
    /// strategy only: serialized keyframes, predictions, model files).
    pub cross_system_bytes: u64,
}

impl SimSummary {
    /// Snapshot from a [`SimClock`] plus the cross-system byte count.
    pub fn from_clock(clock: &SimClock, cross_system_bytes: u64) -> Self {
        SimSummary {
            inference_flops: clock.flops(),
            transfer_bytes: clock.transfer_bytes(),
            dispatches: clock.dispatches(),
            round_trips: clock.round_trips(),
            cross_system_bytes,
        }
    }
}

/// Projects a measured breakdown onto a device profile: inference time is
/// recomputed from the flop/transfer ledger; loading and relational parts
/// (CPU-side work) scale with the device's CPU throughput relative to the
/// measurement host, which is taken to be [`host_profile`]; cross-system
/// bytes (independent strategy) are priced at the device's memory/IPC
/// bandwidth and added to loading.
///
/// `workload_scale` multiplies the data-dependent quantities (flops,
/// transfer and cross-system bytes). The paper's keyframes are 224×224×3
/// while this reproduction's default is 12×12×1; passing the element
/// ratio projects the measurement to paper scale (convolution flops and
/// keyframe bytes both grow linearly in the pixel count).
pub fn project_to_device(
    measured: &CostBreakdown,
    sim: &SimSummary,
    device: &DeviceProfile,
    workload_scale: f64,
) -> CostBreakdown {
    project_to_device_with(measured, sim, device, workload_scale, true)
}

/// As [`project_to_device`], with control over whether the strategy's
/// inference can actually use the device's accelerator. DL2SQL runs
/// inference as SQL on the database host's CPU, so its "GPU server" bars
/// use the server CPU for inference — exactly the paper's deployment.
pub fn project_to_device_with(
    measured: &CostBreakdown,
    sim: &SimSummary,
    device: &DeviceProfile,
    workload_scale: f64,
    uses_accelerator: bool,
) -> CostBreakdown {
    let host = host_profile();
    let cpu = device_cpu_side(device);
    let cpu_scale = host.flops_per_sec / cpu.flops_per_sec;
    let k = workload_scale.max(0.0);
    let inference_secs = if uses_accelerator {
        sim.inference_flops as f64 * k / device.flops_per_sec
            + sim.transfer_bytes as f64 * k / device.transfer_bytes_per_sec
            + sim.dispatches as f64 * device.dispatch_latency_sec
            + sim.round_trips as f64 * device.round_trip_sec
    } else {
        sim.inference_flops as f64 * k / cpu.flops_per_sec
    };
    let cross_secs = sim.cross_system_bytes as f64 * k / cpu.transfer_bytes_per_sec;
    CostBreakdown {
        loading: scale(measured.loading, cpu_scale) + Duration::from_secs_f64(cross_secs.max(0.0)),
        inference: Duration::from_secs_f64(inference_secs.max(0.0)),
        relational: scale(measured.relational, cpu_scale),
    }
}

/// The profile assumed for the machine the measurements ran on. The
/// server-CPU profile is the calibration anchor (a laptop/server-class
/// x86 core).
pub fn host_profile() -> DeviceProfile {
    DeviceProfile::server_cpu()
}

/// The CPU that surrounds an accelerator: GPU-resident inference still
/// leaves the relational work on the server CPU.
fn device_cpu_side(device: &DeviceProfile) -> DeviceProfile {
    match device.kind {
        neuro::DeviceKind::ServerGpu => DeviceProfile::server_cpu(),
        _ => *device,
    }
}

fn scale(d: Duration, factor: f64) -> Duration {
    Duration::from_secs_f64((d.as_secs_f64() * factor).max(0.0))
}

/// Shared accumulator the strategies thread through their nUDF closures:
/// wall time spent inside inference, plus the simulated-work clock.
#[derive(Debug, Default)]
pub struct InferenceMeter {
    nanos: AtomicU64,
    cross_bytes: AtomicU64,
    /// Simulated-work ledger (flops, transfers).
    pub clock: SimClock,
}

impl InferenceMeter {
    /// A fresh shared meter.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Adds inference wall time.
    pub fn add(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total recorded inference wall time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Records bytes crossing the database↔DL-system boundary.
    pub fn add_cross_bytes(&self, bytes: u64) {
        self.cross_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Total cross-system bytes recorded.
    pub fn cross_bytes(&self) -> u64 {
        self.cross_bytes.load(Ordering::Relaxed)
    }

    /// A [`SimSummary`] snapshot of this meter.
    pub fn summary(&self) -> SimSummary {
        SimSummary::from_clock(&self.clock, self.cross_bytes())
    }

    /// Resets time and simulated work.
    pub fn reset(&self) {
        self.nanos.store(0, Ordering::Relaxed);
        self.cross_bytes.store(0, Ordering::Relaxed);
        self.clock.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuro::DeviceProfile;

    #[test]
    fn breakdown_totals() {
        let b = CostBreakdown {
            loading: Duration::from_millis(2),
            inference: Duration::from_millis(3),
            relational: Duration::from_millis(5),
        };
        assert_eq!(b.total(), Duration::from_millis(10));
    }

    #[test]
    fn meter_accumulates_and_resets() {
        let m = InferenceMeter::shared();
        m.add(Duration::from_micros(5));
        m.add(Duration::from_micros(7));
        m.clock.charge_flops(100);
        assert_eq!(m.total(), Duration::from_micros(12));
        m.reset();
        assert_eq!(m.total(), Duration::ZERO);
        assert_eq!(m.clock.flops(), 0);
    }

    #[test]
    fn edge_projection_slows_cpu_work() {
        let measured = CostBreakdown {
            loading: Duration::from_millis(10),
            inference: Duration::from_millis(1), // replaced by flops anyway
            relational: Duration::from_millis(10),
        };
        let sim = SimSummary { inference_flops: 2_000_000_000, ..Default::default() };
        let edge = project_to_device(&measured, &sim, &DeviceProfile::edge_cpu(), 1.0);
        // Server CPU -> edge CPU is a 20x slowdown in the profiles.
        assert!(edge.relational > measured.relational * 10);
        // 2 GFLOP on a 2 GFLOP/s edge core ~ 1 s.
        assert!((edge.inference.as_secs_f64() - 1.0).abs() < 0.05);
    }

    #[test]
    fn gpu_projection_moves_cost_from_inference_to_transfer() {
        let measured = CostBreakdown::default();
        let sim = SimSummary {
            inference_flops: 1_000_000,
            transfer_bytes: 80_000_000,
            dispatches: 100,
            ..Default::default()
        };
        let gpu = project_to_device(&measured, &sim, &DeviceProfile::server_gpu(), 1.0);
        // Transfer (10 ms) dominates the trivial compute.
        assert!(gpu.inference.as_secs_f64() > 0.009);
    }
}
