//! The **loose integration** strategy (paper "DB-UDF").
//!
//! The trained model is compiled into a binary artifact
//! ([`neuro::serialize::compile_udf_binary`], the TorchScript→kernel
//! pipeline stand-in), loaded back, and registered as a built-in scalar
//! UDF. The whole collaborative query then runs inside the database — no
//! cross-system I/O — but the UDF is a *black box*: it carries no
//! selectivity or cost metadata, so the optimizer can neither reorder it
//! intelligently nor estimate it (paper Table III).

use std::sync::Arc;
use std::time::{Duration, Instant};

use minidb::sql::ast::Query;
use minidb::{Database, ScalarUdf, Value};

use crate::cache::{InferenceCache, InferenceKey};
use crate::error::Result;
use crate::metrics::{CostBreakdown, InferenceMeter, StrategyOutcome};
use crate::nudf::ModelRepo;
use crate::query::nudf_calls_in_query;
use crate::Strategy;

/// The DB-UDF strategy.
pub struct LooseUdf {
    db: Arc<Database>,
    repo: Arc<ModelRepo>,
    meter: Arc<InferenceMeter>,
    batched: bool,
    inference: Arc<InferenceCache>,
}

impl LooseUdf {
    /// Builds the strategy over the shared database and repository
    /// (row-at-a-time UDFs, like a stock ClickHouse scalar UDF).
    pub fn new(db: Arc<Database>, repo: Arc<ModelRepo>, meter: Arc<InferenceMeter>) -> Self {
        LooseUdf { db, repo, meter, batched: false, inference: Arc::new(InferenceCache::new(0)) }
    }

    /// A variant registering *vectorized* UDFs: the whole keyframe column
    /// is fed to the model in one call ("nUDF is performed in a batch
    /// manner"), amortizing per-call overhead and the host↔device round
    /// trip. Used by the batched-UDF ablation harness.
    pub fn new_batched(
        db: Arc<Database>,
        repo: Arc<ModelRepo>,
        meter: Arc<InferenceMeter>,
    ) -> Self {
        LooseUdf { db, repo, meter, batched: true, inference: Arc::new(InferenceCache::new(0)) }
    }

    /// Attaches a shared result-memoization cache. A memoized row skips
    /// the device round trip entirely; only misses are (re)scored.
    pub fn with_inference_cache(mut self, inference: Arc<InferenceCache>) -> Self {
        self.inference = inference;
        self
    }
}

impl Strategy for LooseUdf {
    fn name(&self) -> &'static str {
        "DB-UDF"
    }

    fn execute_query(&self, q: &Query) -> Result<StrategyOutcome> {
        self.meter.reset();
        let calls = nudf_calls_in_query(q, &self.repo);

        // ---- loading: compile → binary → load → register ---------------
        let mut loading = Duration::ZERO;
        for call in &calls {
            let minidb::sql::ast::Expr::Function { name, .. } = call else { continue };
            let spec = self.repo.require(name)?;
            let t0 = Instant::now();
            // "The model compilation component is responsible for compiling
            // a DL model to binary files that can be directly used by a
            // database kernel." Conditional nUDFs compile every variant.
            let compile = |m: &neuro::Model| -> Result<Arc<neuro::Model>> {
                let binary = neuro::serialize::compile_udf_binary(m);
                // Linking the binary moves the weights onto the inference
                // device once per query.
                self.meter.clock.charge_transfer(binary.len() as u64);
                Ok(Arc::new(neuro::serialize::load_udf_binary(&binary)?))
            };
            // Rebuild the spec around the compiled binaries, so model
            // selection behaves identically to the repository's.
            let mut compiled = crate::nudf::NudfSpec::new(
                spec.name.clone(),
                compile(&spec.model)?,
                spec.output.clone(),
                spec.class_probs.clone(),
            );
            for v in &spec.variants {
                compiled.variants.push(crate::nudf::ConditionalVariant {
                    min_condition: v.min_condition,
                    model: compile(&v.model)?,
                });
            }
            let compiled = Arc::new(compiled);

            let meter = Arc::clone(&self.meter);
            let row_spec = Arc::clone(&compiled);
            let memo = Arc::clone(&self.inference);
            let generation = self.repo.generation(&spec.name);
            let mut udf = ScalarUdf::new(
                &spec.name,
                spec.arg_types(),
                spec.output.data_type(),
                move |args| {
                    let condition = args.get(1).map(|v| v.as_f64()).transpose()?;
                    let key = if memo.enabled() {
                        let key = InferenceKey::new(generation, condition, &args[0])
                            .map_err(|e| minidb::Error::Exec(e.to_string()))?;
                        if let Some(v) = memo.get(&key) {
                            // Memoized: no round trip to the device.
                            return Ok(v);
                        }
                        Some(key)
                    } else {
                        None
                    };
                    // Row-at-a-time UDF inference: every call is a
                    // synchronous round trip to the inference device.
                    meter.clock.charge_round_trip();
                    let t = Instant::now();
                    let out = row_spec
                        .invoke_with_condition(&args[0], condition, Some(&meter.clock))
                        .map_err(|e| minidb::Error::Exec(e.to_string()))?;
                    meter.add(t.elapsed());
                    if let Some(key) = key {
                        memo.insert(key, out.clone());
                    }
                    Ok(out)
                },
            );
            if self.batched {
                let meter = Arc::clone(&self.meter);
                let batch_spec = Arc::clone(&compiled);
                let memo = Arc::clone(&self.inference);
                let output = spec.output.clone();
                udf = udf.with_batch(move |cols| {
                    let col = &cols[0];
                    // Partition the batch into memoized rows and misses.
                    let mut values: Vec<Option<Value>> = vec![None; col.len()];
                    let mut misses: Vec<(usize, Value, Option<f64>, Option<InferenceKey>)> =
                        Vec::new();
                    for (row, slot) in values.iter_mut().enumerate() {
                        let condition = cols.get(1).map(|c| c.value(row).as_f64()).transpose()?;
                        let value = col.value(row);
                        let key = if memo.enabled() {
                            let key = InferenceKey::new(generation, condition, &value)
                                .map_err(|e| minidb::Error::Exec(e.to_string()))?;
                            if let Some(v) = memo.get(&key) {
                                *slot = Some(v);
                                continue;
                            }
                            Some(key)
                        } else {
                            None
                        };
                        misses.push((row, value, condition, key));
                    }
                    if !misses.is_empty() {
                        // One round trip covers the whole batch of misses,
                        // which the task pool scores in parallel.
                        // `run_indexed` keeps results in row order, so the
                        // output column is identical at any worker count.
                        meter.clock.charge_round_trip();
                        let t0 = Instant::now();
                        let workers = taskpool::default_parallelism();
                        let scored = taskpool::run_indexed(workers, misses.len(), |i| {
                            let (_, value, condition, _) = &misses[i];
                            batch_spec.invoke_with_condition(value, *condition, Some(&meter.clock))
                        });
                        meter.add(t0.elapsed());
                        for ((row, _, _, key), scored) in misses.into_iter().zip(scored) {
                            let v = scored.map_err(|e| minidb::Error::Exec(e.to_string()))?;
                            if let Some(key) = key {
                                memo.insert(key, v.clone());
                            }
                            values[row] = Some(v);
                        }
                    }
                    let mut out = minidb::Column::empty(output.data_type());
                    for v in values {
                        out.push(v.expect("every row memoized or scored"))?;
                    }
                    Ok(out)
                });
            }
            self.db.register_udf(udf);
            loading += t0.elapsed();
        }

        // The stock optimizer: no UDF hints, no customized cost model. The
        // fusion knob is sticky per database (harnesses toggle it to force
        // the unfused join+group-by pair).
        self.db.swap_cost_model(Arc::new(minidb::DefaultCostModel::default()));
        self.db.swap_optimizer_config(minidb::optimizer::OptimizerConfig {
            fuse_join_aggregates: self.db.optimizer_config().fuse_join_aggregates,
            ..Default::default()
        });

        // ---- run entirely inside the database ---------------------------
        let t_run = Instant::now();
        let table = self.db.run_query(q)?;
        let total_run = t_run.elapsed();
        let inference = self.meter.total();

        Ok(StrategyOutcome {
            cache: crate::metrics::CacheActivity::default(),
            trace: None,
            table,
            breakdown: CostBreakdown {
                loading,
                inference,
                relational: total_run.saturating_sub(inference),
            },
            sim: self.meter.summary(),
            governance: crate::metrics::GovernanceActivity::default(),
        })
    }
}
