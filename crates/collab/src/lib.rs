//! `collab` — collaborative query processing.
//!
//! A *collaborative query* combines relational predicates (`Q_db`) with
//! neural inference calls (`Q_learning`, written as `nUDF_*` functions).
//! This crate implements the paper's three processing strategies behind
//! one [`Strategy`] interface, over the same database and model
//! repository, so they are directly comparable:
//!
//! * [`independent`] — **DB-PyTorch**: an application layer splits the
//!   query, ships intermediate results to a DL-serving component over a
//!   real byte channel (serialization and cross-system I/O included), and
//!   recombines,
//! * [`loose`] — **DB-UDF**: models are compiled to binaries and linked
//!   into the database as scalar UDFs; the query runs entirely in the
//!   database but the UDF is a black box to the optimizer,
//! * [`tight`] — **DL2SQL / DL2SQL-OP**: inference itself is SQL over
//!   relational tables; with `optimized` set, the customized cost model
//!   and the hint rules of paper Sec. IV-B are active.
//!
//! [`query`] classifies collaborative queries into the paper's Types 1–4
//! (Table I); [`metrics`] carries the loading/inference/relational cost
//! breakdown every experiment reports.

pub mod cache;
pub mod engine;
pub mod error;
pub mod independent;
pub mod loose;
pub mod metrics;
pub mod nudf;
pub mod query;
pub mod tight;

pub use cache::{InferenceCache, InferenceKey};
pub use engine::{CollabEngine, PreparedCollabQuery, StrategyKind};
pub use error::{Error, Result};
pub use metrics::{CacheActivity, CostBreakdown, StrategyOutcome};
pub use nudf::{
    blob_to_tensor, tensor_to_blob, ConditionalVariant, ModelRepo, NudfOutput, NudfSpec,
};
pub use query::{classify_query, classify_sql, QueryType};

/// The strategy interface all three implementations share.
pub trait Strategy {
    /// Display name ("DB-PyTorch", "DB-UDF", "DL2SQL", "DL2SQL-OP").
    fn name(&self) -> &'static str;

    /// Executes an already-parsed collaborative query, returning the
    /// result table and the cost breakdown. This is the primitive the
    /// repeated-execution paths ([`CollabEngine::prepare`], the bench
    /// harnesses) call so the SQL text is parsed exactly once.
    fn execute_query(&self, q: &minidb::sql::ast::Query) -> Result<StrategyOutcome>;

    /// Parses `sql` and delegates to [`Strategy::execute_query`].
    fn execute(&self, sql: &str) -> Result<StrategyOutcome> {
        let minidb::sql::ast::Statement::Query(q) = minidb::sql::parser::parse_statement(sql)?
        else {
            return Err(Error::Coordinator("collaborative queries are SELECT statements".into()));
        };
        self.execute_query(&q)
    }
}
