//! The **tight integration** strategy (paper "DL2SQL" / "DL2SQL-OP").
//!
//! The model is turned into relational tables and its inference pathway
//! into SQL ([`dl2sql`]); an nUDF call in a collaborative query executes
//! that SQL program inside the same database. The optimized variant
//! additionally installs the customized cost model (paper Eq. 3–8) and
//! attaches the nUDF's class histogram and cost so the hint rules of
//! Sec. IV-B (placement, symmetric hash join) can fire.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dl2sql::{hints, ArtifactCache, NeuralRegistry, PreJoinStrategy, Runner};
use minidb::sql::ast::Query;
use minidb::{Database, ScalarUdf};

use crate::cache::{InferenceCache, InferenceKey};
use crate::error::Result;
use crate::metrics::{CostBreakdown, InferenceMeter, StrategyOutcome};
use crate::nudf::{blob_to_tensor, ModelRepo};
use crate::query::nudf_calls_in_query;
use crate::Strategy;

/// The DL2SQL strategy; `optimized` selects DL2SQL-OP.
pub struct Tight {
    db: Arc<Database>,
    repo: Arc<ModelRepo>,
    registry: Arc<NeuralRegistry>,
    meter: Arc<InferenceMeter>,
    optimized: bool,
    inference: Arc<InferenceCache>,
    artifacts: Arc<ArtifactCache>,
}

impl Tight {
    /// Builds the strategy over the shared database and repository. Both
    /// caches start disabled, preserving the paper's per-query
    /// "integrated on the fly" loading cost; [`Tight::with_caches`]
    /// attaches the engine's shared caches.
    pub fn new(
        db: Arc<Database>,
        repo: Arc<ModelRepo>,
        registry: Arc<NeuralRegistry>,
        meter: Arc<InferenceMeter>,
        optimized: bool,
    ) -> Self {
        Tight {
            db,
            repo,
            registry,
            meter,
            optimized,
            inference: Arc::new(InferenceCache::new(0)),
            artifacts: Arc::new(ArtifactCache::new(0)),
        }
    }

    /// Attaches shared result-memoization and compiled-artifact caches
    /// (capacity 0 in either leaves that level cold).
    pub fn with_caches(
        mut self,
        inference: Arc<InferenceCache>,
        artifacts: Arc<ArtifactCache>,
    ) -> Self {
        self.inference = inference;
        self.artifacts = artifacts;
        self
    }
}

impl Strategy for Tight {
    fn name(&self) -> &'static str {
        if self.optimized {
            "DL2SQL-OP"
        } else {
            "DL2SQL"
        }
    }

    fn execute_query(&self, q: &Query) -> Result<StrategyOutcome> {
        self.meter.reset();
        let calls = nudf_calls_in_query(q, &self.repo);

        // ---- loading: model → relational tables -------------------------
        let mut loading = Duration::ZERO;
        for call in &calls {
            let minidb::sql::ast::Expr::Function { name, .. } = call else { continue };
            let spec = self.repo.require(name)?;
            let t0 = Instant::now();
            // "Integrated into the system on the fly": the model — and,
            // for a conditional nUDF, every condition-selected variant —
            // is loaded from its source representation into relational
            // tables per query. With the artifact cache enabled, a warm
            // query reuses the previous compilation instead.
            let make_runner = |m: &Arc<neuro::Model>| -> Result<Arc<Runner>> {
                Ok(self.artifacts.runner_for(&self.db, &self.registry, m, PreJoinStrategy::None)?)
            };
            let default_runner = make_runner(&spec.model)?;
            let mut variant_runners: Vec<(f64, Arc<Runner>)> = Vec::new();
            for v in &spec.variants {
                variant_runners.push((v.min_condition, make_runner(&v.model)?));
            }
            loading += t0.elapsed();

            // Deterministic per-inference flop count for device projection.
            let probe_clock = neuro::SimClock::new();
            let probe = neuro::Tensor::zeros(spec.model.input_shape.clone());
            spec.model.forward_with_clock(&probe, Some(&probe_clock))?;
            let flops_per_inference = probe_clock.flops();

            let meter = Arc::clone(&self.meter);
            let output = spec.output.clone();
            let memo = Arc::clone(&self.inference);
            let generation = self.repo.generation(&spec.name);
            let mut udf = ScalarUdf::new(
                &spec.name,
                spec.arg_types(),
                spec.output.data_type(),
                move |args| {
                    let condition = args.get(1).map(|v| v.as_f64()).transpose()?;
                    let key = if memo.enabled() {
                        let key = InferenceKey::new(generation, condition, &args[0])
                            .map_err(|e| minidb::Error::Exec(e.to_string()))?;
                        if let Some(v) = memo.get(&key) {
                            // Memoized: no SQL program runs, no flops.
                            return Ok(v);
                        }
                        Some(key)
                    } else {
                        None
                    };
                    let tensor =
                        blob_to_tensor(&args[0]).map_err(|e| minidb::Error::Exec(e.to_string()))?;
                    // Condition-selected SQL program (paper Type 3).
                    let runner = match condition {
                        Some(cond) => variant_runners
                            .iter()
                            .filter(|(min, _)| cond >= *min)
                            .max_by(|a, b| a.0.total_cmp(&b.0))
                            .map(|(_, r)| r)
                            .unwrap_or(&default_runner),
                        None => &default_runner,
                    };
                    let t = Instant::now();
                    let out =
                        runner.infer(&tensor).map_err(|e| minidb::Error::Exec(e.to_string()))?;
                    meter.add(t.elapsed());
                    meter.clock.charge_flops(flops_per_inference);
                    let value = output.to_value(out.predicted_class);
                    if let Some(key) = key {
                        memo.insert(key, value.clone());
                    }
                    Ok(value)
                },
            )
            // Cost per row scales with model size (the customized model's
            // placement rule only needs relative magnitudes).
            .with_cost(spec.model.param_count() as f64);
            if self.optimized && !spec.class_probs.is_empty() {
                udf = udf.with_class_probabilities(spec.output.value_histogram(&spec.class_probs));
            }
            self.db.register_udf(udf);
        }

        // ---- optimizer configuration -------------------------------------
        if self.optimized {
            hints::enable_op(&self.db, Arc::clone(&self.registry));
        } else {
            hints::disable_op(&self.db);
        }

        // ---- run entirely inside the database -----------------------------
        let t_run = Instant::now();
        let table = self.db.run_query(q)?;
        let total_run = t_run.elapsed();
        let inference = self.meter.total();

        Ok(StrategyOutcome {
            cache: crate::metrics::CacheActivity::default(),
            trace: None,
            table,
            breakdown: CostBreakdown {
                loading,
                inference,
                relational: total_run.saturating_sub(inference),
            },
            sim: self.meter.summary(),
            governance: crate::metrics::GovernanceActivity::default(),
        })
    }
}

impl Tight {
    /// The per-step SQL timing of one standalone inference — the data
    /// behind paper Fig. 9. Compiles the nUDF's model and runs one
    /// keyframe through the SQL program.
    pub fn profile_inference(
        &self,
        nudf: &str,
        keyframe: &neuro::Tensor,
    ) -> Result<dl2sql::InferenceOutcome> {
        let spec = self.repo.require(nudf)?;
        let runner = self.artifacts.runner_for(
            &self.db,
            &self.registry,
            &spec.model,
            PreJoinStrategy::None,
        )?;
        Ok(runner.infer(keyframe)?)
    }
}
