//! Cross-strategy integration tests: all four strategy configurations
//! must return identical result tables for every query type of paper
//! Table I, over the same database and models.

use std::sync::Arc;

use collab::{
    classify_query, tensor_to_blob, CollabEngine, ModelRepo, NudfOutput, NudfSpec, QueryType,
    StrategyKind,
};
use minidb::sql::ast::Statement;
use minidb::sql::parser::parse_statement;
use minidb::{Column, DataType, Database, Field, Schema, Table, Value};
use neuro::Tensor;

const KEYFRAME_SHAPE: [usize; 3] = [1, 8, 8];

fn keyframe(seed: u64) -> Tensor {
    // Deterministic pseudo-random frame.
    let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let data: Vec<f32> = (0..64)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f32 / 500.0 - 1.0
        })
        .collect();
    Tensor::new(KEYFRAME_SHAPE.to_vec(), data).unwrap()
}

/// A miniature textile-printing database: fabric + video.
fn build_db() -> Arc<Database> {
    let db = Database::new();
    let n = 40usize;
    let trans: Vec<i64> = (0..n as i64).collect();
    let pattern: Vec<i64> = (0..n).map(|i| (i % 4) as i64).collect();
    let meter: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let printdate: Vec<i32> = (0..n)
        .map(|i| minidb::value::parse_date("2021-01-01").unwrap() + (i % 40) as i32)
        .collect();
    let humidity: Vec<f64> = (0..n).map(|i| 60.0 + (i % 40) as f64).collect();
    let fabric = Table::new(
        Schema::new(vec![
            Field::new("transID", DataType::Int64),
            Field::new("patternID", DataType::Int64),
            Field::new("meter", DataType::Float64),
            Field::new("printdate", DataType::Date),
            Field::new("humidity", DataType::Float64),
        ]),
        vec![
            Column::Int64(trans.clone()),
            Column::Int64(pattern),
            Column::Float64(meter),
            Column::Date(printdate.clone()),
            Column::Float64(humidity),
        ],
    )
    .unwrap();
    db.catalog().create_table("fabric", fabric, false).unwrap();

    let frames: Vec<Value> = (0..n as u64).map(|i| tensor_to_blob(&keyframe(i))).collect();
    let mut blob_col = Column::empty(DataType::Blob);
    for f in frames {
        blob_col.push(f).unwrap();
    }
    let video = Table::new(
        Schema::new(vec![
            Field::new("transID", DataType::Int64),
            Field::new("date", DataType::Date),
            Field::new("keyframe", DataType::Blob),
        ]),
        vec![Column::Int64(trans), Column::Date(printdate), blob_col],
    )
    .unwrap();
    db.catalog().create_table("video", video, false).unwrap();
    Arc::new(db)
}

fn build_repo() -> Arc<ModelRepo> {
    let repo = ModelRepo::new();
    let detect = Arc::new(neuro::zoo::student(KEYFRAME_SHAPE.to_vec(), 2, 41));
    let classify = Arc::new(neuro::zoo::student(KEYFRAME_SHAPE.to_vec(), 3, 42));
    let recog = Arc::new(neuro::zoo::student(KEYFRAME_SHAPE.to_vec(), 4, 43));
    repo.register(NudfSpec::new(
        "nUDF_detect",
        detect,
        NudfOutput::Bool { true_class: 1 },
        vec![0.8, 0.2],
    ));
    repo.register(NudfSpec::new(
        "nUDF_classify",
        classify,
        NudfOutput::Label { labels: vec!["Floral Pattern".into(), "Stripe".into(), "Dots".into()] },
        vec![0.3, 0.4, 0.3],
    ));
    repo.register(NudfSpec::new("nUDF_recog", recog, NudfOutput::ClassId, vec![0.25; 4]));
    Arc::new(repo)
}

/// Sorts a table's rows textually for order-insensitive comparison.
fn canonical(table: &Table) -> Vec<String> {
    let mut rows: Vec<String> = (0..table.num_rows())
        .map(|r| {
            (0..table.num_columns())
                .map(|c| match table.column(c).value(r) {
                    Value::Float64(f) => format!("{f:.6}"),
                    v => v.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    rows.sort();
    rows
}

fn assert_all_strategies_agree(engine: &CollabEngine, sql: &str) {
    let mut reference: Option<(StrategyKind, Vec<String>)> = None;
    for kind in StrategyKind::all() {
        let outcome = engine
            .execute(sql, kind)
            .unwrap_or_else(|e| panic!("{} failed on {sql}: {e}", kind.label()));
        let rows = canonical(&outcome.table);
        match &reference {
            None => reference = Some((kind, rows)),
            Some((ref_kind, ref_rows)) => assert_eq!(
                &rows,
                ref_rows,
                "{} disagrees with {} on {sql}",
                kind.label(),
                ref_kind.label()
            ),
        }
        // Sanity on the breakdown: nothing negative, inference happened
        // whenever an nUDF was involved.
        assert!(outcome.breakdown.total() > std::time::Duration::ZERO);
    }
}

fn query_type(sql: &str, repo: &ModelRepo) -> QueryType {
    let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
    classify_query(&q, repo)
}

#[test]
fn type1_query_agrees_across_strategies() {
    let engine = CollabEngine::new(build_db(), build_repo());
    let sql = "SELECT sum(meter) AS total FROM fabric F, video V \
               WHERE F.printdate > '2021-01-05' and F.printdate < '2021-01-15' \
               and V.date > '2021-01-05' and V.date < '2021-01-15' \
               and nUDF_classify(V.keyframe) = 'Floral Pattern'";
    assert_eq!(query_type(sql, engine.repo()), QueryType::Type1);
    assert_all_strategies_agree(&engine, sql);
}

#[test]
fn type2_query_agrees_across_strategies() {
    let engine = CollabEngine::new(build_db(), build_repo());
    let sql = "SELECT patternID, count(nUDF_detect(V.keyframe) = TRUE) / sum(meter) AS rate \
               FROM fabric F, video V \
               WHERE F.transID = V.transID GROUP BY patternID ORDER BY patternID";
    assert_eq!(query_type(sql, engine.repo()), QueryType::Type2);
    assert_all_strategies_agree(&engine, sql);
}

#[test]
fn type3_query_agrees_across_strategies() {
    let engine = CollabEngine::new(build_db(), build_repo());
    let sql = "SELECT F.transID FROM fabric F, video V \
               WHERE F.humidity > 80 and F.transID = V.transID \
               and nUDF_detect(V.keyframe) = FALSE ORDER BY F.transID";
    assert_eq!(query_type(sql, engine.repo()), QueryType::Type3);
    assert_all_strategies_agree(&engine, sql);
}

#[test]
fn type4_query_agrees_across_strategies() {
    let engine = CollabEngine::new(build_db(), build_repo());
    let sql = "SELECT F.patternID, F.transID FROM fabric F, video V \
               WHERE F.transID = V.transID and F.patternID != nUDF_recog(V.keyframe) \
               ORDER BY F.transID";
    assert_eq!(query_type(sql, engine.repo()), QueryType::Type4);
    assert_all_strategies_agree(&engine, sql);
}

#[test]
fn results_match_a_hand_computed_oracle() {
    // Independently compute the Type-3 answer with the tensor engine and
    // plain filtering.
    let db = build_db();
    let repo = build_repo();
    let engine = CollabEngine::new(Arc::clone(&db), Arc::clone(&repo));
    let sql = "SELECT F.transID FROM fabric F, video V \
               WHERE F.humidity > 80 and F.transID = V.transID \
               and nUDF_detect(V.keyframe) = FALSE ORDER BY F.transID";
    let outcome = engine.execute(sql, StrategyKind::TightOptimized).unwrap();

    let spec = repo.require("nUDF_detect").unwrap();
    let mut expected = Vec::new();
    for t in 0..40u64 {
        let humidity = 60.0 + (t % 40) as f64;
        if humidity <= 80.0 {
            continue;
        }
        let pred = spec.model.predict(&keyframe(t)).unwrap();
        if pred != 1 {
            expected.push(t as i64);
        }
    }
    let got: Vec<i64> =
        (0..outcome.table.num_rows()).map(|r| outcome.table.column(0).i64_at(r)).collect();
    assert_eq!(got, expected);
    assert!(!expected.is_empty(), "oracle should select some rows");
}

#[test]
fn conditional_nudf_agrees_across_strategies_and_oracle() {
    // Paper Type 3's defining semantics: the humidity value (Q_db output)
    // selects which model variant runs.
    let db = build_db();
    let repo = build_repo();
    let base = Arc::new(neuro::zoo::student(KEYFRAME_SHAPE.to_vec(), 2, 61));
    let high = Arc::new({
        let mut m = neuro::zoo::student(KEYFRAME_SHAPE.to_vec(), 2, 62);
        m.name = "student_high_humidity".into();
        m
    });
    let mut spec = NudfSpec::new(
        "nUDF_detect_cond",
        Arc::clone(&base),
        NudfOutput::Bool { true_class: 1 },
        vec![0.5, 0.5],
    );
    spec.variants = vec![
        collab::ConditionalVariant { min_condition: f64::NEG_INFINITY, model: Arc::clone(&base) },
        collab::ConditionalVariant { min_condition: 80.0, model: Arc::clone(&high) },
    ];
    repo.register(spec);
    let engine = CollabEngine::new(Arc::clone(&db), Arc::clone(&repo));

    let sql = "SELECT F.transID FROM fabric F, video V \
               WHERE F.humidity > 70 and F.transID = V.transID \
               and nUDF_detect_cond(V.keyframe, F.humidity) = TRUE ORDER BY F.transID";
    let mut reference: Option<Vec<String>> = None;
    for kind in StrategyKind::all() {
        let out =
            engine.execute(sql, kind).unwrap_or_else(|e| panic!("{} failed: {e}", kind.label()));
        let rows = canonical(&out.table);
        match &reference {
            None => reference = Some(rows),
            Some(expected) => assert_eq!(&rows, expected, "{} diverges", kind.label()),
        }
    }

    // Oracle: recompute with direct model selection.
    let mut expected = Vec::new();
    for t in 0..40u64 {
        let humidity = 60.0 + (t % 40) as f64;
        if humidity <= 70.0 {
            continue;
        }
        let model = if humidity >= 80.0 { &high } else { &base };
        if model.predict(&keyframe(t)).unwrap() == 1 {
            expected.push(t.to_string());
        }
    }
    assert_eq!(reference.unwrap(), expected);
    // The two variants must actually disagree somewhere for this test to
    // mean anything.
    let disagree = (0..40u64)
        .any(|t| base.predict(&keyframe(t)).unwrap() != high.predict(&keyframe(t)).unwrap());
    assert!(disagree, "variants never disagree — weak test setup");
}

#[test]
fn batched_loose_udf_matches_row_at_a_time() {
    use collab::loose::LooseUdf;
    use collab::metrics::InferenceMeter;
    use collab::Strategy;
    let db = build_db();
    let repo = build_repo();
    let meter = InferenceMeter::shared();
    let sql = "SELECT F.transID FROM fabric F, video V \
               WHERE F.transID = V.transID and nUDF_detect(V.keyframe) = TRUE ORDER BY F.transID";
    let row_wise =
        LooseUdf::new(Arc::clone(&db), Arc::clone(&repo), Arc::clone(&meter)).execute(sql).unwrap();
    let batched = LooseUdf::new_batched(Arc::clone(&db), Arc::clone(&repo), Arc::clone(&meter))
        .execute(sql)
        .unwrap();
    assert_eq!(canonical(&row_wise.table), canonical(&batched.table));
    // Batching collapses the per-row round trips.
    assert_eq!(batched.sim.round_trips, 1);
    assert!(row_wise.sim.round_trips > 1);
}

#[test]
fn optimized_tight_prunes_inference_on_selective_queries() {
    // With a highly selective relational predicate, DL2SQL-OP should run
    // fewer inferences than plain DL2SQL (the placement hint delays the
    // nUDF past the join).
    let engine = CollabEngine::new(build_db(), build_repo());
    let sql = "SELECT F.transID FROM fabric F, video V \
               WHERE F.humidity > 97 and F.transID = V.transID \
               and nUDF_detect(V.keyframe) = FALSE ORDER BY F.transID";
    let plain = engine.execute(sql, StrategyKind::Tight).unwrap();
    let optimized = engine.execute(sql, StrategyKind::TightOptimized).unwrap();
    assert_eq!(canonical(&plain.table), canonical(&optimized.table));
    // The hint can only reduce (or keep equal) inference work.
    assert!(
        optimized.sim.inference_flops <= plain.sim.inference_flops,
        "OP ran more inference work than plain DL2SQL"
    );
}
