//! Hermetic stand-in for the `bytes` crate (API subset).
//!
//! `Bytes` is a cheaply-cloneable immutable byte buffer, `BytesMut` an
//! appendable one, and `BufMut` the little-endian put interface — the
//! surface the wire protocol in `collab::independent` serializes through.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Arc<Vec<u8>>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::new(data.to_vec()))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::new(v))
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends a byte slice.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes(Arc::new(self.0))
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Little-endian append interface.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, data: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, data: &[u8]) {
        self.0.extend_from_slice(data);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, data: &[u8]) {
        self.extend_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u32_le(0xA1B2C3D4);
        b.put_u64_le(7);
        b.extend_from_slice(b"xy");
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 1 + 4 + 8 + 2);
        assert_eq!(frozen[0], 1);
        assert_eq!(&frozen[1..5], &0xA1B2C3D4u32.to_le_bytes());
        assert_eq!(&frozen[13..], b"xy");
    }
}
