//! Hermetic stand-in for the `rand` crate (API subset of rand 0.10).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer and float ranges — everything the
//! workspace uses. The generator is xoshiro256++ seeded through SplitMix64,
//! so streams are deterministic per seed (the reproduction only relies on
//! determinism, not on matching upstream rand's exact stream).

use std::ops::Range;

/// Core generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range-sampling extension (rand 0.10 spelling).
pub trait RngExt: RngCore {
    /// A uniform sample from a half-open range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: RngCore> RngExt for R {}

/// Ranges that can produce uniform samples.
pub trait SampleRange<T> {
    /// Draws one sample using `rng`.
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<G: RngCore + ?Sized>(self, rng: &mut G) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x: i64 = a.random_range(-5i64..5);
            assert_eq!(x, b.random_range(-5i64..5));
            assert!((-5..5).contains(&x));
            let f: f64 = a.random_range(1.0..2.0);
            assert_eq!(f, b.random_range(1.0..2.0));
            assert!((1.0..2.0).contains(&f));
        }
        // Different seeds diverge.
        let mut c = StdRng::seed_from_u64(8);
        let diverged = (0..10).any(|_| a.random_range(0u64..1 << 60) != c.random_range(0u64..1 << 60));
        assert!(diverged);
    }
}
