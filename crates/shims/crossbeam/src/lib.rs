//! Hermetic stand-in for the `crossbeam` crate (API subset).
//!
//! Only `channel::bounded` and its `Sender`/`Receiver` pair are provided —
//! the DL-serving byte channel in `collab::independent` is the sole user.
//! Backed by `std::sync::mpsc::sync_channel`, which has the same
//! disconnect-on-drop and bounded-backpressure semantics.

/// Multi-producer channels.
pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// The sending half of a bounded channel.
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Send failed: the receiver disconnected. Carries the message back.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Receive failed: all senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Timed receive failed: either nothing arrived in time or all
    /// senders disconnected.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Creates a bounded channel with the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Receives a message, giving up after `timeout`.
        pub fn recv_timeout(
            &self,
            timeout: std::time::Duration,
        ) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout).map_err(|e| match e {
                std::sync::mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                std::sync::mpsc::RecvTimeoutError::Disconnected => {
                    RecvTimeoutError::Disconnected
                }
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::bounded;

    #[test]
    fn send_recv_and_disconnect() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv().unwrap(), 2);
        drop(tx);
        assert!(rx.recv().is_err());
        let (tx2, rx2) = bounded::<i32>(1);
        drop(rx2);
        assert!(tx2.send(9).is_err());
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        use super::channel::RecvTimeoutError;
        use std::time::Duration;
        let (tx, rx) = bounded(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(7));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
