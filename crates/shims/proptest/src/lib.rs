//! Hermetic stand-in for the `proptest` crate (API subset).
//!
//! Implements the `proptest!` macro, the [`Strategy`] trait with
//! `prop_map`, range/tuple/vec/select/bool/string strategies, and the
//! `prop_assert*`/`prop_assume!` macros. Sampling is deterministic (seeded
//! per test by case index), there is no shrinking, and a failing case
//! panics with the assertion message — the property corpus in this
//! workspace only needs generation + assertion, not minimization.

use std::fmt;
use std::ops::Range;

/// Per-test configuration (subset: `cases`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for struct-update compatibility; unused.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failing-case error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected-case error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic generator driving all strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator; `proptest!` derives the seed from the property
    /// name and case index so every run replays the same corpus.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5DEE_CE66_D1CE_4E5B }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..n` (`n > 0`).
    pub fn index(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// A `&str` is a regex-shaped string strategy. Only the `.{lo,hi}` form
/// the workspace uses is interpreted (printable ASCII of bounded length);
/// any other pattern generates bounded printable strings too.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = lo + rng.index(hi - lo + 1);
        (0..len)
            .map(|_| {
                // Mostly printable ASCII with occasional exotic chars so
                // parser fuzz tests still see unicode.
                match rng.index(20) {
                    0 => '√',
                    1 => 'é',
                    _ => (0x20u8 + rng.index(0x5f) as u8) as char,
                }
            })
            .collect()
    }
}

fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A / 0),
    (A / 0, B / 1),
    (A / 0, B / 1, C / 2),
    (A / 0, B / 1, C / 2, D / 3),
    (A / 0, B / 1, C / 2, D / 3, E / 4),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8),
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5, G / 6, H / 7, I / 8, J / 9),
);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Lengths accepted by [`vec`]: an exact `usize` or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// Lower and upper bound (inclusive) on the length.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1).max(self.start))
        }
    }

    /// Strategy for vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        lo: usize,
        hi: usize,
    }

    /// A vector strategy with the given element strategy and size.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (lo, hi) = size.bounds();
        VecStrategy { element, lo, hi }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.lo + rng.index(self.hi - self.lo + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Uniform `bool` strategy type.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniform `true`/`false`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Sampling from fixed collections.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set.
    #[derive(Debug, Clone)]
    pub struct Select<T>(Vec<T>);

    /// A strategy drawing one of `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select over empty options");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.index(self.0.len())].clone()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            // Stable per-property seed: hash of the property name.
            let mut seed: u64 = 0xcbf29ce484222325;
            for b in stringify!($name).bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
            }
            let mut rejected: u32 = 0;
            let mut case: u64 = 0;
            let mut passed: u32 = 0;
            while passed < config.cases {
                if rejected > config.cases * 16 {
                    panic!(
                        "property {}: too many rejected cases ({} rejections for {} target cases)",
                        stringify!($name), rejected, config.cases
                    );
                }
                let mut rng = $crate::TestRng::seed_from_u64(seed ^ case.wrapping_mul(0x9E3779B97F4A7C15));
                case += 1;
                let strategy = ($($strategy,)+);
                let ($($pat,)+) = $crate::Strategy::generate(&strategy, &mut rng);
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property {} failed at case {}: {}", stringify!($name), case - 1, msg);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        #[test]
        fn ranges_and_tuples((a, b) in (0i64..10, -5i64..0), s in ".{0,12}", flag in crate::bool::ANY) {
            prop_assume!(a != 3);
            prop_assert!((0..10).contains(&a));
            prop_assert!((-5..0).contains(&b));
            prop_assert!(s.chars().count() <= 12);
            prop_assert_eq!(flag || !flag, true);
        }

        #[test]
        fn vec_and_select_and_map(v in crate::collection::vec(0i32..5, 1..4), pick in crate::sample::select(vec!["x", "y"]), m in (1usize..3).prop_map(|n| n * 2)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(pick == "x" || pick == "y");
            prop_assert!(m == 2 || m == 4);
        }
    }
}
