//! Hermetic stand-in for the `criterion` crate (API subset).
//!
//! Implements `Criterion::bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros. Each
//! benchmark runs a short warm-up, then `sample_size` timed samples, and
//! prints the median per-iteration time — enough to compare runs by hand
//! without statistical machinery.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted, not used for sizing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20, measurement_time: Duration::from_millis(500) }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: Vec::new(), budget: self.measurement_time, rounds: self.sample_size };
        f(&mut b);
        b.samples.sort();
        let median = b.samples.get(b.samples.len() / 2).copied().unwrap_or_default();
        println!("bench: {name:<40} median {:>12.3} µs ({} samples)", median.as_secs_f64() * 1e6, b.samples.len());
        self
    }
}

/// Per-benchmark timing context.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    rounds: usize,
}

impl Bencher {
    /// Times a routine, one sample per call batch.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up + per-sample iteration count so fast routines are timed
        // over many calls.
        let warm = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm.elapsed() < self.budget / 10 || warm_iters < 1 {
            std::hint::black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1000 {
                break;
            }
        }
        let per_sample = warm_iters.max(1);
        for _ in 0..self.rounds {
            let t0 = Instant::now();
            for _ in 0..per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed() / per_sample);
        }
    }

    /// Times a routine over inputs built by `setup` (setup excluded).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.rounds {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

/// Declares a benchmark group as a callable function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        c.bench_function("batched", |b| {
            b.iter_batched(|| 2u64, |x| x * 2, BatchSize::SmallInput)
        });
    }
}
