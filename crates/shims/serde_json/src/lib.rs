//! Hermetic stand-in for the `serde_json` crate (API subset).
//!
//! The bench harnesses only *emit* JSON records (one line per data point),
//! so this provides a [`Value`] tree, the [`json!`] constructor macro over
//! flat literals, `Display` rendering with proper string escaping, and
//! string-keyed `Index`/`IndexMut` with object auto-insertion. No parsing,
//! no serde integration.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (held as `f64`; the harness values are small).
    Number(f64),
    /// A JSON string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for non-objects/missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

macro_rules! number_from {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(v as f64)
            }
        }

        impl From<&$t> for Value {
            fn from(v: &$t) -> Self {
                Value::Number(*v as f64)
            }
        }
    )*};
}

number_from!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, f32, f64);

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    out.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    out.write_str("\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(n) if n.is_finite() => write!(f, "{n}"),
            Value::Number(_) => f.write_str("null"),
            Value::String(s) => escape_into(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if let Value::Null = self {
            *self = Value::Object(Vec::new());
        }
        let Value::Object(pairs) = self else {
            panic!("cannot index non-object JSON value with a string key");
        };
        if let Some(pos) = pairs.iter().position(|(k, _)| k == key) {
            &mut pairs[pos].1
        } else {
            pairs.push((key.to_string(), Value::Null));
            &mut pairs.last_mut().expect("just pushed").1
        }
    }
}

impl Index<String> for Value {
    type Output = Value;

    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        self.index_mut(key.as_str())
    }
}

/// Builds a [`Value`] from a JSON-shaped literal. Object values and array
/// elements may be arbitrary expressions (converted via `Into<Value>`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![ $( ($key.to_string(), $crate::Value::from($val)) ),* ])
    };
    ($other:expr) => { $crate::Value::from($other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_indexes() {
        let mut v = json!({"a": 1, "b": "x\"y", "c": 2.5, "d": true});
        v["e"] = json!(7usize);
        v[format!("f_{}", 1)] = json!("z");
        assert_eq!(
            v.to_string(),
            r#"{"a":1,"b":"x\"y","c":2.5,"d":true,"e":7,"f_1":"z"}"#
        );
        assert_eq!(json!([1, 2]).to_string(), "[1,2]");
        assert_eq!(json!(null).to_string(), "null");
    }
}
