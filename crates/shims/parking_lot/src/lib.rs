//! Hermetic stand-in for the `parking_lot` crate.
//!
//! This workspace builds with no registry access, so the third-party
//! facades it uses are vendored as minimal local implementations with the
//! same package name and API subset. This one wraps `std::sync` locks and
//! strips the poisoning layer (a panic while holding a lock propagates on
//! the panicking thread; subsequent lockers simply proceed), which is the
//! parking_lot behavior the engine relies on.

use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard, TryLockError,
};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// A reader-writer lock whose guards never report poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = StdReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = StdWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_and_rwlock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let rw = RwLock::new(vec![1, 2]);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
