//! Criterion microbenchmarks over the reproduction's core building
//! blocks: SQL parsing, hash joins, aggregation, native inference, and the
//! DL2SQL conv step. These complement the per-table/figure harness
//! binaries in `src/bin/` (run those with `cargo run -p bench --bin ...`).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use minidb::Database;

fn bench_parser(c: &mut Criterion) {
    let sql = "SELECT patternID, count(nUDF_detect(V.keyframe) = TRUE) / sum(meter) AS rate \
               FROM fabric F, video V \
               WHERE F.printdate >= '2021-01-01' and F.printdate < '2021-02-01' \
               and F.transID = V.transID GROUP BY patternID ORDER BY patternID";
    c.bench_function("parse_collaborative_query", |b| {
        b.iter(|| minidb::sql::parser::parse_statement(std::hint::black_box(sql)).unwrap())
    });
}

fn join_db(rows: i64) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE a (k Int64, v Float64)").unwrap();
    db.execute("CREATE TABLE b (k Int64, w Float64)").unwrap();
    let av: Vec<String> = (0..rows).map(|i| format!("({}, {}.5)", i % 997, i)).collect();
    let bv: Vec<String> = (0..rows / 4).map(|i| format!("({}, {}.25)", i % 997, i)).collect();
    db.execute(&format!("INSERT INTO a VALUES {}", av.join(","))).unwrap();
    db.execute(&format!("INSERT INTO b VALUES {}", bv.join(","))).unwrap();
    db
}

fn bench_hash_join(c: &mut Criterion) {
    let db = join_db(8_000);
    // Parse + plan once; the hot loop only executes.
    let prepared = db.prepare("SELECT count(*) FROM a, b WHERE a.k = b.k").unwrap();
    c.bench_function("hash_join_8k_x_2k", |b| {
        b.iter(|| prepared.run().unwrap().table().column(0).i64_at(0))
    });
}

fn bench_group_by(c: &mut Criterion) {
    let db = join_db(8_000);
    let prepared = db.prepare("SELECT k, SUM(v), AVG(v) FROM a GROUP BY k").unwrap();
    c.bench_function("group_by_8k_rows_997_groups", |b| {
        b.iter(|| prepared.run().unwrap().rows_affected())
    });
}

/// The tentpole's speedup case: the same join + group-by executed at
/// `parallelism` 1 vs 4 (morsel-driven probe and partial aggregates).
fn bench_parallelism(c: &mut Criterion) {
    for workers in [1usize, 4] {
        let db = minidb::Database::builder().parallelism(workers).build();
        db.execute("CREATE TABLE a (k Int64, v Float64)").unwrap();
        db.execute("CREATE TABLE b (k Int64, w Float64)").unwrap();
        let rows = 64_000i64;
        let av: Vec<String> = (0..rows).map(|i| format!("({}, {}.5)", i % 997, i)).collect();
        let bv: Vec<String> = (0..rows / 4).map(|i| format!("({}, {}.25)", i % 997, i)).collect();
        db.execute(&format!("INSERT INTO a VALUES {}", av.join(","))).unwrap();
        db.execute(&format!("INSERT INTO b VALUES {}", bv.join(","))).unwrap();
        let join = db.prepare("SELECT count(*) FROM a, b WHERE a.k = b.k").unwrap();
        let agg = db.prepare("SELECT k, SUM(v), AVG(v) FROM a GROUP BY k").unwrap();
        c.bench_function(&format!("join_64k_parallelism_{workers}"), |b| {
            b.iter(|| join.run().unwrap().table().column(0).i64_at(0))
        });
        c.bench_function(&format!("group_by_64k_parallelism_{workers}"), |b| {
            b.iter(|| agg.run().unwrap().rows_affected())
        });
    }
}

fn bench_native_inference(c: &mut Criterion) {
    let model = neuro::zoo::student(vec![1, 12, 12], 6, 7);
    let input = neuro::Tensor::full(vec![1, 12, 12], 0.5);
    c.bench_function("native_student_inference", |b| {
        b.iter(|| model.predict(std::hint::black_box(&input)).unwrap())
    });
}

fn bench_sql_inference(c: &mut Criterion) {
    let db = Arc::new(Database::new());
    let registry = dl2sql::NeuralRegistry::shared();
    let model = neuro::zoo::student(vec![1, 12, 12], 6, 7);
    let compiled = Arc::new(dl2sql::compile_model(&db, &registry, &model).unwrap());
    let runner = dl2sql::Runner::new(Arc::clone(&db), registry, compiled).unwrap();
    let input = neuro::Tensor::full(vec![1, 12, 12], 0.5);
    c.bench_function("dl2sql_student_inference", |b| {
        b.iter(|| runner.infer(std::hint::black_box(&input)).unwrap().predicted_class)
    });
}

fn bench_model_compilation(c: &mut Criterion) {
    let model = neuro::zoo::student(vec![1, 12, 12], 6, 7);
    c.bench_function("compile_student_to_sql", |b| {
        b.iter_batched(
            || (Arc::new(Database::new()), dl2sql::NeuralRegistry::shared()),
            |(db, registry)| dl2sql::compile_model(&db, &registry, &model).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parser, bench_hash_join, bench_group_by, bench_parallelism,
              bench_native_inference, bench_sql_inference, bench_model_compilation
}
criterion_main!(benches);
