//! Paper Fig. 12: estimated vs. actual cost of the convolution query,
//! varying (a) kernel size and (b) input feature-map size, under the
//! default database cost model and the customized DL2SQL model.
//!
//! Cost-model outputs are abstract units; like the paper they are
//! normalized into time with a measured ratio `r`. The paper uses a
//! sequential-scan calibration; in this engine, cost units are
//! row-touches, whose time-per-unit differs between scans and joins, so
//! each model is calibrated once on the smallest configuration of each
//! sweep and then asked to *predict* the remaining configurations — the
//! question Fig. 12 poses is exactly whether the model's cost scales the
//! way the actual running time does.
//!
//! Expected shape (paper): the customized model tracks the actual running
//! time much more closely than the default model across both sweeps.

use std::sync::Arc;
use std::time::Instant;

use dl2sql::{compile_model, Dl2SqlCostModel, NeuralRegistry};
use minidb::{Database, DefaultCostModel};
use neuro::{Model, Tensor};

use bench::Report;

const REPS: usize = 10;

/// One conv layer as a model (output stays a feature map — no head).
fn conv_only_model(fmap: usize, kernel: usize, name: &str) -> Model {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let conv = neuro::zoo::conv_layer(&mut rng, 1, 8, kernel, 1, 0);
    Model::new(name, vec![1, fmap, fmap], 0, vec![conv])
}

struct Point {
    label: String,
    actual_ms: f64,
    default_cost: f64,
    custom_cost: f64,
}

fn measure(db: &Arc<Database>, registry: &Arc<NeuralRegistry>, model: &Model) -> Point {
    let compiled = compile_model(db, registry, model).expect("conv model compiles");
    // Stage the input and materialize the feature map (the Reshape step).
    let input = Tensor::full(model.input_shape.clone(), 0.5);
    dl2sql::storage::load_state_table(db, registry, &compiled.input_table, &input)
        .expect("input stages");
    for stmt in &compiled.steps[0].statements {
        db.execute(stmt).expect("staging runs");
    }
    // The conv query (Q1) without its CREATE wrapper.
    let create = &compiled.steps[1].statements[0];
    let select = &create[create.find("SELECT").expect("statement embeds a SELECT")..];
    let fm_table = create.split_whitespace().nth(3).map(str::to_string);
    let _ = fm_table;

    // Actual running time (median of REPS).
    let mut times = Vec::with_capacity(REPS);
    for _ in 0..REPS {
        let t0 = Instant::now();
        db.execute(select).expect("conv query runs");
        times.push(t0.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    let actual = times[REPS / 2];

    let default_cost = db
        .estimate_with(select, &DefaultCostModel::clickhouse_like())
        .expect("default estimate")
        .cost;
    let custom_cost = db
        .estimate_with(select, &Dl2SqlCostModel::new(Arc::clone(registry)))
        .expect("custom estimate")
        .cost;

    Point { label: model.name.clone(), actual_ms: actual * 1e3, default_cost, custom_cost }
}

fn main() {
    let db = Arc::new(Database::new());
    let registry = NeuralRegistry::shared();

    let mut report = Report::new(
        "Fig 12: cost-model estimates vs actual conv time (ms, log-scale in the paper)",
        &["Config", "Actual", "Default est.", "Customized est.", "Default err", "Custom err"],
    );

    let mut default_errs = Vec::new();
    let mut custom_errs = Vec::new();
    // (a) kernel-size sweep at a fixed 16x16 feature map.
    let sweep_a: Vec<Point> = [1usize, 3, 5, 7]
        .iter()
        .map(|&k| measure(&db, &registry, &conv_only_model(16, k, &format!("fig12a_k{k}"))))
        .collect();
    // (b) feature-map sweep at a fixed 3x3 kernel.
    let sweep_b: Vec<Point> = [8usize, 12, 16, 24]
        .iter()
        .map(|&f| measure(&db, &registry, &conv_only_model(f, 3, &format!("fig12b_f{f}"))))
        .collect();

    for sweep in [sweep_a, sweep_b] {
        // Calibrate each model on the sweep's smallest configuration.
        let r_default = sweep[0].actual_ms / sweep[0].default_cost.max(1e-9);
        let r_custom = sweep[0].actual_ms / sweep[0].custom_cost.max(1e-9);
        for (i, p) in sweep.iter().enumerate() {
            let default_ms = p.default_cost * r_default;
            let custom_ms = p.custom_cost * r_custom;
            let derr = (default_ms - p.actual_ms).abs() / p.actual_ms;
            let cerr = (custom_ms - p.actual_ms).abs() / p.actual_ms;
            if i > 0 {
                default_errs.push(derr);
                custom_errs.push(cerr);
            }
            report.row(&[
                p.label.clone(),
                format!("{:.3}", p.actual_ms),
                format!("{default_ms:.3}"),
                format!("{custom_ms:.3}"),
                format!("{:.0}%", derr * 100.0),
                format!("{:.0}%", cerr * 100.0),
            ]);
            report.json(serde_json::json!({
                "experiment": "fig12",
                "config": p.label.clone(),
                "actual_ms": p.actual_ms,
                "default_ms": default_ms,
                "custom_ms": custom_ms,
            }));
        }
    }
    report.print();

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "mean relative error: default {:.0}% vs customized {:.0}% — paper: the customized \
         model outperforms the default: {}",
        avg(&default_errs) * 100.0,
        avg(&custom_errs) * 100.0,
        if avg(&custom_errs) < avg(&default_errs) { "matches" } else { "MISMATCH" }
    );
}
