//! Governance-overhead guard on the fig-13 conv workload.
//!
//! Resource governance must be zero-cost-when-off: with no cancel handle,
//! no query timeout and no memory budget configured, every governor
//! checkpoint collapses to a single unarmed-flag branch and every budget
//! reservation to a `None` check. The check sites cannot be compiled out
//! at runtime, so the disabled guard is an interleaved A/A comparison:
//! two independently timed governance-off passes over the same workload
//! must agree within 3% (any hidden per-morsel cost or state accumulation
//! in the off path would skew one side). The governance-on pass (a huge
//! deadline plus a huge memory budget, so checks and reservations all run
//! without ever rejecting) is the true A/B and its overhead is recorded —
//! not gated — in `BENCH_govern.json` (override with `BENCH_JSON_OUT`).
//!
//! Exits non-zero if the A/A disabled drift exceeds 3%.

use std::time::{Duration, Instant};

use minidb::exec::ExecConfig;
use minidb::Database;

use bench::Report;

/// Executor width (the paper's multi-core deployment).
const PARALLELISM: usize = 8;
/// Timed repetitions per layer inside one measurement pass.
const REPS: u32 = 10;
/// Interleaved measurement rounds; best-of discards disturbed rounds.
const ROUNDS: usize = 7;
/// Maximum tolerated A/A drift of the governance-off path.
const DISABLED_BUDGET_PCT: f64 = 3.0;

/// Fig. 13-style conv layer geometries: (name, output positions t_in,
/// kernel window k_in, output channels n_out).
const LAYERS: &[(&str, i64, i64, i64)] = &[
    ("conv 24x24 k9 c16", 24 * 24, 9, 16),
    ("conv 24x24 k9 c32", 24 * 24, 9, 32),
    ("conv 12x12 k25 c32", 12 * 12, 25, 32),
];

fn build_db() -> Database {
    let db = Database::builder()
        .exec_config(ExecConfig {
            parallelism: PARALLELISM,
            min_parallel_rows: 0,
            plan_cache_capacity: 0,
            ..Default::default()
        })
        .build();
    for (i, &(_, t_in, k_in, n_out)) in LAYERS.iter().enumerate() {
        db.execute_script(&format!(
            "CREATE TABLE fm_{i} (MatrixID Int64, OrderID Int64, Value Float64); \
             CREATE TABLE kernel_{i} (KernelID Int64, OrderID Int64, Value Float64);"
        ))
        .unwrap();
        let mut rows = Vec::new();
        for m in 0..t_in {
            for o in 0..k_in {
                rows.push(format!("({m}, {o}, {}.5)", (m * 31 + o * 7) % 19 - 9));
            }
        }
        db.execute(&format!("INSERT INTO fm_{i} VALUES {}", rows.join(","))).unwrap();
        rows.clear();
        for k in 0..n_out {
            for o in 0..k_in {
                rows.push(format!("({k}, {o}, {}.25)", (k * 13 + o * 3) % 11 - 5));
            }
        }
        db.execute(&format!("INSERT INTO kernel_{i} VALUES {}", rows.join(","))).unwrap();
    }
    db
}

fn layer_sql(i: usize) -> String {
    format!(
        "SELECT B.KernelID AS KernelID, A.MatrixID AS TupleID, SUM(A.Value * B.Value) AS Value \
         FROM fm_{i} A INNER JOIN kernel_{i} B ON A.OrderID = B.OrderID \
         GROUP BY B.KernelID, A.MatrixID"
    )
}

/// Swaps governance knobs in place, preserving the rest of the config.
fn set_governance(db: &Database, on: bool) {
    let mut config = db.exec_config();
    config.query_timeout = on.then(|| Duration::from_secs(3600));
    config.memory_budget = if on { 1 << 40 } else { 0 };
    db.swap_exec_config(config);
}

/// Times one full pass (all layers × REPS).
fn timed_pass(db: &Database) -> f64 {
    let start = Instant::now();
    for i in 0..LAYERS.len() {
        let sql = layer_sql(i);
        for _ in 0..REPS {
            db.execute(&sql).expect("layer executes");
        }
    }
    start.elapsed().as_secs_f64()
}

fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    let out_path = std::env::var("BENCH_JSON_OUT").unwrap_or_else(|_| "BENCH_govern.json".into());
    let db = build_db();

    // Warm up allocators, indexes and the parallel pool.
    timed_pass(&db);

    let (mut off_a, mut off_b, mut on) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..ROUNDS {
        set_governance(&db, false);
        off_a.push(timed_pass(&db));
        off_b.push(timed_pass(&db));
        set_governance(&db, true);
        on.push(timed_pass(&db));
    }
    set_governance(&db, false);
    let budget_peak = {
        set_governance(&db, true);
        timed_pass(&db);
        let peak = db.memory_budget().map(|b| b.peak()).unwrap_or(0);
        set_governance(&db, false);
        peak
    };
    assert!(budget_peak > 0, "governance-on passes never charged the budget");

    let (a, b, e) = (best(&off_a), best(&off_b), best(&on));
    let disabled_drift_pct = 100.0 * (b - a).abs() / a;
    let enabled_overhead_pct = 100.0 * (e - a) / a;

    let mut report = Report::new(
        "Governance overhead on the fig-13 conv workload (best pass time)",
        &["Configuration", "ms/pass", "vs disabled"],
    );
    report.row(&["governance off (A)".into(), format!("{:.2}", a * 1e3), "—".into()]);
    report.row(&[
        "governance off (B)".into(),
        format!("{:.2}", b * 1e3),
        format!("{disabled_drift_pct:+.2}%"),
    ]);
    report.row(&[
        "deadline + budget armed".into(),
        format!("{:.2}", e * 1e3),
        format!("{enabled_overhead_pct:+.2}%"),
    ]);
    let record = serde_json::json!({
        "benchmark": "govern_overhead_conv",
        "workload": "fig13_conv_layers",
        "parallelism": PARALLELISM,
        "reps_per_pass": REPS,
        "rounds": ROUNDS,
        "disabled_ms_a": a * 1e3,
        "disabled_ms_b": b * 1e3,
        "enabled_ms": e * 1e3,
        "disabled_overhead_pct": disabled_drift_pct,
        "enabled_overhead_pct": enabled_overhead_pct,
        "disabled_budget_pct": DISABLED_BUDGET_PCT,
        "budget_peak_bytes": budget_peak,
    });
    report.json(record.clone());
    report.print();
    println!(
        "disabled A/A drift: {disabled_drift_pct:.2}% (budget {DISABLED_BUDGET_PCT}%); \
         armed overhead: {enabled_overhead_pct:+.2}%"
    );
    std::fs::write(&out_path, format!("{record}\n"))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    assert!(
        disabled_drift_pct <= DISABLED_BUDGET_PCT,
        "governance-off passes drifted {disabled_drift_pct:.2}% \
         (> {DISABLED_BUDGET_PCT}%): the off path is not zero-cost"
    );
}
