//! Paper Table IV: storage overheads of the three model representations
//! as model depth grows (ResNet5 … ResNet40).
//!
//! * **DL2SQL** — the relational tables (kernels + mappings + biases),
//!   reported as the compressed on-disk estimate (the deployment
//!   compresses columns on disk),
//! * **DB-PyTorch** — the script-format file (TorchScript stand-in),
//! * **DB-UDF** — the stripped compiled binary.
//!
//! Expected shape (paper): DL2SQL > DB-PyTorch > DB-UDF at every depth,
//! all growing linearly with depth.

use dl2sql::{compile_model, NeuralRegistry};
use minidb::Database;
use neuro::serialize::{compile_udf_binary, save_model};
use neuro::zoo;

use bench::Report;

/// Paper Table IV's reference numbers (KB) for shape comparison.
const PAPER: [(usize, u64, u64, u64); 8] = [
    (5, 4096, 3830, 3253),
    (10, 21504, 17525, 14803),
    (15, 38910, 32003, 26354),
    (20, 56316, 45586, 37905),
    (25, 73722, 60543, 49455),
    (30, 91128, 73899, 61006),
    (35, 108534, 88577, 72556),
    (40, 123354, 102942, 84107),
];

fn main() {
    let db = Database::new();
    let registry = NeuralRegistry::new();
    let mut report = Report::new(
        "Table IV: storage overheads with different model depths",
        &[
            "Depth",
            "Params",
            "DL2SQL(KB)",
            "DB-PyTorch(KB)",
            "DB-UDF(KB)",
            "paper DL2SQL",
            "paper PyTorch",
            "paper UDF",
        ],
    );

    for (depth, p_sql, p_pt, p_udf) in PAPER {
        let model = zoo::resnet(depth, vec![1, 12, 12], 2, 11 + depth as u64);
        let compiled = compile_model(&db, &registry, &model).expect("model compiles");
        // Parameter tables only: mapping tables depend on geometry alone
        // and are shared across models (see CompiledModel::mapping_tables).
        let dl2sql_kb = compiled.compressed_parameter_storage_bytes(&db) as f64 / 1024.0;
        let pytorch_kb = save_model(&model).len() as f64 / 1024.0;
        let udf_kb = compile_udf_binary(&model).len() as f64 / 1024.0;
        report.row(&[
            depth.to_string(),
            model.param_count().to_string(),
            format!("{dl2sql_kb:.1}"),
            format!("{pytorch_kb:.1}"),
            format!("{udf_kb:.1}"),
            p_sql.to_string(),
            p_pt.to_string(),
            p_udf.to_string(),
        ]);
        report.json(serde_json::json!({
            "experiment": "table4",
            "depth": depth,
            "params": model.param_count(),
            "dl2sql_kb": dl2sql_kb,
            "db_pytorch_kb": pytorch_kb,
            "db_udf_kb": udf_kb,
        }));

        assert!(
            dl2sql_kb > pytorch_kb && pytorch_kb > udf_kb,
            "ordering must match the paper at depth {depth}"
        );
    }
    report.print();
    println!(
        "shape check: DL2SQL > DB-PyTorch > DB-UDF at every depth, linear growth — matches paper"
    );
}
