//! Fused join–aggregate benchmark: the DL2SQL conv hot path (paper
//! Fig. 13 layer shapes) executed fused vs. forced-unfused.
//!
//! Each layer is the compiled conv shape — staged feature map ⋈ kernel on
//! `OrderID`, `GROUP BY (KernelID, MatrixID)`, `SUM(A.Value * B.Value)` —
//! where the unfused plan materializes `t_in·k_in·n_out` join rows and the
//! fused plan folds them during the probe. Runs at parallelism 8 with the
//! plan cache off, checks bit-identity per layer, and writes
//! `BENCH_fused.json` (override with `BENCH_JSON_OUT`). Exits non-zero if
//! fusion is not at least 2x faster overall or any fused plan materializes
//! intermediate join rows.

use std::time::Instant;

use minidb::optimizer::OptimizerConfig;
use minidb::{Database, OperatorKind};

use bench::Report;

/// Timed repetitions per layer and configuration.
const REPS: u32 = 5;
/// Executor width (the paper's multi-core deployment).
const PARALLELISM: usize = 8;

/// Fig. 13-style conv layer geometries: (name, output positions t_in,
/// kernel window k_in, output channels n_out).
const LAYERS: &[(&str, i64, i64, i64)] = &[
    ("conv 24x24 k9 c16", 24 * 24, 9, 16),
    ("conv 24x24 k9 c32", 24 * 24, 9, 32),
    ("conv 12x12 k25 c32", 12 * 12, 25, 32),
];

/// A database holding one staged feature map + kernel pair per layer.
/// All values are dyadic rationals, so f64 aggregation is exact under any
/// morsel decomposition and fused/unfused outputs compare bit-for-bit.
fn build_db(fuse: bool) -> Database {
    let db = Database::builder()
        .exec_config(minidb::exec::ExecConfig {
            parallelism: PARALLELISM,
            min_parallel_rows: 0,
            plan_cache_capacity: 0,
            ..Default::default()
        })
        .optimizer_config(OptimizerConfig { fuse_join_aggregates: fuse, ..Default::default() })
        .build();
    for (i, &(_, t_in, k_in, n_out)) in LAYERS.iter().enumerate() {
        db.execute_script(&format!(
            "CREATE TABLE fm_{i} (MatrixID Int64, OrderID Int64, Value Float64); \
             CREATE TABLE kernel_{i} (KernelID Int64, OrderID Int64, Value Float64);"
        ))
        .unwrap();
        let mut rows = Vec::new();
        for m in 0..t_in {
            for o in 0..k_in {
                rows.push(format!("({m}, {o}, {}.5)", (m * 31 + o * 7) % 19 - 9));
            }
        }
        db.execute(&format!("INSERT INTO fm_{i} VALUES {}", rows.join(","))).unwrap();
        rows.clear();
        for k in 0..n_out {
            for o in 0..k_in {
                rows.push(format!("({k}, {o}, {}.25)", (k * 13 + o * 3) % 11 - 5));
            }
        }
        db.execute(&format!("INSERT INTO kernel_{i} VALUES {}", rows.join(","))).unwrap();
    }
    db
}

fn layer_sql(i: usize) -> String {
    format!(
        "SELECT B.KernelID AS KernelID, A.MatrixID AS TupleID, SUM(A.Value * B.Value) AS Value \
         FROM fm_{i} A INNER JOIN kernel_{i} B ON A.OrderID = B.OrderID \
         GROUP BY B.KernelID, A.MatrixID"
    )
}

fn tables_identical(a: &minidb::Table, b: &minidb::Table) -> bool {
    if a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns() {
        return false;
    }
    for c in 0..a.num_columns() {
        for r in 0..a.num_rows() {
            if a.column(c).value(r) != b.column(c).value(r) {
                return false;
            }
        }
    }
    true
}

/// Times one layer on one database; returns (seconds per rep, peak
/// intermediate join rows per rep, result table).
fn run_layer(db: &Database, sql: &str) -> (f64, u64, minidb::Table) {
    let warmup = db.execute(sql).expect("layer executes").table().clone();
    db.profiler().reset();
    let start = Instant::now();
    for _ in 0..REPS {
        db.execute(sql).expect("layer executes");
    }
    let secs = start.elapsed().as_secs_f64() / REPS as f64;
    let join_rows = db.profiler().rows_out(OperatorKind::Join) / REPS as u64;
    (secs, join_rows, warmup)
}

fn main() {
    let out_path = std::env::var("BENCH_JSON_OUT").unwrap_or_else(|_| "BENCH_fused.json".into());
    let fused_db = build_db(true);
    let unfused_db = build_db(false);

    let mut report = Report::new(
        "Fused join-aggregate: conv layers fused vs unfused (ms)",
        &["Layer", "Pairs", "Unfused", "Fused", "Speedup", "Peak rows unfused", "fused"],
    );
    let mut layer_records = Vec::new();
    let (mut total_fused, mut total_unfused) = (0.0f64, 0.0f64);
    let mut bit_identical = true;
    let mut fused_peak_rows = 0u64;

    for (i, &(name, t_in, k_in, n_out)) in LAYERS.iter().enumerate() {
        let sql = layer_sql(i);
        let (unfused_s, unfused_peak, reference) = run_layer(&unfused_db, &sql);
        let (fused_s, fused_peak, got) = run_layer(&fused_db, &sql);
        let fused_stats =
            fused_db.profiler().stats(OperatorKind::JoinAggregate).expect("fused operator ran");
        bit_identical &= tables_identical(&reference, &got);
        fused_peak_rows = fused_peak_rows.max(fused_peak);
        total_fused += fused_s;
        total_unfused += unfused_s;
        let pairs = (t_in * k_in * n_out) as u64;
        let speedup = unfused_s / fused_s.max(1e-12);
        report.row(&[
            name.to_string(),
            pairs.to_string(),
            format!("{:.2}", unfused_s * 1e3),
            format!("{:.2}", fused_s * 1e3),
            format!("{speedup:.1}x"),
            unfused_peak.to_string(),
            fused_peak.to_string(),
        ]);
        layer_records.push(serde_json::json!({
            "layer": name,
            "t_in": t_in,
            "k_in": k_in,
            "n_out": n_out,
            "join_pairs": pairs,
            "unfused_ms": unfused_s * 1e3,
            "fused_ms": fused_s * 1e3,
            "speedup": speedup,
            "peak_intermediate_rows_unfused": unfused_peak,
            "peak_intermediate_rows_fused": fused_peak,
            "bytes_not_materialized": fused_stats.bytes_not_materialized / REPS as u64,
        }));
        // Fresh counters per layer so per-layer bytes don't accumulate.
        fused_db.profiler().reset();
        unfused_db.profiler().reset();
    }

    let overall = total_unfused / total_fused.max(1e-12);
    let record = serde_json::json!({
        "benchmark": "fused_join_aggregate_conv",
        "parallelism": PARALLELISM,
        "reps": REPS,
        "layers": serde_json::Value::Array(layer_records),
        "total_unfused_ms": total_unfused * 1e3,
        "total_fused_ms": total_fused * 1e3,
        "overall_speedup": overall,
        "peak_intermediate_rows_fused": fused_peak_rows,
        "bit_identical": bit_identical,
    });
    report.json(record.clone());
    report.print();
    println!("overall speedup: {overall:.2}x; fused peak intermediate rows: {fused_peak_rows}");
    std::fs::write(&out_path, format!("{record}\n"))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    assert!(bit_identical, "fused results diverged from unfused");
    assert_eq!(fused_peak_rows, 0, "fused plans must not materialize join output");
    assert!(
        overall >= 2.0,
        "fusion must be at least 2x faster on the conv hot path (got {overall:.2}x)"
    );
}
