//! Cache benchmark: cold-vs-warm cost of a repeated collaborative query
//! mix under every strategy, with all three cache levels enabled (plan
//! cache, nUDF inference memoization, compiled-artifact reuse).
//!
//! The dashboard scenario: the same Table-I queries replayed over an
//! unchanged video table. Cold runs populate the caches; warm runs replay
//! the mix. The harness also verifies the caching contract — cached
//! results bit-identical to uncached at parallelism {1, 2, 8} — and
//! writes everything to `BENCH_cache.json` (override the path with
//! `BENCH_JSON_OUT`).

use std::sync::Arc;
use std::time::Instant;

use collab::{CollabEngine, QueryType, StrategyKind};
use minidb::Database;
use workload::{build_dataset, build_repo, DatasetConfig, RepoConfig};

use bench::{cached_env, Report};

/// Warm executions averaged per strategy.
const WARM_RUNS: u32 = 3;
/// Videos in the timing dataset (release-mode smoke scale).
const TIMING_ROWS: usize = 240;
/// Videos in the (slower, per-parallelism) bit-identity dataset.
const IDENTITY_ROWS: usize = 80;
/// Relational selectivity: high enough that inference dominates, as in
/// the paper's dashboard workload.
const SELECTIVITY: f64 = 0.5;

fn query_mix() -> Vec<String> {
    [QueryType::Type1, QueryType::Type2, QueryType::Type3, QueryType::Type4]
        .into_iter()
        .map(|t| workload::queries::template(t, SELECTIVITY, "").sql)
        .collect()
}

fn tables_identical(a: &minidb::Table, b: &minidb::Table) -> bool {
    if a.num_rows() != b.num_rows() || a.num_columns() != b.num_columns() {
        return false;
    }
    for c in 0..a.num_columns() {
        for r in 0..a.num_rows() {
            if a.column(c).value(r) != b.column(c).value(r) {
                return false;
            }
        }
    }
    true
}

/// Runs every (strategy, query) pair cached and uncached at one
/// parallelism level; true iff every result table matched exactly.
fn bit_identity_at(parallelism: usize, repo: &Arc<collab::ModelRepo>) -> bool {
    let db_at = || {
        let db = Arc::new(
            Database::builder()
                .exec_config(minidb::exec::ExecConfig {
                    parallelism,
                    morsel_rows: 32,
                    min_parallel_rows: 0,
                    ..Default::default()
                })
                .build(),
        );
        build_dataset(
            &db,
            &DatasetConfig {
                video_rows: IDENTITY_ROWS,
                keyframe_shape: vec![1, 12, 12],
                ..Default::default()
            },
        )
        .expect("dataset builds");
        db
    };
    let uncached = CollabEngine::new(db_at(), Arc::clone(repo));
    let cached = CollabEngine::new(db_at(), Arc::clone(repo));
    cached.set_inference_cache_capacity(1 << 16);
    cached.set_artifact_cache_capacity(32);
    for kind in StrategyKind::all() {
        for sql in query_mix() {
            let reference = uncached.execute(&sql, kind).expect("uncached run");
            let cold = cached.execute(&sql, kind).expect("cached cold run");
            let warm = cached.execute(&sql, kind).expect("cached warm run");
            if !tables_identical(&reference.table, &cold.table)
                || !tables_identical(&reference.table, &warm.table)
            {
                return false;
            }
        }
    }
    true
}

fn main() {
    let out_path = std::env::var("BENCH_JSON_OUT").unwrap_or_else(|_| "BENCH_cache.json".into());
    let env = cached_env(TIMING_ROWS, vec![1, 12, 12]);
    let queries = query_mix();
    println!(
        "dataset: {} total tuples; mix: {} queries; warm runs averaged: {WARM_RUNS}",
        env.dataset.total_rows(),
        queries.len()
    );

    let mut report = Report::new(
        "Cache benchmark: cold vs warm query mix (ms)",
        &["Approach", "Cold", "Warm", "Speedup", "Memo hit rate", "Artifact hit rate"],
    );
    let mut strategy_records = Vec::new();
    let mut min_speedup = f64::INFINITY;
    for kind in StrategyKind::all() {
        // Each strategy starts cold: the memo and artifact caches are
        // shared engine-wide, so the previous strategy's runs would
        // otherwise pre-warm this one.
        env.engine.inference_cache().clear();
        env.engine.inference_cache().reset_stats();
        env.engine.artifact_cache().clear();
        env.engine.artifact_cache().reset_stats();

        let t_cold = Instant::now();
        for sql in &queries {
            env.engine
                .execute(sql, kind)
                .unwrap_or_else(|e| panic!("{} failed on {sql}: {e}", kind.label()));
        }
        let cold = t_cold.elapsed();

        let t_warm = Instant::now();
        for _ in 0..WARM_RUNS {
            for sql in &queries {
                env.engine.execute(sql, kind).expect("warm run");
            }
        }
        let warm = t_warm.elapsed() / WARM_RUNS;

        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        min_speedup = min_speedup.min(speedup);
        let memo = env.engine.inference_cache().stats();
        let artifacts = env.engine.artifact_cache().stats();
        report.row(&[
            kind.label().to_string(),
            format!("{:.1}", cold.as_secs_f64() * 1e3),
            format!("{:.1}", warm.as_secs_f64() * 1e3),
            format!("{speedup:.1}x"),
            format!("{:.3}", memo.hit_rate()),
            if matches!(kind, StrategyKind::Tight | StrategyKind::TightOptimized) {
                format!("{:.3}", artifacts.hit_rate())
            } else {
                "-".into()
            },
        ]);
        strategy_records.push(serde_json::json!({
            "strategy": kind.label(),
            "cold_ms": cold.as_secs_f64() * 1e3,
            "warm_ms": warm.as_secs_f64() * 1e3,
            "speedup": speedup,
            "inference_cache": serde_json::json!({
                "hits": memo.hits,
                "misses": memo.misses,
                "evictions": memo.evictions,
                "hit_rate": memo.hit_rate(),
            }),
            "artifact_cache": serde_json::json!({
                "hits": artifacts.hits,
                "misses": artifacts.misses,
                "hit_rate": artifacts.hit_rate(),
            }),
        }));
    }

    // The correctness half of the contract, at the three executor widths
    // the determinism suite pins down.
    let parallelism_levels = [1usize, 2, 8];
    let mut bit_identical = true;
    for p in parallelism_levels {
        let ok = bit_identity_at(
            p,
            &build_repo(&RepoConfig { keyframe_shape: vec![1, 12, 12], ..Default::default() }),
        );
        println!("bit-identity cached vs uncached at parallelism {p}: {ok}");
        bit_identical &= ok;
    }

    // The plan-cache level: the strategies replay pre-parsed queries, so
    // only ad-hoc SQL through `Database::execute` exercises it — the
    // dashboard's relational side.
    let relational = [
        "SELECT count(*) AS n FROM fabric",
        "SELECT patternID, sum(meter) AS m FROM fabric GROUP BY patternID ORDER BY patternID",
        "SELECT count(*) AS n FROM fabric F, video V WHERE F.transID = V.transID",
    ];
    for sql in relational {
        for _ in 0..2 {
            env.engine.db().execute(sql).expect("relational query");
        }
    }
    let plan = env.engine.db().profiler().plan_cache_stats();
    let record = serde_json::json!({
        "benchmark": "cache_cold_vs_warm",
        "dataset_rows": env.dataset.total_rows(),
        "queries_per_run": queries.len(),
        "warm_runs_averaged": WARM_RUNS,
        "strategies": serde_json::Value::Array(strategy_records),
        "plan_cache": serde_json::json!({
            "hits": plan.hits,
            "misses": plan.misses,
            "hit_rate": plan.hit_rate(),
        }),
        "min_warm_speedup": min_speedup,
        "bit_identical_parallelism": serde_json::json!([1usize, 2, 8]),
        "bit_identical": bit_identical,
    });
    report.json(record.clone());
    report.print();
    std::fs::write(&out_path, format!("{record}\n"))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    assert!(bit_identical, "cached results diverged from uncached");
    assert!(
        min_speedup >= 2.0,
        "warm mix must be at least 2x faster than cold (got {min_speedup:.2}x)"
    );
}
