//! Ablation: row-at-a-time vs batched UDF inference for the loose
//! integration strategy.
//!
//! The paper notes that nUDFs are "performed in a batch manner (a batch of
//! feature maps are fed to the model together)". A stock scalar UDF is
//! invoked per row; a vectorized UDF receives the whole keyframe column at
//! once, amortizing per-call overhead and — crucially on a GPU — the
//! synchronous host↔device round trip. This harness quantifies that
//! design choice, which DESIGN.md lists as an ablation.

use std::sync::Arc;

use collab::independent::DlServer;
use collab::loose::LooseUdf;
use collab::metrics::{project_to_device_with, InferenceMeter};
use collab::Strategy;
use neuro::DeviceProfile;
use workload::queries::template;
use workload::{build_dataset, build_repo, DatasetConfig, RepoConfig};

use bench::Report;

const WORKLOAD_SCALE: f64 = (224 * 224 * 3) as f64 / (12 * 12) as f64;

fn main() {
    let db = Arc::new(minidb::Database::new());
    let config = DatasetConfig { video_rows: 1500, ..Default::default() };
    build_dataset(&db, &config).expect("dataset builds");
    let repo = build_repo(&RepoConfig {
        keyframe_shape: config.keyframe_shape.clone(),
        patterns: config.patterns,
        ..Default::default()
    });
    let meter = InferenceMeter::shared();
    let _server = DlServer::start(Arc::clone(&repo), Arc::clone(&meter));

    // A Type-3 query whose UDF filter runs over every video row under the
    // stock (hint-free) optimizer — the worst case for per-row calls.
    let spec = template(collab::QueryType::Type3, 0.02, "");

    let mut report = Report::new(
        "Ablation: DB-UDF row-at-a-time vs batched (projected inference ms)",
        &["Variant", "host ms", "server CPU", "server GPU", "round trips"],
    );
    for (label, strategy) in [
        ("row-at-a-time", LooseUdf::new(Arc::clone(&db), Arc::clone(&repo), Arc::clone(&meter))),
        ("batched", LooseUdf::new_batched(Arc::clone(&db), Arc::clone(&repo), Arc::clone(&meter))),
    ] {
        let out = strategy.execute(&spec.sql).expect("strategy runs");
        let cpu = project_to_device_with(
            &out.breakdown,
            &out.sim,
            &DeviceProfile::server_cpu(),
            WORKLOAD_SCALE,
            true,
        );
        let gpu = project_to_device_with(
            &out.breakdown,
            &out.sim,
            &DeviceProfile::server_gpu(),
            WORKLOAD_SCALE,
            true,
        );
        report.row(&[
            label.to_string(),
            format!("{:.3}", out.breakdown.inference.as_secs_f64() * 1e3),
            format!("{:.3}", cpu.inference.as_secs_f64() * 1e3),
            format!("{:.3}", gpu.inference.as_secs_f64() * 1e3),
            out.sim.round_trips.to_string(),
        ]);
        report.json(serde_json::json!({
            "experiment": "ablation_batched_udf",
            "variant": label,
            "host_ms": out.breakdown.inference.as_secs_f64() * 1e3,
            "gpu_ms": gpu.inference.as_secs_f64() * 1e3,
            "round_trips": out.sim.round_trips,
        }));
    }
    report.print();
    println!(
        "batching collapses thousands of synchronous GPU round trips into one per query — \
         the mechanism behind DB-PyTorch's GPU advantage over DB-UDF in Fig 8"
    );
}
