//! Paper Fig. 8: overall cost breakdown (loading / inference / relational)
//! of the four approaches on the edge device, the server CPU and the
//! server GPU.
//!
//! Wall time is measured on the host and projected onto the three device
//! profiles (see `collab::metrics::project_to_device`); the server-CPU
//! column is (approximately) the raw measurement. The benchmark is the
//! paper's mixed Table-I workload at 0.01 % relational selectivity.
//!
//! Expected shape (paper): on the edge device DL2SQL-OP is best overall;
//! on the GPU server inference shrinks for the model-serving strategies
//! while loading grows (host↔device transfer); DB-UDF profits least from
//! the GPU.

use collab::{CostBreakdown, StrategyKind};
use neuro::{DeviceKind, DeviceProfile};
use workload::{generate_benchmark, BenchmarkConfig};

use bench::{default_env, fmt_duration, Report};

/// The paper's keyframes are 224x224x3; ours are 12x12x1. Convolution
/// flops and keyframe bytes scale linearly in the pixel count, so device
/// projection multiplies the simulated quantities by this ratio.
const WORKLOAD_SCALE: f64 = (224 * 224 * 3) as f64 / (12 * 12) as f64;

fn main() {
    let env = default_env();
    let queries = generate_benchmark(&BenchmarkConfig {
        queries_per_type: 2,
        selectivity: 0.0001,
        ..Default::default()
    });
    println!(
        "dataset: {} total tuples; benchmark: {} queries (4 types)",
        env.dataset.total_rows(),
        queries.len()
    );

    let devices = [
        (DeviceProfile::edge_cpu(), "edge CPU"),
        (DeviceProfile::server_cpu(), "server CPU"),
        (DeviceProfile::server_gpu(), "server GPU"),
    ];
    let mut report = Report::new(
        "Fig 8: average per-query cost breakdown (ms)",
        &["Device", "Approach", "Loading", "Inference", "Relational", "Total"],
    );

    // Parse each query once; every strategy replays the prepared form.
    let prepared: Vec<_> =
        queries.iter().map(|q| (q, env.engine.prepare(&q.sql).expect("query parses"))).collect();
    let mut edge_totals: Vec<(StrategyKind, f64)> = Vec::new();
    for kind in StrategyKind::all() {
        // Average the measured breakdown and simulated work over the mix.
        let mut sum = CostBreakdown::default();
        let mut sim = collab::metrics::SimSummary::default();
        for (q, p) in &prepared {
            let out =
                p.run(kind).unwrap_or_else(|e| panic!("{} failed on {}: {e}", kind.label(), q.sql));
            sum.loading += out.breakdown.loading;
            sum.inference += out.breakdown.inference;
            sum.relational += out.breakdown.relational;
            sim.inference_flops += out.sim.inference_flops;
            sim.transfer_bytes += out.sim.transfer_bytes;
            sim.dispatches += out.sim.dispatches;
            sim.round_trips += out.sim.round_trips;
            sim.cross_system_bytes += out.sim.cross_system_bytes;
        }
        let n = queries.len() as u32;
        let avg = CostBreakdown {
            loading: sum.loading / n,
            inference: sum.inference / n,
            relational: sum.relational / n,
        };
        let avg_sim = collab::metrics::SimSummary {
            inference_flops: sim.inference_flops / n as u64,
            transfer_bytes: sim.transfer_bytes / n as u64,
            dispatches: sim.dispatches / n as u64,
            round_trips: sim.round_trips / n as u64,
            cross_system_bytes: sim.cross_system_bytes / n as u64,
        };

        // DL2SQL's inference is SQL on the database host CPU: it cannot
        // ride an accelerator (the paper's deployment likewise runs
        // ClickHouse on the CPU of the GPU server).
        let uses_accelerator = matches!(kind, StrategyKind::Independent | StrategyKind::LooseUdf);
        for (profile, label) in devices {
            let projected = collab::metrics::project_to_device_with(
                &avg,
                &avg_sim,
                &profile,
                WORKLOAD_SCALE,
                uses_accelerator,
            );
            report.row(&[
                label.to_string(),
                kind.label().to_string(),
                fmt_duration(projected.loading),
                fmt_duration(projected.inference),
                fmt_duration(projected.relational),
                fmt_duration(projected.total()),
            ]);
            report.json(serde_json::json!({
                "experiment": "fig8",
                "device": label,
                "approach": kind.label(),
                "loading_ms": projected.loading.as_secs_f64() * 1e3,
                "inference_ms": projected.inference.as_secs_f64() * 1e3,
                "relational_ms": projected.relational.as_secs_f64() * 1e3,
            }));
            if profile.kind == DeviceKind::EdgeCpu {
                edge_totals.push((kind, projected.total().as_secs_f64()));
            }
        }
    }
    report.print();

    // Shape check: DL2SQL-OP wins on the edge device.
    let best = edge_totals.iter().min_by(|a, b| a.1.total_cmp(&b.1)).expect("strategies ran");
    println!(
        "edge-device winner: {} ({:.1} ms) — paper: DL2SQL-OP performs best on the edge device",
        best.0.label(),
        best.1 * 1e3
    );
}
