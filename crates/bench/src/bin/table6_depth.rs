//! Paper Table VI: inference and loading cost vs. model depth
//! (ResNet5 … ResNet40) for the three approaches, at 0.1 % selectivity.
//! Relational cost is omitted, as in the paper ("two or three orders of
//! magnitude smaller ... for a deeper neural model").
//!
//! Expected shape (paper): DL2SQL-OP has the best *inference* at every
//! depth and the best *total* for shallow models, but its loading cost
//! (model → relational tables) grows fastest, so DB-PyTorch overtakes it
//! on total cost for deep models — the crossover is the finding.

use std::sync::Arc;

use collab::{QueryType, StrategyKind};
use workload::models::{resnet_spec, RepoConfig};
use workload::queries::template;

use bench::{env, Report};

const DEPTHS: [usize; 8] = [5, 10, 15, 20, 25, 30, 35, 40];
/// Paper Table VI: parameters and DL2SQL-OP inference seconds per depth.
const PAPER_PARAMS: [u64; 8] =
    [828_418, 3_781_890, 6_734_850, 9_687_810, 12_640_770, 15_593_730, 18_546_690, 20_909_570];

fn main() {
    // Smaller dataset: deep ResNets in SQL are heavy per inference.
    let env = env(600, vec![1, 12, 12]);
    let repo_cfg =
        RepoConfig { keyframe_shape: vec![1, 12, 12], histogram_samples: 16, ..Default::default() };

    let mut report = Report::new(
        "Table VI: cost vs model depth, selectivity 0.1% (host ms)",
        &[
            "Depth",
            "Params",
            "paper params",
            "OP-Inf",
            "OP-Load",
            "OP-Total",
            "UDF-Inf",
            "UDF-Load",
            "PyT-Inf",
            "PyT-Load",
        ],
    );

    let mut op_totals = Vec::new();
    let mut pyt_totals = Vec::new();
    for (i, depth) in DEPTHS.iter().enumerate() {
        let spec = resnet_spec(*depth, &repo_cfg);
        let nudf = spec.name.clone();
        env.engine.repo().register(collab::NudfSpec::new(
            nudf.clone(),
            Arc::clone(&spec.model),
            spec.output.clone(),
            spec.class_probs.clone(),
        ));
        // The paper's 0.1% of 10M fabric rows is 10k rows; at laptop scale
        // that quantizes to zero, so the sweep uses 5% of the 60-row
        // fabric table (~3 rows, ~30 keyframes) instead.
        let mut q = template(QueryType::Type3, 0.05, "");
        q.sql = q.sql.replace("nUDF_detect", &nudf);

        let mut row = vec![
            depth.to_string(),
            spec.model.param_count().to_string(),
            PAPER_PARAMS[i].to_string(),
        ];
        let mut json = serde_json::json!({
            "experiment": "table6",
            "depth": depth,
            "params": spec.model.param_count(),
        });
        for (kind, tag) in [
            (StrategyKind::TightOptimized, "op"),
            (StrategyKind::LooseUdf, "udf"),
            (StrategyKind::Independent, "pytorch"),
        ] {
            let out = env.engine.execute(&q.sql, kind).expect("strategy runs");
            let inf = out.breakdown.inference.as_secs_f64() * 1e3;
            let load = out.breakdown.loading.as_secs_f64() * 1e3;
            row.push(format!("{inf:.2}"));
            row.push(format!("{load:.2}"));
            if kind == StrategyKind::TightOptimized {
                row.push(format!("{:.2}", inf + load));
            }
            json[format!("{tag}_inference_ms")] = serde_json::json!(inf);
            json[format!("{tag}_loading_ms")] = serde_json::json!(load);
            match kind {
                StrategyKind::TightOptimized => op_totals.push(inf + load),
                StrategyKind::Independent => pyt_totals.push(inf + load),
                _ => {}
            }
        }
        report.row(&row);
        report.json(json);
    }
    report.print();

    // Shape checks.
    let op_growth = op_totals.last().unwrap() / op_totals.first().unwrap();
    println!("DL2SQL-OP total grows {op_growth:.1}x from depth 5 to 40 (paper: loading grows with depth)");
    let shallow_winner = if op_totals[0] < pyt_totals[0] { "DL2SQL-OP" } else { "DB-PyTorch" };
    let deep_winner = if *op_totals.last().unwrap() < *pyt_totals.last().unwrap() {
        "DL2SQL-OP"
    } else {
        "DB-PyTorch"
    };
    println!(
        "shallow (d=5) winner: {shallow_winner}; deep (d=40) winner: {deep_winner} \
         — paper: DL2SQL-OP wins shallow, DB-PyTorch overtakes for deeper models."
    );
    println!(
        "Reproduced: parameter growth is linear in depth, DL2SQL-OP loading grows \
         steeply with depth, and DB-PyTorch wins for deep models. NOT reproduced: the \
         shallow-depth win for DL2SQL-OP — it depends on ClickHouse's vectorized \
         executor beating LibTorch per inference on the ARM CPU, which this \
         tuple-at-a-time engine cannot replicate (see EXPERIMENTS.md)."
    );
}
