//! Paper Fig. 13: estimated vs. actual cost per neural operator (conv,
//! pooling, batch normalization, ReLU, full connection), default model vs.
//! customized model.
//!
//! Expected shape (paper): the customized model returns a more precise
//! estimation for every operator.

use std::sync::Arc;
use std::time::Instant;

use dl2sql::{compile_model, Dl2SqlCostModel, NeuralRegistry, StepKind};
use minidb::{Database, DefaultCostModel};
use neuro::Tensor;

use bench::Report;

const REPS: usize = 10;

fn main() {
    let db = Arc::new(Database::new());
    let registry = NeuralRegistry::shared();
    let model = neuro::zoo::student(vec![1, 16, 16], 6, 7);
    let compiled = compile_model(&db, &registry, &model).expect("student compiles");

    // Materialize the whole pipeline once so every step's inputs exist.
    let input = Tensor::full(vec![1, 16, 16], 0.5);
    dl2sql::storage::load_state_table(&db, &registry, &compiled.input_table, &input)
        .expect("input stages");
    for step in &compiled.steps {
        for stmt in &step.statements {
            db.execute(stmt).expect("pipeline runs");
        }
    }

    let default_model = DefaultCostModel::clickhouse_like();
    let custom_model = Dl2SqlCostModel::new(Arc::clone(&registry));

    let mut report = Report::new(
        "Fig 13: per-operator estimated vs actual time (ms)",
        &["Operator", "Actual", "Default est.", "Customized est."],
    );
    let mut default_errs = Vec::new();
    let mut custom_errs = Vec::new();
    let mut points: Vec<(String, f64, f64, f64)> = Vec::new();

    // One representative step per operator kind.
    let mut seen = std::collections::HashSet::new();
    for step in &compiled.steps {
        if !matches!(
            step.kind,
            StepKind::Conv | StepKind::Pool | StepKind::BatchNorm | StepKind::Relu | StepKind::Fc
        ) || !seen.insert(step.kind)
        {
            continue;
        }
        // Estimate and time every SELECT-bearing statement of the step;
        // ReLU's UPDATE is measured via its equivalent SELECT.
        let mut actual = 0.0f64;
        let mut default_cost = 0.0f64;
        let mut custom_cost = 0.0f64;
        for stmt in &step.statements {
            let select = if let Some(pos) = stmt.find("SELECT") {
                stmt[pos..].to_string()
            } else if stmt.starts_with("UPDATE") {
                // UPDATE t SET Value = 0 WHERE Value < 0 ≅ one scan + write.
                let table = stmt.split_whitespace().nth(1).expect("UPDATE table");
                format!("SELECT KernelID, TupleID, greatest(Value, 0) AS Value FROM {table}")
            } else {
                continue;
            };
            let t0 = Instant::now();
            for _ in 0..REPS {
                db.execute(&select).expect("step statement runs");
            }
            actual += t0.elapsed().as_secs_f64() / REPS as f64;
            default_cost += db.estimate_with(&select, &default_model).expect("default est").cost;
            custom_cost += db.estimate_with(&select, &custom_model).expect("custom est").cost;
        }
        points.push((step.label.clone(), actual, default_cost, custom_cost));
    }

    // Each model is calibrated once, on the convolution operator (the
    // workload's dominant cost), then asked to predict the others — the
    // cross-operator consistency Fig. 13 tests.
    let (_, conv_actual, conv_default, conv_custom) = points[0].clone();
    let r_default = conv_actual / conv_default.max(1e-12);
    let r_custom = conv_actual / conv_custom.max(1e-12);
    for (i, (label, actual, dc, cc)) in points.iter().enumerate() {
        let default_est = dc * r_default;
        let custom_est = cc * r_custom;
        let derr = (default_est - actual).abs() / actual;
        let cerr = (custom_est - actual).abs() / actual;
        if i > 0 {
            default_errs.push(derr);
            custom_errs.push(cerr);
        }
        report.row(&[
            label.clone(),
            format!("{:.3}", actual * 1e3),
            format!("{:.3}", default_est * 1e3),
            format!("{:.3}", custom_est * 1e3),
        ]);
        report.json(serde_json::json!({
            "experiment": "fig13",
            "operator": label,
            "actual_ms": actual * 1e3,
            "default_ms": default_est * 1e3,
            "custom_ms": custom_est * 1e3,
        }));
    }
    report.print();

    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "mean relative error: default {:.0}% vs customized {:.0}% — paper: customized is more \
         precise per operator: {}",
        avg(&default_errs) * 100.0,
        avg(&custom_errs) * 100.0,
        if avg(&custom_errs) < avg(&default_errs) { "matches" } else { "MISMATCH" }
    );
}
