//! Tracing-overhead guard on the fig-13 conv workload.
//!
//! Observability must be zero-cost-when-off: with the collector disabled,
//! every span helper collapses to a `SpanId::NONE` integer check, so the
//! disabled path must be indistinguishable from an uninstrumented build.
//! The instrumentation cannot be compiled out at runtime, so the disabled
//! guard is an interleaved A/A comparison: two independently timed
//! disabled-collector passes over the same workload must agree within 3%
//! (any hidden per-query cost or state accumulation in the disabled path
//! would skew one side). The enabled-collector pass (full span trees
//! extracted per statement) is the true A/B and its overhead is recorded —
//! not gated — in `BENCH_obs.json` (override with `BENCH_JSON_OUT`).
//!
//! Exits non-zero if the A/A disabled drift exceeds 3% or any traced run
//! fails to produce a span tree.

use std::time::Instant;

use minidb::exec::ExecConfig;
use minidb::Database;

use bench::Report;

/// Executor width (the paper's multi-core deployment).
const PARALLELISM: usize = 8;
/// Timed repetitions per layer inside one measurement pass (long enough
/// that timer and scheduler jitter is small relative to a pass).
const REPS: u32 = 10;
/// Interleaved measurement rounds; comparing each configuration's best
/// round discards rounds disturbed by unrelated machine activity.
const ROUNDS: usize = 7;
/// Maximum tolerated A/A drift of the disabled-collector path.
const DISABLED_BUDGET_PCT: f64 = 3.0;

/// Fig. 13-style conv layer geometries: (name, output positions t_in,
/// kernel window k_in, output channels n_out).
const LAYERS: &[(&str, i64, i64, i64)] = &[
    ("conv 24x24 k9 c16", 24 * 24, 9, 16),
    ("conv 24x24 k9 c32", 24 * 24, 9, 32),
    ("conv 12x12 k25 c32", 12 * 12, 25, 32),
];

fn build_db() -> Database {
    let db = Database::builder()
        .exec_config(ExecConfig {
            parallelism: PARALLELISM,
            min_parallel_rows: 0,
            plan_cache_capacity: 0,
            ..Default::default()
        })
        .build();
    for (i, &(_, t_in, k_in, n_out)) in LAYERS.iter().enumerate() {
        db.execute_script(&format!(
            "CREATE TABLE fm_{i} (MatrixID Int64, OrderID Int64, Value Float64); \
             CREATE TABLE kernel_{i} (KernelID Int64, OrderID Int64, Value Float64);"
        ))
        .unwrap();
        let mut rows = Vec::new();
        for m in 0..t_in {
            for o in 0..k_in {
                rows.push(format!("({m}, {o}, {}.5)", (m * 31 + o * 7) % 19 - 9));
            }
        }
        db.execute(&format!("INSERT INTO fm_{i} VALUES {}", rows.join(","))).unwrap();
        rows.clear();
        for k in 0..n_out {
            for o in 0..k_in {
                rows.push(format!("({k}, {o}, {}.25)", (k * 13 + o * 3) % 11 - 5));
            }
        }
        db.execute(&format!("INSERT INTO kernel_{i} VALUES {}", rows.join(","))).unwrap();
    }
    db
}

fn layer_sql(i: usize) -> String {
    format!(
        "SELECT B.KernelID AS KernelID, A.MatrixID AS TupleID, SUM(A.Value * B.Value) AS Value \
         FROM fm_{i} A INNER JOIN kernel_{i} B ON A.OrderID = B.OrderID \
         GROUP BY B.KernelID, A.MatrixID"
    )
}

/// Times one full pass (all layers × REPS) and asserts the expected
/// tracing state on every result.
fn timed_pass(db: &Database, expect_trace: bool) -> f64 {
    let start = Instant::now();
    for i in 0..LAYERS.len() {
        let sql = layer_sql(i);
        for _ in 0..REPS {
            let result = db.execute(&sql).expect("layer executes");
            assert_eq!(
                result.trace().is_some(),
                expect_trace,
                "trace presence must follow the collector state"
            );
        }
    }
    start.elapsed().as_secs_f64()
}

fn best(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

fn main() {
    let out_path = std::env::var("BENCH_JSON_OUT").unwrap_or_else(|_| "BENCH_obs.json".into());
    let db = build_db();

    // Warm up allocators, indexes and the parallel pool.
    timed_pass(&db, false);

    let (mut off_a, mut off_b, mut on) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..ROUNDS {
        db.tracer().disable();
        off_a.push(timed_pass(&db, false));
        off_b.push(timed_pass(&db, false));
        db.tracer().enable();
        on.push(timed_pass(&db, true));
    }
    db.tracer().disable();

    let (a, b, e) = (best(&off_a), best(&off_b), best(&on));
    let disabled_drift_pct = 100.0 * (b - a).abs() / a;
    let enabled_overhead_pct = 100.0 * (e - a) / a;

    let mut report = Report::new(
        "Tracing overhead on the fig-13 conv workload (best pass time)",
        &["Configuration", "ms/pass", "vs disabled"],
    );
    report.row(&["collector disabled (A)".into(), format!("{:.2}", a * 1e3), "—".into()]);
    report.row(&[
        "collector disabled (B)".into(),
        format!("{:.2}", b * 1e3),
        format!("{disabled_drift_pct:+.2}%"),
    ]);
    report.row(&[
        "collector enabled".into(),
        format!("{:.2}", e * 1e3),
        format!("{enabled_overhead_pct:+.2}%"),
    ]);
    let record = serde_json::json!({
        "benchmark": "obs_overhead_conv",
        "workload": "fig13_conv_layers",
        "parallelism": PARALLELISM,
        "reps_per_pass": REPS,
        "rounds": ROUNDS,
        "disabled_ms_a": a * 1e3,
        "disabled_ms_b": b * 1e3,
        "enabled_ms": e * 1e3,
        "disabled_overhead_pct": disabled_drift_pct,
        "enabled_overhead_pct": enabled_overhead_pct,
        "disabled_budget_pct": DISABLED_BUDGET_PCT,
    });
    report.json(record.clone());
    report.print();
    println!(
        "disabled A/A drift: {disabled_drift_pct:.2}% (budget {DISABLED_BUDGET_PCT}%); \
         enabled overhead: {enabled_overhead_pct:+.2}%"
    );
    std::fs::write(&out_path, format!("{record}\n"))
        .unwrap_or_else(|e| panic!("cannot write {out_path}: {e}"));
    println!("wrote {out_path}");

    assert!(
        disabled_drift_pct <= DISABLED_BUDGET_PCT,
        "disabled-collector passes drifted {disabled_drift_pct:.2}% \
         (> {DISABLED_BUDGET_PCT}%): the off path is not zero-cost"
    );
}
