//! Paper Fig. 11: performance of the CNN blocks under the three pre-join
//! strategies.
//!
//! * default — staging join (Q2) + conv join (Q1) + pooling group-by (Q3),
//! * fuse-mapping — the mapping join is fused into the conv statement and
//!   the pooling staging is fused into its aggregate,
//! * pre-join-kernel — kernel weights are pre-joined into the mapping
//!   table offline, removing the feature-map ⋈ kernel join at inference.
//!
//! Expected shape (paper): "avoiding unnecessary joins can effectively
//! improve the performance of CNN blocks" — each successive strategy is
//! faster.

use std::sync::Arc;

use dl2sql::prejoin::compare_strategies;
use dl2sql::NeuralRegistry;
use minidb::Database;
use workload::dataset::keyframe;

use bench::Report;

fn main() {
    let registry = NeuralRegistry::shared();
    // DL2SQL runs under its customized cost model — the fused variants'
    // three-way joins need it to get the join order right.
    let db = Arc::new(
        Database::builder()
            .cost_model(Arc::new(dl2sql::Dl2SqlCostModel::new(Arc::clone(&registry))))
            .build(),
    );
    let model = neuro::zoo::student(vec![1, 12, 12], 6, 7);
    let input = keyframe(&[1, 12, 12], 3, 1);

    let cmp = compare_strategies(&db, &registry, &model, &input, 15).expect("comparison runs");

    let mut report = Report::new(
        "Fig 11: CNN-block time under pre-join strategies (avg ms)",
        &["Strategy", "Total(ms)", "Blocks"],
    );
    for ((strategy, total), (_, blocks)) in cmp.totals.iter().zip(&cmp.per_block) {
        let block_summary: Vec<String> =
            blocks.iter().map(|(l, d)| format!("{l}={:.2}", d.as_secs_f64() * 1e3)).collect();
        report.row(&[
            format!("{strategy:?}"),
            format!("{:.3}", total.as_secs_f64() * 1e3),
            block_summary.join(" "),
        ]);
        report.json(serde_json::json!({
            "experiment": "fig11",
            "strategy": format!("{strategy:?}"),
            "total_ms": total.as_secs_f64() * 1e3,
        }));
    }
    report.print();

    let default = cmp.totals[0].1.as_secs_f64();
    let fuse = cmp.totals[1].1.as_secs_f64();
    let prejoin = cmp.totals[2].1.as_secs_f64();
    println!(
        "default {:.2} ms -> fuse-mapping {:.2} ms -> pre-join-kernel {:.2} ms",
        default * 1e3,
        fuse * 1e3,
        prejoin * 1e3,
    );
    if fuse < default {
        println!("paper shape (avoiding joins speeds up CNN blocks): matches");
    } else {
        println!(
            "paper shape DIVERGES: in this fully in-memory, operator-at-a-time engine, \
             temp-table materialization is a memcpy (ClickHouse pays disk/merge costs \
             for it), so eliminating the staging statements does not pay; the pre-joined \
             layout additionally probes ~8x more rows per conv. The mechanism the paper \
             exploits (fewer joins/materializations) is visible in the operator counts, \
             not the wall time. See EXPERIMENTS.md."
        );
    }
    // All strategies agree on the prediction (correctness guard).
    let first = cmp.predictions[0].1;
    assert!(cmp.predictions.iter().all(|(_, p)| *p == first), "strategies disagree");
}
