//! Paper Fig. 14: effectiveness of the hint rules vs. relational
//! selectivity — DL2SQL with and without the collaborative-query hints.
//!
//! Expected shape (paper): "hint rules can significantly improve the
//! performance by pruning unnecessary computation"; the advantage is
//! largest at low selectivity and shrinks as more rows must be inferred
//! anyway.

use collab::{QueryType, StrategyKind};
use workload::queries::template;

use bench::{env, Report};

const SELECTIVITIES: [f64; 5] = [0.0001, 0.001, 0.005, 0.01, 0.05];

fn main() {
    // Plain DL2SQL evaluates the nUDF for every video row; keep the
    // dataset small enough that five full sweeps finish in minutes.
    let env = env(1000, vec![1, 12, 12]);
    let mut report = Report::new(
        "Fig 14: hint rules on/off vs selectivity (host ms, Type 3 query)",
        &["Selectivity(%)", "DL2SQL", "DL2SQL-OP", "Speedup", "Inferences", "OP inferences"],
    );

    let mut speedups = Vec::new();
    for sel in SELECTIVITIES {
        let spec = template(QueryType::Type3, sel, "");
        let plain = env.engine.execute(&spec.sql, StrategyKind::Tight).expect("DL2SQL runs");
        let op =
            env.engine.execute(&spec.sql, StrategyKind::TightOptimized).expect("DL2SQL-OP runs");
        let t_plain = plain.breakdown.total().as_secs_f64() * 1e3;
        let t_op = op.breakdown.total().as_secs_f64() * 1e3;
        let speedup = t_plain / t_op.max(1e-9);
        // Inference counts via flops (equal per-inference work).
        let per_inf = op.sim.inference_flops.max(1) as f64
            / (op.sim.inference_flops as f64 / plain.sim.inference_flops.max(1) as f64
                * plain.sim.inference_flops.max(1) as f64
                / plain.sim.inference_flops.max(1) as f64);
        let _ = per_inf;
        report.row(&[
            format!("{:.2}", sel * 100.0),
            format!("{t_plain:.3}"),
            format!("{t_op:.3}"),
            format!("{speedup:.1}x"),
            format!("{}", plain.sim.dispatches),
            format!("{}", op.sim.dispatches),
        ]);
        report.json(serde_json::json!({
            "experiment": "fig14",
            "selectivity": sel,
            "plain_ms": t_plain,
            "op_ms": t_op,
            "speedup": speedup,
        }));
        speedups.push(speedup);
    }
    report.print();

    println!(
        "speedup at 0.01% selectivity: {:.1}x; at 5%: {:.1}x — paper: hints prune \
         unnecessary computation, most at low selectivity: {}",
        speedups[0],
        speedups[speedups.len() - 1],
        if speedups[0] > 1.5 && speedups[0] > speedups[speedups.len() - 1] {
            "matches"
        } else {
            "check output"
        }
    );
}
