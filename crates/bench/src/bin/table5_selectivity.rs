//! Paper Table V: DL2SQL-OP cost vs. relational-predicate selectivity
//! (0.01 % → 1 %), on the edge profile.
//!
//! Expected shape (paper): inference cost grows steeply with selectivity
//! (more rows survive the relational predicates and must be inferred),
//! loading stays roughly flat, so the total grows. The gap to the other
//! strategies narrows as selectivity grows (more predictions are
//! unavoidable for everyone).

use collab::{QueryType, StrategyKind};
use workload::queries::template;

use bench::{env, Report};

const PAPER_SELECTIVITIES: [f64; 7] = [0.0001, 0.001, 0.002, 0.004, 0.006, 0.008, 0.01];
/// Paper Table V (seconds on the ARM edge device).
const PAPER_ROWS: [(f64, f64, f64); 7] = [
    // (inference, loading, all)
    (0.441, 2.256, 2.697),
    (0.263, 1.129, 2.783), // note: the paper's printed loading row is noisy
    (0.618, 2.175, 2.793),
    (0.857, 2.529, 3.116),
    (1.308, 2.261, 3.569),
    (2.254, 2.231, 4.485),
    (4.651, 2.174, 6.825),
];

fn main() {
    // A larger dataset so the smallest selectivities still admit rows
    // (the paper's 0.01% of 10M fabric rows is 1000 rows; 0.01% of a
    // laptop-scale table quantizes to 0 or 1).
    let env = env(10_000, vec![1, 12, 12]);
    let mut report = Report::new(
        "Table V: DL2SQL-OP vs relational selectivity (host ms)",
        &[
            "Selectivity(%)",
            "Inference",
            "Loading",
            "Relational",
            "All",
            "paper Inf(s)",
            "paper All(s)",
        ],
    );

    let mut totals = Vec::new();
    for (i, sel) in PAPER_SELECTIVITIES.iter().enumerate() {
        // Type 3 exercises the selectivity-driven pruning directly.
        let spec = template(QueryType::Type3, *sel, "");
        let op =
            env.engine.execute(&spec.sql, StrategyKind::TightOptimized).expect("DL2SQL-OP runs");
        let total = op.breakdown.total().as_secs_f64() * 1e3;
        report.row(&[
            format!("{:.2}", sel * 100.0),
            format!("{:.3}", op.breakdown.inference.as_secs_f64() * 1e3),
            format!("{:.3}", op.breakdown.loading.as_secs_f64() * 1e3),
            format!("{:.3}", op.breakdown.relational.as_secs_f64() * 1e3),
            format!("{total:.3}"),
            format!("{:.3}", PAPER_ROWS[i].0),
            format!("{:.3}", PAPER_ROWS[i].2),
        ]);
        report.json(serde_json::json!({
            "experiment": "table5",
            "selectivity": sel,
            "inference_ms": op.breakdown.inference.as_secs_f64() * 1e3,
            "loading_ms": op.breakdown.loading.as_secs_f64() * 1e3,
            "all_ms": total,
        }));
        totals.push(total);
    }
    report.print();

    let grew = totals.last().unwrap() > totals.first().unwrap();
    println!(
        "shape check: total cost grows with selectivity ({:.3} ms -> {:.3} ms): {}",
        totals.first().unwrap(),
        totals.last().unwrap(),
        if grew { "matches paper" } else { "MISMATCH" }
    );
}
