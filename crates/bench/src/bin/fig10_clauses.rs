//! Paper Fig. 10: share of running time per relational clause during
//! DL2SQL inference (Join, GroupBy, Filter, Project, ...).
//!
//! The buckets are folded out of the span trees every statement emits
//! (collector sink + [`obs::SpanTree::fold_operators`]) — the same data
//! EXPLAIN ANALYZE renders — so this figure and EXPLAIN ANALYZE can never
//! disagree on where time went.
//!
//! Expected shape (paper): "the relatively expensive operations are Join
//! and GroupBy".

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dl2sql::{compile_model, NeuralRegistry, Runner};
use minidb::Database;
use workload::dataset::keyframe;

use bench::Report;

const REPS: usize = 20;

fn main() {
    let db = Arc::new(Database::new());
    let registry = NeuralRegistry::shared();
    let model = neuro::zoo::student(vec![1, 12, 12], 6, 7);
    let compiled = Arc::new(compile_model(&db, &registry, &model).expect("student compiles"));
    let runner = Runner::new(Arc::clone(&db), Arc::clone(&registry), compiled).expect("runner");

    // Aggregate operator spans from every statement's tree as it is
    // extracted; the sink fires inside QueryResult finalization.
    let buckets: Arc<Mutex<HashMap<String, obs::OpAgg>>> = Arc::new(Mutex::new(HashMap::new()));
    let sink = Arc::clone(&buckets);
    db.tracer().set_sink(Some(Arc::new(move |tree: &obs::SpanTree| {
        tree.fold_operators(&mut sink.lock().unwrap());
    })));
    db.tracer().enable();

    for rep in 0..REPS {
        let input = keyframe(&[1, 12, 12], 5, rep as u64);
        runner.infer(&input).expect("inference runs");
    }
    db.tracer().disable();
    db.tracer().set_sink(None);

    let mut clauses: Vec<(String, obs::OpAgg)> =
        buckets.lock().unwrap().iter().map(|(k, v)| (k.clone(), *v)).collect();
    clauses.sort_by(|a, b| a.0.cmp(&b.0));
    let total: f64 = clauses.iter().map(|(_, s)| s.self_ns as f64 / 1e9).sum();

    let mut report = Report::new(
        "Fig 10: time per relational clause during DL2SQL inference",
        &["Clause", "Time(ms)", "Share(%)", "Invocations", "RowsOut"],
    );
    let mut join_groupby = 0.0;
    for (name, agg) in &clauses {
        let t = agg.self_ns as f64 / 1e9;
        report.row(&[
            name.clone(),
            obs::fmt_ns(agg.self_ns),
            format!("{:.1}", 100.0 * t / total),
            agg.loops.to_string(),
            agg.rows_out.to_string(),
        ]);
        report.json(serde_json::json!({
            "experiment": "fig10",
            "clause": name,
            "ms": t * 1e3,
            "share": t / total,
        }));
        // The fused operator is join + group-by work in one pass, so it
        // belongs in the paper's "Join and GroupBy dominate" bucket.
        if matches!(name.as_str(), "Join" | "GroupBy" | "JoinAggregate") {
            join_groupby += t;
        }
    }
    report.print();
    println!(
        "Join+GroupBy share: {:.1}% — paper: \"the relatively expensive operations are \
         Join and GroupBy\": {}",
        100.0 * join_groupby / total,
        if join_groupby / total > 0.4 { "matches" } else { "MISMATCH" }
    );
}
