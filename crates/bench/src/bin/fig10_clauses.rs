//! Paper Fig. 10: share of running time per relational clause during
//! DL2SQL inference (Join, GroupBy, Filter, Project, ...).
//!
//! Expected shape (paper): "the relatively expensive operations are Join
//! and GroupBy".

use std::sync::Arc;

use dl2sql::{compile_model, NeuralRegistry, Runner};
use minidb::{Database, OperatorKind};
use workload::dataset::keyframe;

use bench::{fmt_duration, Report};

const REPS: usize = 20;

fn main() {
    let db = Arc::new(Database::new());
    let registry = NeuralRegistry::shared();
    let model = neuro::zoo::student(vec![1, 12, 12], 6, 7);
    let compiled = Arc::new(compile_model(&db, &registry, &model).expect("student compiles"));
    let runner = Runner::new(Arc::clone(&db), Arc::clone(&registry), compiled).expect("runner");

    db.profiler().reset();
    for rep in 0..REPS {
        let input = keyframe(&[1, 12, 12], 5, rep as u64);
        runner.infer(&input).expect("inference runs");
    }
    let snapshot = db.profiler().snapshot();
    let total: f64 = snapshot.iter().map(|(_, s)| s.total.as_secs_f64()).sum();

    let mut report = Report::new(
        "Fig 10: time per relational clause during DL2SQL inference",
        &["Clause", "Time(ms)", "Share(%)", "Invocations", "RowsOut"],
    );
    let mut join_groupby = 0.0;
    for (kind, stats) in &snapshot {
        let t = stats.total.as_secs_f64();
        report.row(&[
            kind.label().to_string(),
            fmt_duration(stats.total),
            format!("{:.1}", 100.0 * t / total),
            stats.invocations.to_string(),
            stats.rows_out.to_string(),
        ]);
        report.json(serde_json::json!({
            "experiment": "fig10",
            "clause": kind.label(),
            "ms": t * 1e3,
            "share": t / total,
        }));
        // The fused operator is join + group-by work in one pass, so it
        // belongs in the paper's "Join and GroupBy dominate" bucket.
        if matches!(kind, OperatorKind::Join | OperatorKind::GroupBy | OperatorKind::JoinAggregate)
        {
            join_groupby += t;
        }
    }
    report.print();
    println!(
        "Join+GroupBy share: {:.1}% — paper: \"the relatively expensive operations are \
         Join and GroupBy\": {}",
        100.0 * join_groupby / total,
        if join_groupby / total > 0.4 { "matches" } else { "MISMATCH" }
    );
}
