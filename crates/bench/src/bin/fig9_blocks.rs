//! Paper Fig. 9: running time of each CNN block of the student model
//! under DL2SQL (Conv1, Reshape1, BN, ReLU, Pool, FC, Classification).
//!
//! Expected shape (paper): "the main bottleneck is the convolution
//! operators" — the ConvN bars dominate, Reshape (the mapping join) comes
//! next, the element-wise operators are cheap.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use dl2sql::{compile_model, NeuralRegistry, Runner};
use minidb::Database;
use workload::dataset::keyframe;

use bench::{fmt_duration, Report};

const REPS: usize = 20;

fn main() {
    let db = Arc::new(Database::new());
    let registry = NeuralRegistry::shared();
    let model = neuro::zoo::student(vec![1, 12, 12], 6, 7);
    let compiled = Arc::new(compile_model(&db, &registry, &model).expect("student compiles"));
    let runner = Runner::new(Arc::clone(&db), Arc::clone(&registry), Arc::clone(&compiled))
        .expect("runner builds");

    let mut per_label: BTreeMap<String, Duration> = BTreeMap::new();
    let mut order: Vec<String> = Vec::new();
    for rep in 0..REPS {
        let input = keyframe(&[1, 12, 12], 42, rep as u64);
        let out = runner.infer(&input).expect("inference runs");
        for t in &out.step_timings {
            if !per_label.contains_key(&t.label) {
                order.push(t.label.clone());
            }
            *per_label.entry(t.label.clone()).or_default() += t.duration;
        }
    }

    let mut report = Report::new(
        "Fig 9: per-block running time of the student model (avg ms over 20 inferences)",
        &["Block", "Time(ms)"],
    );
    let mut conv_total = Duration::ZERO;
    let mut other_total = Duration::ZERO;
    for label in &order {
        let avg = per_label[label] / REPS as u32;
        report.row(&[label.clone(), fmt_duration(avg)]);
        report.json(serde_json::json!({
            "experiment": "fig9",
            "block": label,
            "ms": avg.as_secs_f64() * 1e3,
        }));
        if label.starts_with("Conv") || label.starts_with("FC") {
            conv_total += avg;
        } else {
            other_total += avg;
        }
    }
    report.print();
    println!(
        "convolution-family time {:.3} ms vs everything else {:.3} ms — paper: \
         \"the main bottleneck is the convolution operators\": {}",
        conv_total.as_secs_f64() * 1e3,
        other_total.as_secs_f64() * 1e3,
        if conv_total > other_total { "matches" } else { "MISMATCH" }
    );
}
