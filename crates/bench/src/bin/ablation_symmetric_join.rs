//! Ablation: the symmetric hash join's bucket-level LRU (paper
//! Sec. IV-B, rule 3) under shrinking memory budgets.
//!
//! The paper's rule keeps per-bucket hash state in memory and evicts LRU
//! buckets when the buffer fills, reloading a bucket completely when its
//! key reappears ("avoiding the consecutive cache misses"). This harness
//! joins a UDF-keyed table pair under decreasing bucket budgets and
//! reports loads/evictions and wall time — correctness is budget-
//! independent, cost is not.

use minidb::exec::symmetric::symmetric_hash_join_with_metrics;
use minidb::exec::{ExecConfig, ExecContext};
use minidb::expr::BoundExpr;
use minidb::{Catalog, Column, DataType, Field, Profiler, Schema, Table, UdfRegistry};

use bench::Report;

fn table(keys: Vec<i64>) -> Table {
    let n = keys.len();
    Table::new(
        Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Int64)]),
        vec![Column::Int64(keys), Column::Int64((0..n as i64).collect())],
    )
    .expect("table is well-formed")
}

fn main() {
    // Two 20k-row tables over 512 distinct keys, with adversarial key
    // orderings (ascending vs descending) so small LRU budgets thrash.
    let n = 20_000i64;
    let distinct = 512i64;
    let lt = table((0..n).map(|i| i % distinct).collect());
    let rt = table((0..n).map(|i| (n - 1 - i) % distinct).collect());
    let schema = Schema::new(
        lt.schema().fields().iter().chain(rt.schema().fields()).cloned().collect::<Vec<_>>(),
    );
    let keys = vec![(BoundExpr::Column(0), BoundExpr::Column(0))];

    let catalog = Catalog::new();
    let udfs = UdfRegistry::new();
    let profiler = Profiler::new();

    let mut report = Report::new(
        "Ablation: symmetric hash join vs bucket budget (20k x 20k rows, 512 keys)",
        &["Budget(buckets)", "Loads", "Evictions", "Rows", "Time(ms)"],
    );
    let mut expected_rows = None;
    for budget in [usize::MAX, 1024, 512, 256, 64, 8] {
        let config = ExecConfig {
            symmetric_batch_rows: 1024,
            symmetric_bucket_budget: budget,
            ..Default::default()
        };
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };
        let t0 = std::time::Instant::now();
        let (out, metrics) =
            symmetric_hash_join_with_metrics(&lt, &rt, &keys, None, None, &schema, &ctx)
                .expect("join runs");
        let elapsed = t0.elapsed();
        match expected_rows {
            None => expected_rows = Some(out.num_rows()),
            Some(e) => assert_eq!(out.num_rows(), e, "budget must not change results"),
        }
        let label = if budget == usize::MAX { "unbounded".to_string() } else { budget.to_string() };
        report.row(&[
            label.clone(),
            metrics.bucket_loads.to_string(),
            metrics.bucket_evictions.to_string(),
            out.num_rows().to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
        ]);
        report.json(serde_json::json!({
            "experiment": "ablation_symmetric_join",
            "budget": label,
            "loads": metrics.bucket_loads,
            "evictions": metrics.bucket_evictions,
            "ms": elapsed.as_secs_f64() * 1e3,
        }));
    }
    report.print();
    println!(
        "results are identical at every budget; bucket loads grow as the LRU thrashes \
         below the working set (512 keys x 2 sides)"
    );
}
