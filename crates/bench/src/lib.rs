//! Shared helpers for the benchmark harness binaries (one binary per
//! table/figure of the paper's evaluation; see `src/bin/`).

pub mod report;
pub mod setup;

pub use report::{fmt_duration, Report};
pub use setup::{cached_env, default_env, env, Env};
