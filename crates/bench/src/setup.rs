//! Shared environment setup for the harness binaries.

use std::sync::Arc;

use collab::CollabEngine;
use minidb::Database;
use workload::{build_dataset, build_repo, DatasetConfig, RepoConfig};

/// The standard harness environment: dataset + 20-model repository +
/// engine, all deterministic.
pub struct Env {
    pub engine: CollabEngine,
    pub dataset: workload::DatasetSummary,
    pub config: DatasetConfig,
}

/// Builds the environment with `video_rows` videos of `keyframe_shape`
/// keyframes.
pub fn env(video_rows: usize, keyframe_shape: Vec<usize>) -> Env {
    let config =
        DatasetConfig { video_rows, keyframe_shape: keyframe_shape.clone(), ..Default::default() };
    let db = Arc::new(Database::new());
    let dataset = build_dataset(&db, &config).expect("dataset builds");
    let repo =
        build_repo(&RepoConfig { keyframe_shape, patterns: config.patterns, ..Default::default() });
    Env { engine: CollabEngine::new(db, repo), dataset, config }
}

/// The default environment used by most figures (2 000 videos, 12×12
/// keyframes).
pub fn default_env() -> Env {
    env(2000, vec![1, 12, 12])
}

/// As [`env`], with the warm path enabled: nUDF inference memoization and
/// compiled-artifact reuse opted in (the plan cache is on by default).
/// The figure harnesses deliberately do NOT use this — they measure cold
/// costs; it exists for the cache benchmark and ablations.
pub fn cached_env(video_rows: usize, keyframe_shape: Vec<usize>) -> Env {
    let e = env(video_rows, keyframe_shape);
    e.engine.set_inference_cache_capacity(1 << 16);
    e.engine.set_artifact_cache_capacity(32);
    e
}
