//! Human-readable + machine-readable experiment reports.
//!
//! Every harness binary prints (a) an aligned text table mirroring the
//! paper's table/figure, including the paper's reference numbers where
//! applicable, and (b) one JSON line per data point (for EXPERIMENTS.md
//! bookkeeping and plotting).

use std::time::Duration;

/// Formats a duration as milliseconds with three decimals.
pub fn fmt_duration(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// A simple experiment report builder.
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    json_lines: Vec<String>,
}

impl Report {
    /// Starts a report with a title ("Table V", "Fig 9", ...).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Report {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            json_lines: Vec::new(),
        }
    }

    /// Adds a display row.
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Adds a machine-readable record.
    pub fn json(&mut self, value: serde_json::Value) {
        self.json_lines.push(value.to_string());
    }

    /// Renders and prints the report.
    pub fn print(&self) {
        println!("== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.headers));
        for row in &self.rows {
            println!("{}", line(row));
        }
        for j in &self.json_lines {
            println!("JSON {j}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut r = Report::new("Test", &["a", "long_header"]);
        r.row(&["1".into(), "2".into()]);
        r.json(serde_json::json!({"a": 1}));
        r.print(); // should not panic
        assert_eq!(fmt_duration(Duration::from_millis(1)), "1.000");
    }
}
