//! `govern` — resource governance and fault tolerance primitives.
//!
//! The execution layers (taskpool morsels, `minidb` operators, the
//! `core` SQL-program runner, the `collab` strategies) all share one
//! vocabulary for "this query must stop now":
//!
//! * [`CancelToken`] — cooperative cancellation flag, checked at morsel
//!   boundaries and between layer steps,
//! * [`Governor`] — a token + optional deadline bundled into a single
//!   cheap [`Governor::check`] call (one branch when governance is off),
//! * [`MemoryBudget`] — an atomic reservation tracker charged by the
//!   memory-hungry operators (hash-join builds, group-by tables, fused
//!   accumulators, state-table materialization) that rejects with the
//!   largest live reservations listed instead of OOM-aborting,
//! * [`RetryPolicy`] — bounded exponential backoff for the fragile
//!   cross-system DB↔DL transfer of the independent strategy,
//! * [`failpoints`] — a deterministic fault-injection harness compiled
//!   in only when the `failpoints` cargo feature is on (tests/benches).
//!
//! Every failure is a typed [`QueryError`]; the engine crates embed it
//! unchanged in their own error enums so a cancellation raised ten
//! frames deep in a morsel loop surfaces to the caller untouched.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A typed governance failure. This is the error every layer agrees on;
/// `minidb::Error`, `collab::Error` and `dl2sql::Error` carry it as a
/// variant rather than flattening it to a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query's [`CancelToken`] was triggered.
    Canceled,
    /// The query ran past its configured deadline.
    TimedOut {
        /// The configured time limit.
        limit: Duration,
    },
    /// A memory reservation would push usage past the budget.
    BudgetExceeded {
        /// Bytes the failing reservation asked for.
        requested: u64,
        /// The configured budget in bytes.
        limit: u64,
        /// Bytes already reserved when the request failed.
        in_use: u64,
        /// The largest live reservations (site label, bytes), largest
        /// first, to make the rejection actionable.
        largest: Vec<(String, u64)>,
    },
    /// A morsel worker panicked; the panic was caught and the pool is
    /// still usable.
    WorkerPanic(String),
    /// A retried operation kept failing until the policy gave up.
    RetryExhausted {
        /// Attempts made (initial try included).
        attempts: u32,
        /// Message of the final failure.
        last: String,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Canceled => write!(f, "query canceled"),
            QueryError::TimedOut { limit } => {
                write!(f, "query exceeded its {limit:?} time limit")
            }
            QueryError::BudgetExceeded { requested, limit, in_use, largest } => {
                write!(
                    f,
                    "memory budget exceeded: requested {requested} B with {in_use}/{limit} B \
                     in use; largest reservations: "
                )?;
                if largest.is_empty() {
                    write!(f, "none")?;
                } else {
                    for (i, (site, bytes)) in largest.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{site}={bytes} B")?;
                    }
                }
                Ok(())
            }
            QueryError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            QueryError::RetryExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts; last error: {last}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Cooperative cancellation flag. Cloning shares the flag; any clone can
/// cancel, every holder observes it at the next check.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    pub fn is_canceled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// Clears the flag so the owning handle can be reused for the next
    /// statement.
    pub fn reset(&self) {
        self.flag.store(false, Ordering::Release);
    }
}

/// A per-statement governance checkpoint: cancellation token plus an
/// optional wall-clock deadline, folded into one `check()` call.
///
/// When neither is configured `armed` is false and [`Governor::check`]
/// is a single predictable branch — this is what keeps the
/// disabled-governance path inside the ≤3% overhead budget.
#[derive(Debug, Clone, Default)]
pub struct Governor {
    token: Option<CancelToken>,
    deadline: Option<Instant>,
    limit: Option<Duration>,
    armed: bool,
}

impl Governor {
    /// A governor with no token and no deadline; `check()` always passes.
    pub fn unrestricted() -> Self {
        Self::default()
    }

    /// Builds a governor from an optional token and an optional timeout
    /// measured from now.
    pub fn new(token: Option<CancelToken>, timeout: Option<Duration>) -> Self {
        let deadline = timeout.map(|t| Instant::now() + t);
        let armed = token.is_some() || deadline.is_some();
        Governor { token, deadline, limit: timeout, armed }
    }

    /// True when a token or deadline is attached.
    pub fn is_armed(&self) -> bool {
        self.armed
    }

    /// Returns an error if the query was canceled or ran past its
    /// deadline. Call this at morsel boundaries and on a stride inside
    /// serial loops.
    #[inline]
    pub fn check(&self) -> Result<(), QueryError> {
        if !self.armed {
            return Ok(());
        }
        self.check_armed()
    }

    #[cold]
    fn check_armed(&self) -> Result<(), QueryError> {
        if let Some(token) = &self.token {
            if token.is_canceled() {
                return Err(QueryError::Canceled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(QueryError::TimedOut { limit: self.limit.unwrap_or_default() });
            }
        }
        Ok(())
    }
}

/// An atomic memory-reservation tracker. Operators reserve an estimate
/// before building large state; the reservation releases on drop, so an
/// error path that unwinds mid-operator leaves the budget clean.
#[derive(Debug)]
pub struct MemoryBudget {
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
    rejections: AtomicU64,
    next_id: AtomicU64,
    ledger: Mutex<HashMap<u64, (String, u64)>>,
}

impl MemoryBudget {
    /// A budget capped at `limit` bytes. `limit == 0` means "no budget";
    /// prefer not constructing one at all in that case.
    pub fn new(limit: u64) -> Self {
        MemoryBudget {
            limit,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
            rejections: AtomicU64::new(0),
            next_id: AtomicU64::new(0),
            ledger: Mutex::new(HashMap::new()),
        }
    }

    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Bytes currently reserved.
    pub fn in_use(&self) -> u64 {
        self.used.load(Ordering::Acquire)
    }

    /// High-water mark of reserved bytes.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Acquire)
    }

    /// Number of reservations rejected so far.
    pub fn rejections(&self) -> u64 {
        self.rejections.load(Ordering::Acquire)
    }

    /// Reserves `bytes` for `site`, or fails with
    /// [`QueryError::BudgetExceeded`] listing the largest live
    /// reservations. The returned guard releases the bytes on drop.
    pub fn reserve(self: &Arc<Self>, site: &str, bytes: u64) -> Result<Reservation, QueryError> {
        failpoints::fire("budget.reserve").map_err(|fault| {
            self.rejections.fetch_add(1, Ordering::Relaxed);
            match fault {
                failpoints::Fault::OutOfMemory => self.exceeded(bytes),
                other => self.exceeded_with_note(bytes, &format!("{other:?}")),
            }
        })?;
        let mut used = self.used.load(Ordering::Relaxed);
        loop {
            let new = used.saturating_add(bytes);
            if self.limit > 0 && new > self.limit {
                self.rejections.fetch_add(1, Ordering::Relaxed);
                return Err(self.exceeded(bytes));
            }
            match self.used.compare_exchange_weak(used, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => {
                    self.peak.fetch_max(new, Ordering::AcqRel);
                    break;
                }
                Err(actual) => used = actual,
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.ledger.lock().expect("budget ledger poisoned").insert(id, (site.to_string(), bytes));
        Ok(Reservation { budget: Arc::clone(self), id, bytes })
    }

    fn exceeded(&self, requested: u64) -> QueryError {
        QueryError::BudgetExceeded {
            requested,
            limit: self.limit,
            in_use: self.in_use(),
            largest: self.largest(3),
        }
    }

    fn exceeded_with_note(&self, requested: u64, note: &str) -> QueryError {
        let mut largest = self.largest(3);
        largest.insert(0, (format!("injected:{note}"), 0));
        QueryError::BudgetExceeded { requested, limit: self.limit, in_use: self.in_use(), largest }
    }

    /// The `k` largest live reservations, largest first.
    pub fn largest(&self, k: usize) -> Vec<(String, u64)> {
        let ledger = self.ledger.lock().expect("budget ledger poisoned");
        let mut entries: Vec<(String, u64)> = ledger.values().cloned().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries.truncate(k);
        entries
    }

    fn release(&self, id: u64, bytes: u64) {
        self.used.fetch_sub(bytes, Ordering::AcqRel);
        self.ledger.lock().expect("budget ledger poisoned").remove(&id);
    }
}

/// RAII guard for one memory reservation; releases on drop.
#[derive(Debug)]
pub struct Reservation {
    budget: Arc<MemoryBudget>,
    id: u64,
    bytes: u64,
}

impl Reservation {
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.release(self.id, self.bytes);
    }
}

/// Bounded exponential backoff for a fallible call, with an optional
/// per-call timeout the caller enforces on each attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (>= 1).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_delay: Duration,
    /// Backoff multiplier applied per retry.
    pub multiplier: f64,
    /// Ceiling on any single delay.
    pub max_delay: Duration,
    /// Deadline for each individual attempt, enforced by the call site
    /// (e.g. a channel `recv_timeout`).
    pub call_timeout: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            multiplier: 2.0,
            max_delay: Duration::from_millis(100),
            call_timeout: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries and never times out a call.
    pub fn none() -> Self {
        RetryPolicy { max_attempts: 1, call_timeout: None, ..Default::default() }
    }

    /// Backoff delay before retry number `retry` (0-based: the delay
    /// between the first failure and the second attempt is `delay(0)`).
    pub fn delay(&self, retry: u32) -> Duration {
        let factor = self.multiplier.max(1.0).powi(retry.min(30) as i32);
        let nanos = (self.base_delay.as_nanos() as f64 * factor) as u128;
        Duration::from_nanos(nanos.min(self.max_delay.as_nanos()) as u64)
    }
}

pub mod failpoints {
    //! Deterministic fault injection.
    //!
    //! Call sites are plain `fire("site.name")?` calls compiled into the
    //! engine crates; whether they do anything is decided *here* by the
    //! `failpoints` cargo feature. Release builds (`cargo build
    //! --release`) compile `fire` to an inline `Ok(())`; test and bench
    //! builds (the root package enables the feature from
    //! `[dev-dependencies]`) evaluate the armed [`Schedule`].
    //!
    //! Schedules are deterministic by construction: each rule fires on an
    //! explicit hit window (`skip` hits pass, then `count` hits fault),
    //! and seeded latency jitter uses a fixed LCG over the schedule seed
    //! and the per-site hit counter — the same seed always produces the
    //! same fault sequence.
    //!
    //! Site catalog (see DESIGN.md §11 for the full table):
    //! * `independent.transfer` — the DB↔DL byte-channel round trip,
    //! * `exec.morsel` — start of every parallel morsel in `minidb`,
    //! * `budget.reserve` — every [`super::MemoryBudget`] reservation.

    use std::time::Duration;

    /// What an armed failpoint does when it triggers.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum Fault {
        /// Return an injected error with this message.
        Error(String),
        /// Panic with this message (exercises panic-safety paths).
        Panic(String),
        /// Sleep this long, then succeed (exercises timeout paths).
        Latency(Duration),
        /// Simulate an allocation failure (meaningful at
        /// `budget.reserve`).
        OutOfMemory,
    }

    /// One injection rule: at `site`, let `skip` hits pass, then trigger
    /// `fault` for the next `count` hits (`u32::MAX` = forever).
    #[derive(Debug, Clone)]
    #[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
    struct Rule {
        site: String,
        skip: u32,
        count: u32,
        fault: Fault,
        jitter_max: Option<Duration>,
    }

    /// A deterministic fault schedule. Built once, armed globally with
    /// [`arm`], removed with [`disarm`].
    #[derive(Debug, Clone, Default)]
    #[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
    pub struct Schedule {
        seed: u64,
        rules: Vec<Rule>,
    }

    impl Schedule {
        /// An empty schedule; `seed` drives latency jitter only.
        pub fn new(seed: u64) -> Self {
            Schedule { seed, rules: Vec::new() }
        }

        /// Trigger `fault` on the first `count` hits of `site`.
        pub fn fail(mut self, site: &str, count: u32, fault: Fault) -> Self {
            self.rules.push(Rule {
                site: site.to_string(),
                skip: 0,
                count,
                fault,
                jitter_max: None,
            });
            self
        }

        /// Let `skip` hits of `site` pass, then trigger `fault` for the
        /// next `count` hits.
        pub fn fail_after(mut self, site: &str, skip: u32, count: u32, fault: Fault) -> Self {
            self.rules.push(Rule { site: site.to_string(), skip, count, fault, jitter_max: None });
            self
        }

        /// Add seeded latency jitter in `[0, max]` to the first `count`
        /// hits of `site`; the sequence is a pure function of the
        /// schedule seed.
        pub fn jitter(mut self, site: &str, count: u32, max: Duration) -> Self {
            self.rules.push(Rule {
                site: site.to_string(),
                skip: 0,
                count,
                fault: Fault::Latency(Duration::ZERO),
                jitter_max: Some(max),
            });
            self
        }
    }

    #[cfg(feature = "failpoints")]
    mod active {
        use super::{Fault, Schedule};
        use std::collections::HashMap;
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::Mutex;
        use std::time::Duration;

        static ARMED: AtomicBool = AtomicBool::new(false);
        static STATE: Mutex<Option<State>> = Mutex::new(None);

        struct State {
            schedule: Schedule,
            hits: HashMap<String, u64>,
        }

        pub fn arm(schedule: Schedule) {
            *STATE.lock().expect("failpoint state poisoned") =
                Some(State { schedule, hits: HashMap::new() });
            ARMED.store(true, Ordering::Release);
        }

        pub fn disarm() {
            ARMED.store(false, Ordering::Release);
            *STATE.lock().expect("failpoint state poisoned") = None;
        }

        pub fn hits(site: &str) -> u64 {
            STATE
                .lock()
                .expect("failpoint state poisoned")
                .as_ref()
                .and_then(|s| s.hits.get(site).copied())
                .unwrap_or(0)
        }

        pub fn fire(site: &str) -> Result<(), Fault> {
            if !ARMED.load(Ordering::Acquire) {
                return Ok(());
            }
            let action = {
                let mut guard = STATE.lock().expect("failpoint state poisoned");
                let Some(state) = guard.as_mut() else { return Ok(()) };
                let hit = state.hits.entry(site.to_string()).or_insert(0);
                let this_hit = *hit;
                *hit += 1;
                let seed = state.schedule.seed;
                state.schedule.rules.iter().filter(|r| r.site == site).find_map(|r| {
                    let lo = r.skip as u64;
                    let hi = lo.saturating_add(r.count as u64);
                    if this_hit < lo || this_hit >= hi {
                        return None;
                    }
                    match r.jitter_max {
                        Some(max) => Some(Fault::Latency(jittered(seed, site, this_hit, max))),
                        None => Some(r.fault.clone()),
                    }
                })
            };
            match action {
                None => Ok(()),
                Some(Fault::Latency(d)) => {
                    if !d.is_zero() {
                        std::thread::sleep(d);
                    }
                    Ok(())
                }
                Some(Fault::Panic(msg)) => panic!("failpoint {site}: {msg}"),
                Some(fault) => Err(fault),
            }
        }

        /// Deterministic jitter: LCG over (seed, site hash, hit index).
        fn jittered(seed: u64, site: &str, hit: u64, max: Duration) -> Duration {
            let mut x = seed ^ hit.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            for b in site.bytes() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(b as u64);
            }
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let frac = (x >> 11) as f64 / (1u64 << 53) as f64;
            Duration::from_nanos((max.as_nanos() as f64 * frac) as u64)
        }
    }

    /// Arms `schedule` globally. Tests arming different schedules must
    /// serialize themselves (the robustness suite uses a shared mutex).
    pub fn arm(schedule: Schedule) {
        #[cfg(feature = "failpoints")]
        active::arm(schedule);
        #[cfg(not(feature = "failpoints"))]
        let _ = schedule;
    }

    /// Disarms the active schedule, if any.
    pub fn disarm() {
        #[cfg(feature = "failpoints")]
        active::disarm();
    }

    /// Hits recorded at `site` since the schedule was armed. Always 0
    /// when the `failpoints` feature is off.
    pub fn hits(site: &str) -> u64 {
        #[cfg(feature = "failpoints")]
        return active::hits(site);
        #[cfg(not(feature = "failpoints"))]
        {
            let _ = site;
            0
        }
    }

    /// True when fault injection is compiled in.
    pub fn compiled_in() -> bool {
        cfg!(feature = "failpoints")
    }

    /// Evaluates the failpoint at `site`. `Latency` faults sleep and
    /// succeed; `Panic` faults panic (for panic-safety tests); `Error`
    /// and `OutOfMemory` come back as `Err` for the call site to map
    /// into its own error type. A no-op unless the `failpoints` feature
    /// is enabled *and* a schedule is armed.
    #[inline]
    pub fn fire(site: &str) -> Result<(), Fault> {
        #[cfg(feature = "failpoints")]
        return active::fire(site);
        #[cfg(not(feature = "failpoints"))]
        {
            let _ = site;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn unarmed_governor_always_passes() {
        let g = Governor::unrestricted();
        assert!(!g.is_armed());
        for _ in 0..10 {
            assert_eq!(g.check(), Ok(()));
        }
    }

    #[test]
    fn canceled_token_trips_governor() {
        let token = CancelToken::new();
        let g = Governor::new(Some(token.clone()), None);
        assert_eq!(g.check(), Ok(()));
        token.cancel();
        assert_eq!(g.check(), Err(QueryError::Canceled));
        token.reset();
        assert_eq!(g.check(), Ok(()));
    }

    #[test]
    fn deadline_trips_governor() {
        let g = Governor::new(None, Some(Duration::from_millis(5)));
        assert_eq!(g.check(), Ok(()));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(g.check(), Err(QueryError::TimedOut { limit: Duration::from_millis(5) }));
    }

    #[test]
    fn cancel_takes_priority_over_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let g = Governor::new(Some(token), Some(Duration::ZERO));
        assert_eq!(g.check(), Err(QueryError::Canceled));
    }

    #[test]
    fn budget_reserve_and_release() {
        let budget = Arc::new(MemoryBudget::new(1000));
        let a = budget.reserve("join.build", 600).unwrap();
        assert_eq!(budget.in_use(), 600);
        let err = budget.reserve("agg.groups", 500).unwrap_err();
        match err {
            QueryError::BudgetExceeded { requested, limit, in_use, largest } => {
                assert_eq!(requested, 500);
                assert_eq!(limit, 1000);
                assert_eq!(in_use, 600);
                assert_eq!(largest, vec![("join.build".to_string(), 600)]);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(budget.rejections(), 1);
        drop(a);
        assert_eq!(budget.in_use(), 0);
        let _b = budget.reserve("agg.groups", 900).unwrap();
        assert_eq!(budget.peak(), 900);
    }

    #[test]
    fn zero_limit_budget_only_tracks() {
        let budget = Arc::new(MemoryBudget::new(0));
        let _r = budget.reserve("x", u64::MAX / 2).unwrap();
        assert!(budget.reserve("y", u64::MAX / 2).is_ok());
    }

    #[test]
    fn largest_lists_top_k_sorted() {
        let budget = Arc::new(MemoryBudget::new(0));
        let _a = budget.reserve("small", 10).unwrap();
        let _b = budget.reserve("large", 300).unwrap();
        let _c = budget.reserve("mid", 200).unwrap();
        let _d = budget.reserve("tiny", 1).unwrap();
        assert_eq!(
            budget.largest(3),
            vec![("large".to_string(), 300), ("mid".to_string(), 200), ("small".to_string(), 10)]
        );
    }

    #[test]
    fn retry_delay_backs_off_and_caps() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_millis(2),
            multiplier: 2.0,
            max_delay: Duration::from_millis(5),
            call_timeout: None,
        };
        assert_eq!(p.delay(0), Duration::from_millis(2));
        assert_eq!(p.delay(1), Duration::from_millis(4));
        assert_eq!(p.delay(2), Duration::from_millis(5)); // capped
        assert_eq!(p.delay(10), Duration::from_millis(5));
    }

    #[test]
    fn error_display_is_informative() {
        let e = QueryError::BudgetExceeded {
            requested: 64,
            limit: 100,
            in_use: 80,
            largest: vec![("join.build".into(), 80)],
        };
        let msg = e.to_string();
        assert!(msg.contains("64 B"), "{msg}");
        assert!(msg.contains("join.build=80 B"), "{msg}");
        assert!(QueryError::Canceled.to_string().contains("canceled"));
    }

    #[cfg(feature = "failpoints")]
    mod failpoint_tests {
        use super::super::failpoints::{arm, disarm, fire, hits, Fault, Schedule};
        use std::sync::Mutex;

        // Failpoint state is global; serialize the tests that arm it.
        static GATE: Mutex<()> = Mutex::new(());

        #[test]
        fn fail_n_times_then_succeed() {
            let _g = GATE.lock().unwrap();
            arm(Schedule::new(7).fail("t.site", 2, Fault::Error("boom".into())));
            assert_eq!(fire("t.site"), Err(Fault::Error("boom".into())));
            assert_eq!(fire("t.site"), Err(Fault::Error("boom".into())));
            assert_eq!(fire("t.site"), Ok(()));
            assert_eq!(hits("t.site"), 3);
            disarm();
            assert_eq!(fire("t.site"), Ok(()));
        }

        #[test]
        fn fail_after_skips_early_hits() {
            let _g = GATE.lock().unwrap();
            arm(Schedule::new(7).fail_after("t.skip", 1, 1, Fault::OutOfMemory));
            assert_eq!(fire("t.skip"), Ok(()));
            assert_eq!(fire("t.skip"), Err(Fault::OutOfMemory));
            assert_eq!(fire("t.skip"), Ok(()));
            disarm();
        }

        #[test]
        fn jitter_is_deterministic_per_seed() {
            let _g = GATE.lock().unwrap();
            arm(Schedule::new(42).jitter("t.lat", 3, std::time::Duration::from_micros(50)));
            let t0 = std::time::Instant::now();
            for _ in 0..3 {
                assert_eq!(fire("t.lat"), Ok(()));
            }
            let _ = t0.elapsed();
            assert_eq!(hits("t.lat"), 3);
            disarm();
        }
    }
}
