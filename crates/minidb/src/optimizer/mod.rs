//! Rule/cost-based optimizer.
//!
//! The planner leaves the FROM clause as an n-ary [`LogicalPlan::MultiJoin`]
//! with a pool of bound predicate conjuncts. This module lowers it:
//!
//! 1. single-relation predicates are pushed onto their relation,
//! 2. cross-relation equalities become hash-join keys,
//! 3. joins are ordered greedily by estimated output cardinality using the
//!    installed [`CostModel`] (the DL2SQL crate swaps in the paper's
//!    customized model through the same interface),
//! 4. the paper's hint rules (Sec. IV-B) are applied when enabled:
//!    *nUDF placement* — each UDF predicate is either evaluated at scan
//!    time or delayed past the joins, decided by comparing full-plan cost
//!    estimates; *symmetric hash join* — a join whose key contains a UDF
//!    call switches to [`JoinAlgorithm::SymmetricHash`].

pub mod fold;
pub mod fuse;
pub mod prune;

use std::sync::Arc;

pub use fold::fold_plan_constants;
pub use fuse::fuse_join_aggregates;
pub use prune::prune_columns;

use crate::cost::{CostContext, CostModel};
use crate::error::{Error, Result};
use crate::expr::BoundExpr;
use crate::plan::logical::{JoinAlgorithm, LogicalPlan};
use crate::sql::ast::BinOp;
use crate::table::{Field, Schema};

/// Optimizer behavior switches.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Order joins by estimated cardinality (vs. the textual FROM order).
    pub reorder_joins: bool,
    /// Apply the nUDF placement hint (paper Sec. IV-B rule 1): compare
    /// evaluating UDF predicates at scan time against delaying them past
    /// the joins, and keep the cheaper plan.
    pub udf_placement_hints: bool,
    /// Use the symmetric hash join when a join key contains a UDF call
    /// (paper Sec. IV-B rule 3).
    pub symmetric_for_udf_joins: bool,
    /// Rewrite `Aggregate` over an equi hash `Join` into the fused
    /// [`LogicalPlan::JoinAggregate`] operator, which folds aggregate
    /// partials during the probe instead of materializing the join output
    /// (the DL2SQL conv hot path). Disable to force the unfused pair.
    pub fuse_join_aggregates: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            reorder_joins: true,
            udf_placement_hints: false,
            symmetric_for_udf_joins: false,
            fuse_join_aggregates: true,
        }
    }
}

/// The optimizer.
pub struct Optimizer {
    pub config: OptimizerConfig,
    pub cost_model: Arc<dyn CostModel>,
}

impl Optimizer {
    /// Creates an optimizer with the given configuration and cost model.
    pub fn new(config: OptimizerConfig, cost_model: Arc<dyn CostModel>) -> Self {
        Optimizer { config, cost_model }
    }

    /// Optimizes a plan: children first, then any MultiJoin at this level.
    pub fn optimize(&self, plan: LogicalPlan, ctx: &CostContext<'_>) -> Result<LogicalPlan> {
        let plan = self.optimize_children(plan, ctx)?;
        match plan {
            LogicalPlan::MultiJoin { inputs, predicates, schema } => {
                self.lower_multijoin(inputs, predicates, schema, ctx)
            }
            other => Ok(other),
        }
    }

    fn optimize_children(&self, plan: LogicalPlan, ctx: &CostContext<'_>) -> Result<LogicalPlan> {
        Ok(match plan {
            LogicalPlan::Filter { input, predicate } => {
                LogicalPlan::Filter { input: Box::new(self.optimize(*input, ctx)?), predicate }
            }
            LogicalPlan::Project { input, exprs, schema } => {
                LogicalPlan::Project { input: Box::new(self.optimize(*input, ctx)?), exprs, schema }
            }
            LogicalPlan::Join { left, right, keys, residual, algorithm, output, schema } => {
                LogicalPlan::Join {
                    left: Box::new(self.optimize(*left, ctx)?),
                    right: Box::new(self.optimize(*right, ctx)?),
                    keys,
                    residual,
                    algorithm,
                    output,
                    schema,
                }
            }
            LogicalPlan::Cross { left, right, schema } => LogicalPlan::Cross {
                left: Box::new(self.optimize(*left, ctx)?),
                right: Box::new(self.optimize(*right, ctx)?),
                schema,
            },
            LogicalPlan::Aggregate { input, group, aggs, schema } => LogicalPlan::Aggregate {
                input: Box::new(self.optimize(*input, ctx)?),
                group,
                aggs,
                schema,
            },
            LogicalPlan::JoinAggregate { left, right, keys, group, aggs, schema } => {
                LogicalPlan::JoinAggregate {
                    left: Box::new(self.optimize(*left, ctx)?),
                    right: Box::new(self.optimize(*right, ctx)?),
                    keys,
                    group,
                    aggs,
                    schema,
                }
            }
            LogicalPlan::Sort { input, keys } => {
                LogicalPlan::Sort { input: Box::new(self.optimize(*input, ctx)?), keys }
            }
            LogicalPlan::Limit { input, n } => {
                LogicalPlan::Limit { input: Box::new(self.optimize(*input, ctx)?), n }
            }
            LogicalPlan::MultiJoin { inputs, predicates, schema } => {
                let inputs = inputs
                    .into_iter()
                    .map(|i| self.optimize(i, ctx))
                    .collect::<Result<Vec<_>>>()?;
                LogicalPlan::MultiJoin { inputs, predicates, schema }
            }
            leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) => leaf,
        })
    }

    // ------------------------------------------------------------------
    // MultiJoin lowering
    // ------------------------------------------------------------------

    fn lower_multijoin(
        &self,
        inputs: Vec<LogicalPlan>,
        predicates: Vec<BoundExpr>,
        schema: Schema,
        ctx: &CostContext<'_>,
    ) -> Result<LogicalPlan> {
        // Relation id of every global column index.
        let mut col_owner: Vec<usize> = Vec::with_capacity(schema.len());
        for (rel, input) in inputs.iter().enumerate() {
            col_owner.extend(std::iter::repeat_n(rel, input.schema().len()));
        }

        // Partition the pool: UDF-bearing single-relation predicates are
        // subject to the placement hint; everything else is fixed.
        let mut udf_single: Vec<BoundExpr> = Vec::new();
        let mut fixed: Vec<BoundExpr> = Vec::new();
        for p in predicates {
            let rels = referenced_relations(&p, &col_owner);
            if rels.len() <= 1 && p.contains_udf() {
                udf_single.push(p);
            } else {
                fixed.push(p);
            }
        }

        if !self.config.udf_placement_hints || udf_single.is_empty() {
            // Without hints every UDF predicate is evaluated at scan time
            // (the paper's un-optimized DL2SQL behavior).
            let mut all = fixed;
            all.extend(udf_single);
            return self.lower_with_placement(&inputs, &all, &[], &schema, &col_owner, ctx);
        }

        // Hint rule 1: choose, per UDF predicate, scan-time vs delayed
        // evaluation by comparing full-plan cost estimates. Small predicate
        // counts are enumerated exhaustively; larger ones fall back to the
        // two extreme assignments.
        let n = udf_single.len();
        let assignments: Vec<u32> =
            if n <= 4 { (0..(1u32 << n)).collect() } else { vec![0, (1u32 << n.min(31)) - 1] };
        let mut best: Option<(f64, LogicalPlan)> = None;
        for mask in assignments {
            let mut pushed = fixed.clone();
            let mut delayed = Vec::new();
            for (i, p) in udf_single.iter().enumerate() {
                if mask & (1 << i) == 0 {
                    pushed.push(p.clone());
                } else {
                    delayed.push(p.clone());
                }
            }
            let candidate =
                self.lower_with_placement(&inputs, &pushed, &delayed, &schema, &col_owner, ctx)?;
            let cost = self.cost_model.estimate(&candidate, ctx).cost;
            if best.as_ref().is_none_or(|(c, _)| cost < *c) {
                best = Some((cost, candidate));
            }
        }
        Ok(best.expect("at least one candidate").1)
    }

    /// Lowers with a concrete placement: `pushed` predicates participate in
    /// pushdown/join extraction; `delayed` ones are applied above the final
    /// join (remapped to the output column order).
    fn lower_with_placement(
        &self,
        inputs: &[LogicalPlan],
        pushed: &[BoundExpr],
        delayed: &[BoundExpr],
        schema: &Schema,
        col_owner: &[usize],
        ctx: &CostContext<'_>,
    ) -> Result<LogicalPlan> {
        let total_cols = col_owner.len();

        // Start: one component per relation, remembering each global
        // column's local position.
        struct Component {
            plan: LogicalPlan,
            rels: Vec<usize>,
            /// global column index -> local position (usize::MAX elsewhere)
            map: Vec<usize>,
        }
        let mut components: Vec<Component> = Vec::new();
        {
            let mut offset = 0usize;
            for (rel, input) in inputs.iter().enumerate() {
                let n = input.schema().len();
                let mut map = vec![usize::MAX; total_cols];
                for local in 0..n {
                    map[offset + local] = local;
                }
                components.push(Component { plan: input.clone(), rels: vec![rel], map });
                offset += n;
            }
        }

        // Partition pushed predicates: single-relation -> filter onto the
        // component now; multi-relation -> pool for joins.
        let mut pool: Vec<BoundExpr> = Vec::new();
        for p in pushed {
            let rels = referenced_relations(p, col_owner);
            if rels.len() <= 1 {
                let rel = rels.first().copied().unwrap_or(0);
                let comp =
                    components.iter_mut().find(|c| c.rels.contains(&rel)).expect("relation exists");
                let mut local = p.clone();
                local.remap_columns(&comp.map);
                comp.plan = LogicalPlan::Filter {
                    input: Box::new(std::mem::replace(
                        &mut comp.plan,
                        LogicalPlan::Values {
                            table: crate::table::Table::empty(Schema::default()),
                        },
                    )),
                    predicate: local,
                };
            } else {
                pool.push(p.clone());
            }
        }

        // Merge components until one remains.
        while components.len() > 1 {
            // Candidate pairs that share an equi predicate.
            let mut choice: Option<(usize, usize, f64)> = None;
            let pairs: Vec<(usize, usize)> = if self.config.reorder_joins {
                let mut v = Vec::new();
                for i in 0..components.len() {
                    for j in (i + 1)..components.len() {
                        v.push((i, j));
                    }
                }
                v
            } else {
                vec![(0, 1)]
            };
            for (i, j) in pairs {
                // Build the candidate join and price it with the installed
                // cost model (the DL2SQL model recognizes neural-table
                // patterns here, which is what orders the fused conv
                // statements correctly).
                let mut keys: Vec<(BoundExpr, BoundExpr)> = Vec::new();
                for p in &pool {
                    if let Some((mut lk, mut rk)) =
                        equi_pair(p, col_owner, &components[i].rels, &components[j].rels)
                    {
                        lk.remap_columns(&components[i].map);
                        rk.remap_columns(&components[j].map);
                        keys.push((lk, rk));
                    }
                }
                let est = if keys.is_empty() {
                    // Cross joins only when no equi exists anywhere.
                    let l = self.cost_model.estimate(&components[i].plan, ctx);
                    let r = self.cost_model.estimate(&components[j].plan, ctx);
                    l.rows * r.rows * 1e6
                } else {
                    let schema = Schema::new(
                        components[i]
                            .plan
                            .schema()
                            .fields()
                            .iter()
                            .chain(components[j].plan.schema().fields())
                            .cloned()
                            .collect::<Vec<Field>>(),
                    );
                    let candidate = LogicalPlan::Join {
                        left: Box::new(components[i].plan.clone()),
                        right: Box::new(components[j].plan.clone()),
                        keys,
                        residual: None,
                        algorithm: JoinAlgorithm::Hash,
                        output: None,
                        schema,
                    };
                    self.cost_model.estimate(&candidate, ctx).rows
                };
                if choice.as_ref().is_none_or(|(_, _, c)| est < *c) {
                    choice = Some((i, j, est));
                }
            }
            let (i, j, _) = choice.expect("at least one pair");
            let (a, b) = if i < j {
                let b = components.remove(j);
                let a = components.remove(i);
                (a, b)
            } else {
                unreachable!("pairs are ordered");
            };

            // Extract applicable predicates.
            let combined_rels: Vec<usize> = a.rels.iter().chain(b.rels.iter()).copied().collect();
            let mut keys: Vec<(BoundExpr, BoundExpr)> = Vec::new();
            let mut residuals: Vec<BoundExpr> = Vec::new();
            let mut remaining: Vec<BoundExpr> = Vec::new();
            // Combined map: a keeps positions, b shifts by a's width.
            let a_width = a.plan.schema().len();
            let mut combined_map = vec![usize::MAX; total_cols];
            #[allow(clippy::needless_range_loop)] // g indexes two source maps and the target
            for g in 0..total_cols {
                if a.map[g] != usize::MAX {
                    combined_map[g] = a.map[g];
                } else if b.map[g] != usize::MAX {
                    combined_map[g] = b.map[g] + a_width;
                }
            }
            for p in pool.drain(..) {
                let rels = referenced_relations(&p, col_owner);
                if !rels.iter().all(|r| combined_rels.contains(r)) {
                    remaining.push(p);
                    continue;
                }
                if let Some((mut lk, mut rk)) = equi_pair(&p, col_owner, &a.rels, &b.rels) {
                    lk.remap_columns(&a.map);
                    rk.remap_columns(&b.map);
                    keys.push((lk, rk));
                } else {
                    let mut res = p;
                    res.remap_columns(&combined_map);
                    residuals.push(res);
                }
            }
            pool = remaining;

            let joined_schema = Schema::new(
                a.plan
                    .schema()
                    .fields()
                    .iter()
                    .chain(b.plan.schema().fields())
                    .cloned()
                    .collect::<Vec<Field>>(),
            );
            let plan = if keys.is_empty() {
                let mut plan = LogicalPlan::Cross {
                    left: Box::new(a.plan),
                    right: Box::new(b.plan),
                    schema: joined_schema,
                };
                if !residuals.is_empty() {
                    plan = LogicalPlan::Filter {
                        input: Box::new(plan),
                        predicate: conjoin(residuals),
                    };
                }
                plan
            } else {
                let algorithm = if self.config.symmetric_for_udf_joins
                    && keys.iter().any(|(l, r)| l.contains_udf() || r.contains_udf())
                {
                    JoinAlgorithm::SymmetricHash
                } else {
                    JoinAlgorithm::Hash
                };
                LogicalPlan::Join {
                    left: Box::new(a.plan),
                    right: Box::new(b.plan),
                    keys,
                    residual: (!residuals.is_empty()).then(|| conjoin(residuals)),
                    algorithm,
                    output: None,
                    schema: joined_schema,
                }
            };
            components.push(Component { plan, rels: combined_rels, map: combined_map });
        }

        let last = components.pop().expect("one component remains");
        let mut plan = last.plan;
        let final_map = last.map;

        if !pool.is_empty() {
            return Err(Error::Plan("internal: unapplied join predicates".into()));
        }

        // The join tree's column order may differ from the MultiJoin's
        // declared schema (FROM order); restore it with a projection.
        let identity: Vec<usize> = (0..total_cols).collect();
        let needs_reorder = final_map != identity;
        if needs_reorder {
            let exprs: Vec<BoundExpr> =
                (0..total_cols).map(|g| BoundExpr::Column(final_map[g])).collect();
            plan = LogicalPlan::Project { input: Box::new(plan), exprs, schema: schema.clone() };
        }

        // Delayed UDF predicates run above the joins, in output order.
        for p in delayed {
            let pd = p.clone(); // already bound to the global (output) order
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: pd };
        }
        Ok(plan)
    }
}

fn conjoin(mut exprs: Vec<BoundExpr>) -> BoundExpr {
    let first = exprs.remove(0);
    exprs.into_iter().fold(first, |acc, e| BoundExpr::Binary {
        left: Box::new(acc),
        op: BinOp::And,
        right: Box::new(e),
    })
}

/// The distinct relations an expression references.
fn referenced_relations(expr: &BoundExpr, col_owner: &[usize]) -> Vec<usize> {
    let mut rels: Vec<usize> =
        expr.referenced_columns().into_iter().map(|c| col_owner[c]).collect();
    rels.sort_unstable();
    rels.dedup();
    rels
}

/// If `p` is `lhs = rhs` with `lhs` entirely over relations `a` and `rhs`
/// entirely over relations `b` (or vice versa), returns the pair oriented
/// as (a-side, b-side).
fn equi_pair(
    p: &BoundExpr,
    col_owner: &[usize],
    a: &[usize],
    b: &[usize],
) -> Option<(BoundExpr, BoundExpr)> {
    let BoundExpr::Binary { left, op: BinOp::Eq, right } = p else {
        return None;
    };
    let l_rels = referenced_relations(left, col_owner);
    let r_rels = referenced_relations(right, col_owner);
    if l_rels.is_empty() || r_rels.is_empty() {
        return None;
    }
    let l_in_a = l_rels.iter().all(|r| a.contains(r));
    let l_in_b = l_rels.iter().all(|r| b.contains(r));
    let r_in_a = r_rels.iter().all(|r| a.contains(r));
    let r_in_b = r_rels.iter().all(|r| b.contains(r));
    if l_in_a && r_in_b {
        Some((left.as_ref().clone(), right.as_ref().clone()))
    } else if l_in_b && r_in_a {
        Some((right.as_ref().clone(), left.as_ref().clone()))
    } else {
        None
    }
}
