//! Join–aggregate fusion.
//!
//! The DL2SQL compiler's convolution statement is `GROUP BY` over an
//! equi join — `SUM(A.Value * B.Value) ... A INNER JOIN B ON ... GROUP
//! BY ...` — whose join output (one row per (pixel, kernel-weight) pair)
//! is the largest intermediate in the whole system. This pass rewrites
//! such an [`LogicalPlan::Aggregate`]-over-[`LogicalPlan::Join`] pair
//! into the fused [`LogicalPlan::JoinAggregate`] operator, which folds
//! aggregate partials directly during the probe so that intermediate is
//! never materialized.
//!
//! The rewrite fires only when the fused executor can reproduce the
//! unfused pair bit-for-bit:
//!
//! * the join is a hash equi join with no residual predicate (a residual
//!   would have to filter materialized pairs),
//! * every aggregate is a non-DISTINCT `COUNT`/`SUM`/`AVG`/`MIN`/`MAX`
//!   (decomposable into mergeable partials; `stddevSamp` and DISTINCT
//!   need the full row multiset),
//! * every group key is computable from one join side alone, and
//! * every aggregate argument is computable from one side, or is a
//!   product of a left-side and a right-side factor (the conv kernel
//!   dot-product shape).
//!
//! Anything else is left as the unfused pair. The pass runs after column
//! pruning, so it also sees (and strips) the join's column-pruning
//! `output` mask by remapping the aggregate's expressions back onto the
//! full `left ++ right` column space.

use crate::expr::BoundExpr;
use crate::plan::logical::{AggExpr, AggFunc, JoinAlgorithm, LogicalPlan};
use crate::sql::ast::BinOp;

/// Rewrites every fusable Aggregate-over-Join pair in the plan.
pub fn fuse_join_aggregates(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let input = fuse_join_aggregates(*input);
            match try_fuse(input, group, aggs) {
                Ok((left, right, keys, group, aggs)) => {
                    LogicalPlan::JoinAggregate { left, right, keys, group, aggs, schema }
                }
                Err(unfused) => {
                    let (input, group, aggs) = *unfused;
                    LogicalPlan::Aggregate { input: Box::new(input), group, aggs, schema }
                }
            }
        }
        LogicalPlan::Filter { input, predicate } => {
            LogicalPlan::Filter { input: Box::new(fuse_join_aggregates(*input)), predicate }
        }
        LogicalPlan::Project { input, exprs, schema } => {
            LogicalPlan::Project { input: Box::new(fuse_join_aggregates(*input)), exprs, schema }
        }
        LogicalPlan::Join { left, right, keys, residual, algorithm, output, schema } => {
            LogicalPlan::Join {
                left: Box::new(fuse_join_aggregates(*left)),
                right: Box::new(fuse_join_aggregates(*right)),
                keys,
                residual,
                algorithm,
                output,
                schema,
            }
        }
        LogicalPlan::Cross { left, right, schema } => LogicalPlan::Cross {
            left: Box::new(fuse_join_aggregates(*left)),
            right: Box::new(fuse_join_aggregates(*right)),
            schema,
        },
        LogicalPlan::JoinAggregate { left, right, keys, group, aggs, schema } => {
            LogicalPlan::JoinAggregate {
                left: Box::new(fuse_join_aggregates(*left)),
                right: Box::new(fuse_join_aggregates(*right)),
                keys,
                group,
                aggs,
                schema,
            }
        }
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(fuse_join_aggregates(*input)), keys }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(fuse_join_aggregates(*input)), n }
        }
        LogicalPlan::MultiJoin { inputs, predicates, schema } => LogicalPlan::MultiJoin {
            inputs: inputs.into_iter().map(fuse_join_aggregates).collect(),
            predicates,
            schema,
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) => leaf,
    }
}

type Fused =
    (Box<LogicalPlan>, Box<LogicalPlan>, Vec<(BoundExpr, BoundExpr)>, Vec<BoundExpr>, Vec<AggExpr>);
type Unfused = Box<(LogicalPlan, Vec<BoundExpr>, Vec<AggExpr>)>;

/// Attempts the fusion; returns the original parts untouched on any
/// unsupported shape.
fn try_fuse(
    input: LogicalPlan,
    group: Vec<BoundExpr>,
    aggs: Vec<AggExpr>,
) -> Result<Fused, Unfused> {
    // Only a plain hash equi join with no residual qualifies.
    let fusable_join = matches!(
        &input,
        LogicalPlan::Join {
            residual: None,
            algorithm: JoinAlgorithm::Hash,
            keys,
            ..
        } if !keys.is_empty()
    );
    if !fusable_join || !aggs_decomposable(&aggs) {
        return Err(Box::new((input, group, aggs)));
    }
    let LogicalPlan::Join { left, right, keys, output, .. } = input else { unreachable!() };

    // Undo the join's column-pruning mask: rebind the aggregate's
    // expressions over the full `left ++ right` space.
    let l_width = left.schema().len();
    let full_width = l_width + right.schema().len();
    let unmask: Vec<usize> = match &output {
        Some(mask) => mask.clone(),
        None => (0..full_width).collect(),
    };
    let mut group = group;
    let mut aggs = aggs;
    for g in &mut group {
        g.remap_columns(&unmask);
    }
    for a in &mut aggs {
        if let Some(arg) = &mut a.arg {
            arg.remap_columns(&unmask);
        }
    }

    let supported = group.iter().all(|g| side_of(g, l_width, full_width).is_some())
        && aggs.iter().all(|a| match &a.arg {
            None => true,
            Some(arg) => decompose_arg(arg, l_width, full_width).is_some(),
        });
    if !supported {
        // Re-apply the mask so the caller can rebuild the original pair.
        let mut remask = vec![usize::MAX; full_width];
        for (pos, &c) in unmask.iter().enumerate() {
            remask[c] = pos;
        }
        for g in &mut group {
            g.remap_columns(&remask);
        }
        for a in &mut aggs {
            if let Some(arg) = &mut a.arg {
                arg.remap_columns(&remask);
            }
        }
        let schema = {
            // Reconstruct the join node exactly as it was.
            let fields: Vec<crate::table::Field> = match &output {
                Some(mask) => {
                    let all: Vec<_> = left
                        .schema()
                        .fields()
                        .iter()
                        .chain(right.schema().fields())
                        .cloned()
                        .collect();
                    mask.iter().map(|&i| all[i].clone()).collect()
                }
                None => {
                    left.schema().fields().iter().chain(right.schema().fields()).cloned().collect()
                }
            };
            crate::table::Schema::new(fields)
        };
        return Err(Box::new((
            LogicalPlan::Join {
                left,
                right,
                keys,
                residual: None,
                algorithm: JoinAlgorithm::Hash,
                output,
                schema,
            },
            group,
            aggs,
        )));
    }
    Ok((left, right, keys, group, aggs))
}

fn aggs_decomposable(aggs: &[AggExpr]) -> bool {
    aggs.iter().all(|a| {
        !a.distinct
            && matches!(
                a.func,
                AggFunc::Count | AggFunc::Sum | AggFunc::Avg | AggFunc::Min | AggFunc::Max
            )
    })
}

/// Which join side an expression over `left ++ right` columns reads.
/// Column-free expressions count as the left side (they evaluate anywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    Left,
    Right,
}

pub(crate) fn side_of(expr: &BoundExpr, l_width: usize, full_width: usize) -> Option<Side> {
    let cols = expr.referenced_columns();
    if cols.iter().any(|&c| c >= full_width) {
        return None; // out-of-range reference: never fuse
    }
    if cols.iter().all(|&c| c < l_width) {
        Some(Side::Left)
    } else if cols.iter().all(|&c| c >= l_width) {
        Some(Side::Right)
    } else {
        None
    }
}

/// How a fused aggregate argument is computed from the join sides.
pub(crate) enum ArgShape<'a> {
    /// Entirely on one side.
    Single(Side, &'a BoundExpr),
    /// A product of one factor per side, in source operand order.
    Product { first: (Side, &'a BoundExpr), second: (Side, &'a BoundExpr) },
}

/// Decomposes an aggregate argument bound over `left ++ right`. `None`
/// means the fused operator cannot compute it without the joined row.
pub(crate) fn decompose_arg(
    arg: &BoundExpr,
    l_width: usize,
    full_width: usize,
) -> Option<ArgShape<'_>> {
    if let Some(side) = side_of(arg, l_width, full_width) {
        return Some(ArgShape::Single(side, arg));
    }
    if let BoundExpr::Binary { left, op: BinOp::Mul, right } = arg {
        let ls = side_of(left, l_width, full_width)?;
        let rs = side_of(right, l_width, full_width)?;
        if ls != rs {
            return Some(ArgShape::Product { first: (ls, left), second: (rs, right) });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{Field, Schema};
    use crate::value::DataType;

    fn scan(name: &str, cols: &[&str]) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: Schema::new(cols.iter().map(|c| Field::new(*c, DataType::Int64)).collect()),
        }
    }

    fn join(left: LogicalPlan, right: LogicalPlan) -> LogicalPlan {
        let schema = Schema::new(
            left.schema().fields().iter().chain(right.schema().fields()).cloned().collect(),
        );
        LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            keys: vec![(BoundExpr::Column(0), BoundExpr::Column(0))],
            residual: None,
            algorithm: JoinAlgorithm::Hash,
            output: None,
            schema,
        }
    }

    fn sum_of(arg: BoundExpr) -> AggExpr {
        AggExpr { func: AggFunc::Sum, arg: Some(arg), distinct: false, output_name: "s".into() }
    }

    fn agg_over(input: LogicalPlan, group: Vec<BoundExpr>, aggs: Vec<AggExpr>) -> LogicalPlan {
        let mut fields: Vec<Field> =
            (0..group.len()).map(|i| Field::new(format!("g{i}"), DataType::Int64)).collect();
        fields.extend((0..aggs.len()).map(|i| Field::new(format!("a{i}"), DataType::Float64)));
        LogicalPlan::Aggregate { input: Box::new(input), group, aggs, schema: Schema::new(fields) }
    }

    fn mul(l: usize, r: usize) -> BoundExpr {
        BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(l)),
            op: BinOp::Mul,
            right: Box::new(BoundExpr::Column(r)),
        }
    }

    #[test]
    fn conv_shape_fuses() {
        // SUM(A.v * B.v) GROUP BY B.k, A.m over an equi join.
        let plan = agg_over(
            join(scan("a", &["o", "m", "v"]), scan("b", &["o", "k", "v"])),
            vec![BoundExpr::Column(4), BoundExpr::Column(1)],
            vec![sum_of(mul(2, 5))],
        );
        let fused = fuse_join_aggregates(plan);
        assert!(matches!(fused, LogicalPlan::JoinAggregate { .. }), "{fused}");
        assert!(fused.display_indent().contains("JoinAggregate"));
    }

    #[test]
    fn residual_blocks_fusion() {
        let LogicalPlan::Join { left, right, keys, schema, .. } =
            join(scan("a", &["o", "v"]), scan("b", &["o", "v"]))
        else {
            panic!()
        };
        let with_residual = LogicalPlan::Join {
            left,
            right,
            keys,
            residual: Some(BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(1)),
                op: BinOp::Lt,
                right: Box::new(BoundExpr::Column(3)),
            }),
            algorithm: JoinAlgorithm::Hash,
            output: None,
            schema,
        };
        let plan = agg_over(with_residual, vec![BoundExpr::Column(0)], vec![sum_of(mul(1, 3))]);
        let fused = fuse_join_aggregates(plan);
        assert!(matches!(fused, LogicalPlan::Aggregate { .. }), "{fused}");
    }

    #[test]
    fn stddev_blocks_fusion() {
        let plan = agg_over(
            join(scan("a", &["o", "v"]), scan("b", &["o", "v"])),
            vec![BoundExpr::Column(0)],
            vec![AggExpr {
                func: AggFunc::StddevSamp,
                arg: Some(BoundExpr::Column(1)),
                distinct: false,
                output_name: "s".into(),
            }],
        );
        assert!(matches!(fuse_join_aggregates(plan), LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn distinct_blocks_fusion() {
        let plan = agg_over(
            join(scan("a", &["o", "v"]), scan("b", &["o", "v"])),
            vec![BoundExpr::Column(0)],
            vec![AggExpr {
                func: AggFunc::Count,
                arg: Some(BoundExpr::Column(1)),
                distinct: true,
                output_name: "c".into(),
            }],
        );
        assert!(matches!(fuse_join_aggregates(plan), LogicalPlan::Aggregate { .. }));
    }

    #[test]
    fn cross_side_sum_blocks_fusion() {
        // SUM(A.v + B.v) cannot fold per side (only products decompose).
        let cross_sum = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(1)),
            op: BinOp::Add,
            right: Box::new(BoundExpr::Column(3)),
        };
        let plan = agg_over(
            join(scan("a", &["o", "v"]), scan("b", &["o", "v"])),
            vec![BoundExpr::Column(0)],
            vec![sum_of(cross_sum)],
        );
        let fused = fuse_join_aggregates(plan);
        assert!(matches!(fused, LogicalPlan::Aggregate { .. }), "{fused}");
    }

    #[test]
    fn failed_fusion_restores_masked_join_exactly() {
        // With a column-pruning mask on the join and an unsupported agg,
        // the rewrite must hand back a plan identical to its input.
        let LogicalPlan::Join { left, right, keys, .. } =
            join(scan("a", &["o", "m", "v"]), scan("b", &["o", "v"]))
        else {
            panic!()
        };
        let masked = LogicalPlan::Join {
            left,
            right,
            keys,
            residual: None,
            algorithm: JoinAlgorithm::Hash,
            output: Some(vec![1, 2, 4]),
            schema: Schema::new(vec![
                Field::new("m", DataType::Int64),
                Field::new("v", DataType::Int64),
                Field::new("v", DataType::Int64),
            ]),
        };
        let plan = agg_over(
            masked,
            vec![BoundExpr::Column(0)],
            // A.v + B.v over the masked layout: not decomposable.
            vec![sum_of(BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(1)),
                op: BinOp::Add,
                right: Box::new(BoundExpr::Column(2)),
            })],
        );
        assert_eq!(fuse_join_aggregates(plan.clone()), plan);
    }

    #[test]
    fn global_aggregate_over_join_fuses() {
        let plan = agg_over(
            join(scan("a", &["o", "v"]), scan("b", &["o", "v"])),
            vec![],
            vec![sum_of(mul(1, 3))],
        );
        assert!(matches!(fuse_join_aggregates(plan), LogicalPlan::JoinAggregate { .. }));
    }
}
