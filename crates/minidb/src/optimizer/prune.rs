//! Column (projection) pruning.
//!
//! After join lowering, intermediate nodes can carry columns nobody
//! upstream reads — a joined row drags both sides' full width through
//! every subsequent operator. This pass walks the plan top-down with the
//! set of required column indices, narrows children, and remaps every
//! expression.

use std::collections::BTreeSet;

use crate::expr::BoundExpr;
use crate::plan::logical::LogicalPlan;
use crate::table::{Field, Schema};

/// Prunes unused columns below the root. The root's full output (column
/// set, order and names) is always preserved: when the root is itself a
/// projection, pruning starts below it so pure-permutation projections
/// deeper in the tree can be elided without disturbing the result schema.
pub fn prune_columns(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Project { input, exprs, schema } => {
            let mut used: BTreeSet<usize> = BTreeSet::new();
            for e in &exprs {
                used.extend(e.referenced_columns());
            }
            let (child, cmap) = prune(*input, &used);
            let exprs = exprs
                .into_iter()
                .map(|mut e| {
                    e.remap_columns(&cmap);
                    e
                })
                .collect();
            LogicalPlan::Project { input: Box::new(child), exprs, schema }
        }
        // Sort/Limit above the root projection: recurse through them.
        LogicalPlan::Sort { input, keys } => {
            let inner = prune_columns(*input);
            LogicalPlan::Sort { input: Box::new(inner), keys }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(prune_columns(*input)), n }
        }
        other => {
            let all: BTreeSet<usize> = (0..other.schema().len()).collect();
            prune(other, &all).0
        }
    }
}

/// Returns the pruned plan and the mapping `old column index → new
/// position` for every retained column.
fn prune(plan: LogicalPlan, required: &BTreeSet<usize>) -> (LogicalPlan, Vec<usize>) {
    let width = plan.schema().len();
    // Zero-column tables lose their row count (COUNT(*) requires no
    // columns at all): always keep at least one.
    let keep_first;
    let required = if required.is_empty() && width > 0 {
        keep_first = BTreeSet::from([0]);
        &keep_first
    } else {
        required
    };
    match plan {
        LogicalPlan::Project { input, exprs, schema } => {
            // Keep only the required projection expressions.
            let kept: Vec<usize> = required.iter().copied().filter(|&i| i < exprs.len()).collect();
            let mut used: BTreeSet<usize> = BTreeSet::new();
            for &i in &kept {
                used.extend(exprs[i].referenced_columns());
            }
            // A pure column permutation/subset below the root does no
            // computation: elide it and let parents reference the child
            // directly (column names below the root are immaterial —
            // everything is positional).
            if kept.iter().all(|&i| matches!(exprs[i], BoundExpr::Column(_))) {
                let (child, cmap) = prune(*input, &used);
                let mut map = vec![usize::MAX; width];
                for &old in &kept {
                    let BoundExpr::Column(c) = exprs[old] else { unreachable!() };
                    map[old] = cmap[c];
                }
                return (child, map);
            }
            let (child, cmap) = prune(*input, &used);
            let mut new_exprs = Vec::with_capacity(kept.len());
            let mut new_fields = Vec::with_capacity(kept.len());
            let mut map = vec![usize::MAX; width];
            for (new_pos, &old) in kept.iter().enumerate() {
                let mut e = exprs[old].clone();
                e.remap_columns(&cmap);
                new_exprs.push(e);
                new_fields.push(schema.field(old).clone());
                map[old] = new_pos;
            }
            (
                LogicalPlan::Project {
                    input: Box::new(child),
                    exprs: new_exprs,
                    schema: Schema::new(new_fields),
                },
                map,
            )
        }
        LogicalPlan::Filter { input, mut predicate } => {
            let mut used = required.clone();
            used.extend(predicate.referenced_columns());
            let (child, cmap) = prune(*input, &used);
            predicate.remap_columns(&cmap);
            (LogicalPlan::Filter { input: Box::new(child), predicate }, cmap)
        }
        LogicalPlan::Join { left, right, keys, residual, algorithm, output, schema } => {
            // Pruning runs once, before any mask exists.
            debug_assert!(output.is_none(), "prune runs on unmasked joins");
            let full_schema = schema;
            let l_width = left.schema().len();
            let mut l_req: BTreeSet<usize> = BTreeSet::new();
            let mut r_req: BTreeSet<usize> = BTreeSet::new();
            for &i in required {
                if i < l_width {
                    l_req.insert(i);
                } else {
                    r_req.insert(i - l_width);
                }
            }
            for (lk, rk) in &keys {
                l_req.extend(lk.referenced_columns());
                r_req.extend(rk.referenced_columns());
            }
            if let Some(res) = &residual {
                for c in res.referenced_columns() {
                    if c < l_width {
                        l_req.insert(c);
                    } else {
                        r_req.insert(c - l_width);
                    }
                }
            }
            let (l_plan, l_map) = prune(*left, &l_req);
            let (r_plan, r_map) = prune(*right, &r_req);
            let new_l_width = l_plan.schema().len();
            let keys = keys
                .into_iter()
                .map(|(mut lk, mut rk)| {
                    lk.remap_columns(&l_map);
                    rk.remap_columns(&r_map);
                    (lk, rk)
                })
                .collect();
            // Combined map for residual and parents.
            let mut map = vec![usize::MAX; width];
            for (old, &new) in l_map.iter().enumerate() {
                if new != usize::MAX {
                    map[old] = new;
                }
            }
            for (old, &new) in r_map.iter().enumerate() {
                if new != usize::MAX {
                    map[l_width + old] = new_l_width + new;
                }
            }
            let residual = residual.map(|mut res| {
                res.remap_columns(&map);
                res
            });
            // Mask the join output down to what parents actually read:
            // key-only columns are gathered for probing but never
            // materialized.
            let pruned_width = new_l_width + r_plan.schema().len();
            let pruned_fields: Vec<Field> =
                l_plan.schema().fields().iter().chain(r_plan.schema().fields()).cloned().collect();
            let wanted: Vec<usize> = required
                .iter()
                .filter(|&&old| map[old] != usize::MAX)
                .map(|&old| map[old])
                .collect();
            let (out_mask, out_schema, final_map) = if wanted.len() < pruned_width {
                let mut sorted = wanted.clone();
                sorted.sort_unstable();
                sorted.dedup();
                let fields: Vec<Field> = sorted.iter().map(|&i| pruned_fields[i].clone()).collect();
                // Residual is evaluated pre-mask (over the pruned l++r).
                let mut fmap = vec![usize::MAX; width];
                for &old in required.iter() {
                    let mid = map[old];
                    if mid != usize::MAX {
                        fmap[old] = sorted.binary_search(&mid).expect("masked column present");
                    }
                }
                (Some(sorted), Schema::new(fields), fmap)
            } else {
                (None, Schema::new(pruned_fields), map)
            };
            let _ = full_schema;
            (
                LogicalPlan::Join {
                    left: Box::new(l_plan),
                    right: Box::new(r_plan),
                    keys,
                    residual,
                    algorithm,
                    output: out_mask,
                    schema: out_schema,
                },
                final_map,
            )
        }
        LogicalPlan::Cross { left, right, .. } => {
            let l_width = left.schema().len();
            let mut l_req: BTreeSet<usize> = BTreeSet::new();
            let mut r_req: BTreeSet<usize> = BTreeSet::new();
            for &i in required {
                if i < l_width {
                    l_req.insert(i);
                } else {
                    r_req.insert(i - l_width);
                }
            }
            let (l_plan, l_map) = prune(*left, &l_req);
            let (r_plan, r_map) = prune(*right, &r_req);
            let new_l_width = l_plan.schema().len();
            let mut map = vec![usize::MAX; width];
            for (old, &new) in l_map.iter().enumerate() {
                if new != usize::MAX {
                    map[old] = new;
                }
            }
            for (old, &new) in r_map.iter().enumerate() {
                if new != usize::MAX {
                    map[l_width + old] = new_l_width + new;
                }
            }
            let schema = Schema::new(
                l_plan
                    .schema()
                    .fields()
                    .iter()
                    .chain(r_plan.schema().fields())
                    .cloned()
                    .collect::<Vec<Field>>(),
            );
            (LogicalPlan::Cross { left: Box::new(l_plan), right: Box::new(r_plan), schema }, map)
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let mut used: BTreeSet<usize> = BTreeSet::new();
            for g in &group {
                used.extend(g.referenced_columns());
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    used.extend(arg.referenced_columns());
                }
            }
            let (child, cmap) = prune(*input, &used);
            let group = group
                .into_iter()
                .map(|mut g| {
                    g.remap_columns(&cmap);
                    g
                })
                .collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    if let Some(arg) = &mut a.arg {
                        arg.remap_columns(&cmap);
                    }
                    a
                })
                .collect();
            // The aggregate's own output (groups + aggs) is kept whole.
            let map = (0..width).collect();
            (LogicalPlan::Aggregate { input: Box::new(child), group, aggs, schema }, map)
        }
        LogicalPlan::JoinAggregate { left, right, keys, group, aggs, schema } => {
            // Fusion normally runs after pruning, but be correct if a fused
            // node is pruned again: narrow both sides to the key, group and
            // aggregate-argument columns; the output (groups + aggs) stays
            // whole, exactly like `Aggregate`.
            let l_width = left.schema().len();
            let mut l_req: BTreeSet<usize> = BTreeSet::new();
            let mut r_req: BTreeSet<usize> = BTreeSet::new();
            let mut split = |c: usize| {
                if c < l_width {
                    l_req.insert(c);
                } else {
                    r_req.insert(c - l_width);
                }
            };
            for g in &group {
                g.referenced_columns().into_iter().for_each(&mut split);
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    arg.referenced_columns().into_iter().for_each(&mut split);
                }
            }
            for (lk, rk) in &keys {
                l_req.extend(lk.referenced_columns());
                r_req.extend(rk.referenced_columns());
            }
            let (l_plan, l_map) = prune(*left, &l_req);
            let (r_plan, r_map) = prune(*right, &r_req);
            let new_l_width = l_plan.schema().len();
            let keys = keys
                .into_iter()
                .map(|(mut lk, mut rk)| {
                    lk.remap_columns(&l_map);
                    rk.remap_columns(&r_map);
                    (lk, rk)
                })
                .collect();
            let mut map = vec![usize::MAX; l_width + r_map.len()];
            for (old, &new) in l_map.iter().enumerate() {
                if new != usize::MAX {
                    map[old] = new;
                }
            }
            for (old, &new) in r_map.iter().enumerate() {
                if new != usize::MAX {
                    map[l_width + old] = new_l_width + new;
                }
            }
            let group = group
                .into_iter()
                .map(|mut g| {
                    g.remap_columns(&map);
                    g
                })
                .collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    if let Some(arg) = &mut a.arg {
                        arg.remap_columns(&map);
                    }
                    a
                })
                .collect();
            (
                LogicalPlan::JoinAggregate {
                    left: Box::new(l_plan),
                    right: Box::new(r_plan),
                    keys,
                    group,
                    aggs,
                    schema,
                },
                (0..width).collect(),
            )
        }
        LogicalPlan::Sort { input, keys } => {
            let mut used = required.clone();
            for (k, _) in &keys {
                used.extend(k.referenced_columns());
            }
            let (child, cmap) = prune(*input, &used);
            let keys = keys
                .into_iter()
                .map(|(mut k, asc)| {
                    k.remap_columns(&cmap);
                    (k, asc)
                })
                .collect();
            (LogicalPlan::Sort { input: Box::new(child), keys }, cmap)
        }
        LogicalPlan::Limit { input, n } => {
            let (child, cmap) = prune(*input, required);
            (LogicalPlan::Limit { input: Box::new(child), n }, cmap)
        }
        // Leaves: narrow with a projection when columns are unused.
        leaf @ (LogicalPlan::Scan { .. }
        | LogicalPlan::Values { .. }
        | LogicalPlan::MultiJoin { .. }) => {
            let schema = leaf.schema().clone();
            if required.len() == schema.len() {
                return (leaf, (0..width).collect());
            }
            let kept: Vec<usize> = required.iter().copied().filter(|&i| i < width).collect();
            if kept.len() == schema.len() {
                return (leaf, (0..width).collect());
            }
            let mut map = vec![usize::MAX; width];
            let mut exprs = Vec::with_capacity(kept.len());
            let mut fields = Vec::with_capacity(kept.len());
            for (new_pos, &old) in kept.iter().enumerate() {
                map[old] = new_pos;
                exprs.push(BoundExpr::Column(old));
                fields.push(schema.field(old).clone());
            }
            (
                LogicalPlan::Project { input: Box::new(leaf), exprs, schema: Schema::new(fields) },
                map,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::Table;
    use crate::value::DataType;

    fn scan3() -> LogicalPlan {
        LogicalPlan::Values {
            table: Table::new(
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("b", DataType::Int64),
                    Field::new("c", DataType::Int64),
                ]),
                vec![
                    Column::Int64(vec![1, 2]),
                    Column::Int64(vec![10, 20]),
                    Column::Int64(vec![100, 200]),
                ],
            )
            .unwrap(),
        }
    }

    #[test]
    fn join_children_are_narrowed() {
        // Join on a=a, project only left.b: right.b/right.c unused, left.c unused.
        let left = scan3();
        let right = scan3();
        let schema = Schema::new(
            left.schema().fields().iter().chain(right.schema().fields()).cloned().collect(),
        );
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                keys: vec![(BoundExpr::Column(0), BoundExpr::Column(0))],
                residual: None,
                algorithm: Default::default(),
                output: None,
                schema,
            }),
            exprs: vec![BoundExpr::Column(1)],
            schema: Schema::new(vec![Field::new("b", DataType::Int64)]),
        };
        let pruned = prune_columns(plan);
        // The join materializes only left.b — key columns are probed but
        // masked out of the output.
        let LogicalPlan::Project { input, .. } = &pruned else { panic!() };
        assert_eq!(input.schema().len(), 1, "{pruned}");
        let LogicalPlan::Join { output, .. } = input.as_ref() else { panic!("{pruned}") };
        assert!(output.is_some());
    }

    #[test]
    fn pruned_plan_produces_same_rows() {
        use crate::exec::{execute, ExecConfig, ExecContext};
        let left = scan3();
        let right = scan3();
        let schema = Schema::new(
            left.schema().fields().iter().chain(right.schema().fields()).cloned().collect(),
        );
        let plan = LogicalPlan::Project {
            input: Box::new(LogicalPlan::Join {
                left: Box::new(left),
                right: Box::new(right),
                keys: vec![(BoundExpr::Column(0), BoundExpr::Column(0))],
                residual: None,
                algorithm: Default::default(),
                output: None,
                schema,
            }),
            exprs: vec![BoundExpr::Column(1), BoundExpr::Column(5)],
            schema: Schema::new(vec![
                Field::new("b", DataType::Int64),
                Field::new("c2", DataType::Int64),
            ]),
        };
        let catalog = crate::catalog::Catalog::new();
        let udfs = crate::udf::UdfRegistry::new();
        let profiler = crate::profile::Profiler::new();
        let config = ExecConfig::default();
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };
        let before = execute(&plan, &ctx).unwrap();
        let after = execute(&prune_columns(plan), &ctx).unwrap();
        assert_eq!(before, after);
    }
}
