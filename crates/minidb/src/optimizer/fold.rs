//! Constant folding over a plan's expressions.

use crate::expr::{BoundExpr, EvalContext};
use crate::plan::logical::LogicalPlan;
use crate::udf::UdfRegistry;

/// Folds constant subexpressions in every node of the plan.
pub fn fold_plan_constants(plan: LogicalPlan, udfs: &UdfRegistry) -> LogicalPlan {
    let ctx = EvalContext { udfs };
    fold(plan, &ctx)
}

fn fold_vec(exprs: Vec<BoundExpr>, ctx: &EvalContext<'_>) -> Vec<BoundExpr> {
    exprs.into_iter().map(|e| e.fold_constants(ctx)).collect()
}

fn fold(plan: LogicalPlan, ctx: &EvalContext<'_>) -> LogicalPlan {
    match plan {
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(fold(*input, ctx)),
            predicate: predicate.fold_constants(ctx),
        },
        LogicalPlan::Project { input, exprs, schema } => LogicalPlan::Project {
            input: Box::new(fold(*input, ctx)),
            exprs: fold_vec(exprs, ctx),
            schema,
        },
        LogicalPlan::Join { left, right, keys, residual, algorithm, output, schema } => {
            LogicalPlan::Join {
                left: Box::new(fold(*left, ctx)),
                right: Box::new(fold(*right, ctx)),
                keys: keys
                    .into_iter()
                    .map(|(l, r)| (l.fold_constants(ctx), r.fold_constants(ctx)))
                    .collect(),
                residual: residual.map(|r| r.fold_constants(ctx)),
                algorithm,
                output,
                schema,
            }
        }
        LogicalPlan::Cross { left, right, schema } => LogicalPlan::Cross {
            left: Box::new(fold(*left, ctx)),
            right: Box::new(fold(*right, ctx)),
            schema,
        },
        LogicalPlan::Aggregate { input, group, aggs, schema } => LogicalPlan::Aggregate {
            input: Box::new(fold(*input, ctx)),
            group: fold_vec(group, ctx),
            aggs: aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(|e| e.fold_constants(ctx));
                    a
                })
                .collect(),
            schema,
        },
        LogicalPlan::JoinAggregate { left, right, keys, group, aggs, schema } => {
            LogicalPlan::JoinAggregate {
                left: Box::new(fold(*left, ctx)),
                right: Box::new(fold(*right, ctx)),
                keys: keys
                    .into_iter()
                    .map(|(l, r)| (l.fold_constants(ctx), r.fold_constants(ctx)))
                    .collect(),
                group: fold_vec(group, ctx),
                aggs: aggs
                    .into_iter()
                    .map(|mut a| {
                        a.arg = a.arg.map(|e| e.fold_constants(ctx));
                        a
                    })
                    .collect(),
                schema,
            }
        }
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold(*input, ctx)),
            keys: keys.into_iter().map(|(k, asc)| (k.fold_constants(ctx), asc)).collect(),
        },
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(fold(*input, ctx)), n }
        }
        LogicalPlan::MultiJoin { inputs, predicates, schema } => LogicalPlan::MultiJoin {
            inputs: inputs.into_iter().map(|i| fold(i, ctx)).collect(),
            predicates: fold_vec(predicates, ctx),
            schema,
        },
        leaf @ (LogicalPlan::Scan { .. } | LogicalPlan::Values { .. }) => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::ast::BinOp;
    use crate::table::{Field, Schema};
    use crate::value::{DataType, Value};

    #[test]
    fn filter_predicates_fold() {
        let udfs = UdfRegistry::new();
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                schema: Schema::new(vec![Field::new("a", DataType::Int64)]),
            }),
            predicate: BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op: BinOp::Gt,
                right: Box::new(BoundExpr::Binary {
                    left: Box::new(BoundExpr::Literal(Value::Float64(100.0))),
                    op: BinOp::Sub,
                    right: Box::new(BoundExpr::Literal(Value::Float64(25.0))),
                }),
            },
        };
        let folded = fold_plan_constants(plan, &udfs);
        let LogicalPlan::Filter { predicate, .. } = folded else { panic!() };
        let BoundExpr::Binary { right, .. } = predicate else { panic!() };
        assert_eq!(*right, BoundExpr::Literal(Value::Float64(75.0)));
    }
}
