//! Engine-wide error type.

use std::fmt;

/// Errors surfaced by parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The SQL text could not be tokenized or parsed. Carries the byte
    /// offset of the offending token.
    Parse { message: String, offset: usize },
    /// A referenced table, view, column or function does not exist.
    NotFound(String),
    /// An object with this name already exists.
    AlreadyExists(String),
    /// Types did not line up (e.g. `'abc' + 1`).
    Type(String),
    /// The query is structurally invalid (e.g. a non-aggregated column
    /// outside GROUP BY).
    Plan(String),
    /// A runtime failure during execution (e.g. a UDF panic captured as an
    /// error, or division by zero in integer context).
    Exec(String),
    /// A scalar subquery returned something other than one row/one column.
    Subquery(String),
    /// A governance failure (cancellation, timeout, memory budget,
    /// caught worker panic). Carried as the typed [`govern::QueryError`]
    /// so upper layers can match on the cause without string parsing.
    Governance(govern::QueryError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            Error::NotFound(what) => write!(f, "not found: {what}"),
            Error::AlreadyExists(what) => write!(f, "already exists: {what}"),
            Error::Type(msg) => write!(f, "type error: {msg}"),
            Error::Plan(msg) => write!(f, "planning error: {msg}"),
            Error::Exec(msg) => write!(f, "execution error: {msg}"),
            Error::Subquery(msg) => write!(f, "scalar subquery error: {msg}"),
            Error::Governance(err) => write!(f, "governance: {err}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<govern::QueryError> for Error {
    fn from(err: govern::QueryError) -> Self {
        Error::Governance(err)
    }
}

impl From<taskpool::PanicError> for Error {
    fn from(err: taskpool::PanicError) -> Self {
        Error::Governance(govern::QueryError::WorkerPanic(err.message))
    }
}

impl Error {
    /// The governance cause, if this error is (or wraps) one.
    pub fn governance(&self) -> Option<&govern::QueryError> {
        match self {
            Error::Governance(err) => Some(err),
            _ => None,
        }
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
