//! The logical plan tree produced by the planner and consumed by the
//! optimizer and executor.
//!
//! Expressions inside a node are [`BoundExpr`]s whose column indices refer
//! to the node's *input* schema (for [`LogicalPlan::MultiJoin`], the
//! concatenation of all input schemas in order).

use std::fmt;

use crate::expr::BoundExpr;
use crate::table::Schema;

/// Aggregate functions supported by the dialect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(expr)`. Over a boolean argument this counts
    /// `true` rows (the paper's `count(nUDF_detect(k)=TRUE)` relies on
    /// conditional counting; with no NULLs in the engine this is the only
    /// useful reading).
    Count,
    Sum,
    Avg,
    Min,
    Max,
    /// Sample standard deviation — ClickHouse's `stddevSamp`, used by the
    /// paper's batch-normalization SQL (query Q4).
    StddevSamp,
}

impl AggFunc {
    /// Resolves an aggregate by case-insensitive SQL name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "avg" | "mean" => AggFunc::Avg,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "stddevsamp" | "stddev_samp" | "stddev" => AggFunc::StddevSamp,
            _ => return None,
        })
    }
}

/// One aggregate computation within an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    /// `None` for `COUNT(*)`.
    pub arg: Option<BoundExpr>,
    pub distinct: bool,
    /// Output column name.
    pub output_name: String,
}

/// Which physical join implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgorithm {
    /// Classic build/probe hash join.
    #[default]
    Hash,
    /// Symmetric hash join with bucket-level LRU buffering (paper
    /// Sec. IV-B, rule 3 — used when an nUDF appears in the join
    /// condition).
    SymmetricHash,
}

/// A logical (and, after optimization, physical-ready) plan node.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan (views are inlined by the planner).
    Scan { table: String, schema: Schema },
    /// An already-materialized table (used for inline data and tests).
    Values { table: crate::table::Table },
    /// N-ary join not yet lowered: the planner emits this for the whole
    /// FROM clause; the optimizer turns it into a `Join`/`Filter` tree.
    /// `predicates` are bound over the concatenation of input schemas.
    MultiJoin { inputs: Vec<LogicalPlan>, predicates: Vec<BoundExpr>, schema: Schema },
    /// Row filter.
    Filter { input: Box<LogicalPlan>, predicate: BoundExpr },
    /// Column projection/computation.
    Project { input: Box<LogicalPlan>, exprs: Vec<BoundExpr>, schema: Schema },
    /// Binary equi join (keys) with optional residual predicate bound over
    /// `left ++ right` columns. `output`, when set, selects which of the
    /// `left ++ right` columns the join materializes (column pruning
    /// through joins); `schema` describes the masked output.
    Join {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        keys: Vec<(BoundExpr, BoundExpr)>,
        residual: Option<BoundExpr>,
        algorithm: JoinAlgorithm,
        output: Option<Vec<usize>>,
        schema: Schema,
    },
    /// Cartesian product (only when no equi keys exist).
    Cross { left: Box<LogicalPlan>, right: Box<LogicalPlan>, schema: Schema },
    /// Hash aggregation. Output schema: group keys then aggregates.
    Aggregate { input: Box<LogicalPlan>, group: Vec<BoundExpr>, aggs: Vec<AggExpr>, schema: Schema },
    /// Fused equi join + hash aggregation: aggregate partials fold directly
    /// during the probe, so the join output is never materialized (the
    /// DL2SQL conv hot path). `group` and the aggregate arguments are bound
    /// over `left ++ right` columns; output schema is group keys then
    /// aggregates, as for `Aggregate`.
    JoinAggregate {
        left: Box<LogicalPlan>,
        right: Box<LogicalPlan>,
        keys: Vec<(BoundExpr, BoundExpr)>,
        group: Vec<BoundExpr>,
        aggs: Vec<AggExpr>,
        schema: Schema,
    },
    /// Sort by key expressions (bound over the input schema), each with an
    /// ascending flag.
    Sort { input: Box<LogicalPlan>, keys: Vec<(BoundExpr, bool)> },
    /// Row-count limit.
    Limit { input: Box<LogicalPlan>, n: u64 },
}

impl LogicalPlan {
    /// The node's output schema.
    pub fn schema(&self) -> &Schema {
        match self {
            LogicalPlan::Scan { schema, .. } => schema,
            LogicalPlan::Values { table } => table.schema(),
            LogicalPlan::MultiJoin { schema, .. } => schema,
            LogicalPlan::Filter { input, .. } => input.schema(),
            LogicalPlan::Project { schema, .. } => schema,
            LogicalPlan::Join { schema, .. } => schema,
            LogicalPlan::Cross { schema, .. } => schema,
            LogicalPlan::Aggregate { schema, .. } => schema,
            LogicalPlan::JoinAggregate { schema, .. } => schema,
            LogicalPlan::Sort { input, .. } => input.schema(),
            LogicalPlan::Limit { input, .. } => input.schema(),
        }
    }

    /// Child nodes.
    pub fn children(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => vec![],
            LogicalPlan::MultiJoin { inputs, .. } => inputs.iter().collect(),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. }
            | LogicalPlan::Cross { left, right, .. }
            | LogicalPlan::JoinAggregate { left, right, .. } => {
                vec![left, right]
            }
        }
    }

    /// Whether the subtree contains a node matching `pred`.
    pub fn any_node(&self, pred: &impl Fn(&LogicalPlan) -> bool) -> bool {
        pred(self) || self.children().iter().any(|c| c.any_node(pred))
    }

    /// Pretty multi-line rendering (EXPLAIN-style).
    pub fn display_indent(&self) -> String {
        let mut out = String::new();
        self.fmt_indent(&mut out, 0);
        out
    }

    /// One-line header for this node (no children) — shared by EXPLAIN
    /// output and operator span annotations.
    pub fn node_header(&self) -> String {
        match self {
            LogicalPlan::Scan { table, .. } => format!("Scan: {table}"),
            LogicalPlan::Values { table } => format!("Values: {} rows", table.num_rows()),
            LogicalPlan::MultiJoin { predicates, .. } => {
                format!("MultiJoin: {} predicates", predicates.len())
            }
            LogicalPlan::Filter { predicate, .. } => format!("Filter: {predicate:?}"),
            LogicalPlan::Project { exprs, .. } => format!("Project: {} exprs", exprs.len()),
            LogicalPlan::Join { keys, algorithm, .. } => {
                format!("Join[{algorithm:?}]: {} keys", keys.len())
            }
            LogicalPlan::Cross { .. } => "CrossJoin".to_string(),
            LogicalPlan::Aggregate { group, aggs, .. } => {
                format!("Aggregate: {} groups, {} aggs", group.len(), aggs.len())
            }
            LogicalPlan::JoinAggregate { keys, group, aggs, .. } => {
                format!(
                    "JoinAggregate: {} keys, {} groups, {} aggs",
                    keys.len(),
                    group.len(),
                    aggs.len()
                )
            }
            LogicalPlan::Sort { keys, .. } => format!("Sort: {} keys", keys.len()),
            LogicalPlan::Limit { n, .. } => format!("Limit: {n}"),
        }
    }

    fn fmt_indent(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        out.push_str(&pad);
        out.push_str(&self.node_header());
        out.push('\n');
        for c in self.children() {
            c.fmt_indent(out, depth + 1);
        }
    }
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display_indent())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Field;
    use crate::value::DataType;

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: Schema::new(vec![Field::new("a", DataType::Int64)]),
        }
    }

    #[test]
    fn agg_func_names() {
        assert_eq!(AggFunc::from_name("SUM"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("stddevSamp"), Some(AggFunc::StddevSamp));
        assert_eq!(AggFunc::from_name("median"), None);
    }

    #[test]
    fn any_node_walks_tree() {
        let plan = LogicalPlan::Filter {
            input: Box::new(scan("t")),
            predicate: BoundExpr::Literal(crate::value::Value::Bool(true)),
        };
        assert!(plan.any_node(&|p| matches!(p, LogicalPlan::Scan { .. })));
        assert!(!plan.any_node(&|p| matches!(p, LogicalPlan::Limit { .. })));
    }

    #[test]
    fn display_shows_structure() {
        let plan = LogicalPlan::Limit { input: Box::new(scan("t")), n: 3 };
        let s = plan.to_string();
        assert!(s.contains("Limit: 3"));
        assert!(s.contains("Scan: t"));
    }
}
