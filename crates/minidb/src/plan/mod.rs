//! Logical plans and the query planner.

pub mod logical;
pub mod planner;

pub use logical::{AggExpr, AggFunc, JoinAlgorithm, LogicalPlan};
pub use planner::{Planner, SubqueryRunner};
