//! AST → logical plan: name resolution, implicit/explicit join collection,
//! aggregate extraction, scalar-subquery inlining.

use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::expr::{BoundExpr, ScalarFunc};
use crate::plan::logical::{AggExpr, AggFunc, LogicalPlan};
use crate::sql::ast::{self, Expr, Literal, Query, SelectItem, TableFactor};
use crate::table::{Field, Schema, Table};
use crate::udf::UdfRegistry;
use crate::value::{parse_date, DataType, Value};

/// Callback the planner uses to evaluate uncorrelated scalar subqueries.
/// The database passes a closure that plans, optimizes and executes.
pub type SubqueryRunner<'a> = dyn Fn(&Query) -> Result<Table> + 'a;

/// One visible column during name resolution.
#[derive(Debug, Clone)]
struct ScopeEntry {
    /// Table binding (alias or table name); `None` for derived output
    /// scopes.
    binding: Option<String>,
    name: String,
    data_type: DataType,
}

/// The namespace a query level resolves column references against.
#[derive(Debug, Clone, Default)]
struct Scope {
    entries: Vec<ScopeEntry>,
}

impl Scope {
    fn from_schema(schema: &Schema, binding: Option<&str>) -> Scope {
        Scope {
            entries: schema
                .fields()
                .iter()
                .map(|f| ScopeEntry {
                    binding: binding.map(str::to_string),
                    name: f.name.clone(),
                    data_type: f.data_type,
                })
                .collect(),
        }
    }

    fn extend(&mut self, other: Scope) {
        self.entries.extend(other.entries);
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, e) in self.entries.iter().enumerate() {
            let qual_ok = match qualifier {
                None => true,
                Some(q) => e.binding.as_deref().is_some_and(|b| b.eq_ignore_ascii_case(q)),
            };
            if qual_ok && e.name.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    return Err(Error::Plan(format!("ambiguous column reference '{name}'")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            let full = match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.to_string(),
            };
            Error::NotFound(format!("column '{full}'"))
        })
    }

    fn to_schema(&self) -> Schema {
        Schema::new(self.entries.iter().map(|e| Field::new(e.name.clone(), e.data_type)).collect())
    }
}

/// The query planner.
pub struct Planner<'a> {
    catalog: &'a Catalog,
    udfs: &'a UdfRegistry,
    subquery: Option<&'a SubqueryRunner<'a>>,
}

impl<'a> Planner<'a> {
    /// Creates a planner. `subquery` is required only for queries that use
    /// scalar subqueries.
    pub fn new(
        catalog: &'a Catalog,
        udfs: &'a UdfRegistry,
        subquery: Option<&'a SubqueryRunner<'a>>,
    ) -> Self {
        Planner { catalog, udfs, subquery }
    }

    /// Plans a SELECT query into a logical plan.
    pub fn plan_query(&self, q: &Query) -> Result<LogicalPlan> {
        // ---- FROM -----------------------------------------------------
        let (mut plan, scope, on_predicates) = self.plan_from(q)?;

        // ---- WHERE ----------------------------------------------------
        let mut predicate_pool: Vec<BoundExpr> = on_predicates;
        if let Some(pred) = &q.predicate {
            for c in pred.conjuncts() {
                predicate_pool.push(self.bind(c, &scope)?);
            }
        }

        // Attach predicates. A MultiJoin keeps its pool for the optimizer;
        // a single-source plan gets a plain Filter.
        match &mut plan {
            LogicalPlan::MultiJoin { predicates, .. } => {
                predicates.extend(predicate_pool);
            }
            _ => {
                if !predicate_pool.is_empty() {
                    let combined = conjoin_bound(predicate_pool);
                    plan = LogicalPlan::Filter { input: Box::new(plan), predicate: combined };
                }
            }
        }

        // ---- aggregate detection ---------------------------------------
        let mut agg_asts: Vec<Expr> = Vec::new();
        for item in &q.projections {
            if let SelectItem::Expr { expr, .. } = item {
                collect_aggregates(expr, &mut agg_asts)?;
            }
        }
        if let Some(h) = &q.having {
            collect_aggregates(h, &mut agg_asts)?;
        }
        for ob in &q.order_by {
            collect_aggregates(&ob.expr, &mut agg_asts)?;
        }
        let has_aggregates = !agg_asts.is_empty() || !q.group_by.is_empty();

        // ---- projection (+aggregation) ---------------------------------
        let (mut plan, mut output_exprs, mut output_names) = if has_aggregates {
            self.plan_aggregate(plan, &scope, q, &agg_asts)?
        } else {
            let mut exprs = Vec::new();
            let mut names = Vec::new();
            for (i, item) in q.projections.iter().enumerate() {
                match item {
                    SelectItem::Wildcard => {
                        for (idx, e) in scope.entries.iter().enumerate() {
                            exprs.push(BoundExpr::Column(idx));
                            names.push(e.name.clone());
                        }
                    }
                    SelectItem::Expr { expr, alias } => {
                        let bound = self.bind(expr, &scope)?;
                        names.push(projection_name(expr, alias.as_deref(), i));
                        exprs.push(bound);
                    }
                }
            }
            (plan, exprs, names)
        };

        // ---- ORDER BY key resolution -------------------------------------
        // Keys resolve against (in order): the SELECT output (aliases), a
        // verbatim projection expression, or the pre-projection scope — the
        // last case appends a hidden projection column that a final
        // projection trims off again after the sort.
        let visible = output_exprs.len();
        let mut sort_keys: Vec<(usize, bool)> = Vec::new();
        if !q.order_by.is_empty() {
            let out_fields: Vec<(String, usize)> =
                output_names.iter().enumerate().map(|(i, n)| (n.clone(), i)).collect();
            for ob in &q.order_by {
                // 1. Output alias / column name.
                if let Expr::Column { qualifier: None, name } = &ob.expr {
                    let matches: Vec<usize> = out_fields
                        .iter()
                        .filter(|(n, _)| n.eq_ignore_ascii_case(name))
                        .map(|(_, i)| *i)
                        .collect();
                    if matches.len() == 1 {
                        sort_keys.push((matches[0], ob.ascending));
                        continue;
                    }
                }
                // 2. Verbatim projection expression.
                if let Some(pos) = q.projections.iter().position(
                    |item| matches!(item, SelectItem::Expr { expr, .. } if expr == &ob.expr),
                ) {
                    sort_keys.push((pos, ob.ascending));
                    continue;
                }
                // 3. Pre-projection column: add a hidden output.
                let hidden = if has_aggregates {
                    let group_bound: Vec<BoundExpr> =
                        q.group_by.iter().map(|g| self.bind(g, &scope)).collect::<Result<_>>()?;
                    self.rewrite_post_agg(
                        &ob.expr,
                        &scope,
                        &group_bound,
                        &agg_asts,
                        group_bound.len(),
                    )?
                } else {
                    self.bind(&ob.expr, &scope)?
                };
                output_names.push(format!("__sort_{}", output_exprs.len()));
                output_exprs.push(hidden);
                sort_keys.push((output_exprs.len() - 1, ob.ascending));
            }
        }

        // Materialize the projection node.
        let in_schema = plan.schema().clone();
        let fields: Vec<Field> = output_exprs
            .iter()
            .zip(&output_names)
            .map(|(e, n)| Ok(Field::new(n.clone(), e.data_type(&in_schema, self.udfs)?)))
            .collect::<Result<_>>()?;
        let out_schema = Schema::new(fields);
        plan = LogicalPlan::Project {
            input: Box::new(plan),
            exprs: output_exprs,
            schema: out_schema.clone(),
        };

        // ---- DISTINCT -----------------------------------------------------
        // SELECT DISTINCT groups by every (visible) output column. Hidden
        // sort columns stay outside the key so `DISTINCT x ORDER BY y`
        // remains an error-free but well-defined dedup on x alone only
        // when y is itself projected; to keep semantics simple, DISTINCT
        // with hidden sort columns is rejected.
        if q.distinct {
            if out_schema.len() > visible {
                return Err(Error::Plan(
                    "ORDER BY expressions must appear in the select list when DISTINCT is used"
                        .into(),
                ));
            }
            let group: Vec<BoundExpr> = (0..out_schema.len()).map(BoundExpr::Column).collect();
            plan = LogicalPlan::Aggregate {
                input: Box::new(plan),
                group,
                aggs: vec![],
                schema: out_schema.clone(),
            };
        }

        // ---- ORDER BY -----------------------------------------------------
        if !sort_keys.is_empty() {
            let keys = sort_keys.into_iter().map(|(i, asc)| (BoundExpr::Column(i), asc)).collect();
            plan = LogicalPlan::Sort { input: Box::new(plan), keys };
            // Trim hidden sort columns.
            if out_schema.len() > visible {
                let trimmed = Schema::new(out_schema.fields()[..visible].to_vec());
                plan = LogicalPlan::Project {
                    input: Box::new(plan),
                    exprs: (0..visible).map(BoundExpr::Column).collect(),
                    schema: trimmed,
                };
            }
        }

        // ---- LIMIT ------------------------------------------------------
        if let Some(n) = q.limit {
            plan = LogicalPlan::Limit { input: Box::new(plan), n };
        }
        Ok(plan)
    }

    /// Plans the FROM clause. Returns the source plan (a `MultiJoin` when
    /// more than one relation participates), the resolution scope, and the
    /// bound ON-clause conjuncts.
    fn plan_from(&self, q: &Query) -> Result<(LogicalPlan, Scope, Vec<BoundExpr>)> {
        if q.from.is_empty() {
            // SELECT without FROM: a single unit row that projections
            // evaluate against. The dummy column is invisible to the scope.
            let unit = Table::new(
                Schema::new(vec![Field::new("__unit", DataType::Int64)]),
                vec![crate::column::Column::Int64(vec![0])],
            )
            .expect("unit table is well-formed");
            return Ok((LogicalPlan::Values { table: unit }, Scope::default(), vec![]));
        }

        let mut inputs: Vec<LogicalPlan> = Vec::new();
        let mut scope = Scope::default();
        let mut pending_on: Vec<Expr> = Vec::new();

        let add_factor = |factor: &TableFactor,
                          inputs: &mut Vec<LogicalPlan>,
                          scope: &mut Scope|
         -> Result<()> {
            let binding = factor.binding_name().to_string();
            if scope
                .entries
                .iter()
                .any(|e| e.binding.as_deref().is_some_and(|b| b.eq_ignore_ascii_case(&binding)))
            {
                return Err(Error::Plan(format!("duplicate table binding '{binding}'")));
            }
            let plan = self.plan_factor(factor)?;
            scope.extend(Scope::from_schema(plan.schema(), Some(&binding)));
            inputs.push(plan);
            Ok(())
        };

        for item in &q.from {
            add_factor(&item.factor, &mut inputs, &mut scope)?;
            for j in &item.joins {
                add_factor(&j.factor, &mut inputs, &mut scope)?;
                pending_on.push(j.on.clone());
            }
        }

        // Bind ON predicates against the completed scope.
        let mut on_bound = Vec::new();
        for on in &pending_on {
            for c in on.conjuncts() {
                on_bound.push(self.bind(c, &scope)?);
            }
        }

        if inputs.len() == 1 {
            let plan = inputs.pop().expect("one input");
            Ok((plan, scope, on_bound))
        } else {
            let schema = scope.to_schema();
            Ok((LogicalPlan::MultiJoin { inputs, predicates: vec![], schema }, scope, on_bound))
        }
    }

    fn plan_factor(&self, factor: &TableFactor) -> Result<LogicalPlan> {
        match factor {
            TableFactor::Named { name, .. } => {
                if let Some(t) = self.catalog.table(name) {
                    Ok(LogicalPlan::Scan { table: name.clone(), schema: t.schema().clone() })
                } else if let Some(view) = self.catalog.view(name) {
                    // Views are inlined: the optimizer sees through them.
                    self.plan_query(&view)
                } else {
                    Err(Error::NotFound(format!("table or view '{name}'")))
                }
            }
            TableFactor::Derived { query, .. } => self.plan_query(query),
        }
    }

    // ---- aggregation ----------------------------------------------------

    /// Builds Aggregate (+ HAVING filter) and returns the rewritten
    /// projection expressions bound over the aggregate output.
    fn plan_aggregate(
        &self,
        input: LogicalPlan,
        scope: &Scope,
        q: &Query,
        agg_asts: &[Expr],
    ) -> Result<(LogicalPlan, Vec<BoundExpr>, Vec<String>)> {
        // Bind group keys.
        let mut group_bound: Vec<BoundExpr> = Vec::new();
        let mut group_names: Vec<String> = Vec::new();
        for (i, g) in q.group_by.iter().enumerate() {
            group_bound.push(self.bind(g, scope)?);
            group_names.push(match g {
                Expr::Column { name, .. } => name.clone(),
                _ => format!("group_{i}"),
            });
        }

        // Bind aggregate expressions.
        let in_schema = scope.to_schema();
        let mut aggs: Vec<AggExpr> = Vec::new();
        for (i, a) in agg_asts.iter().enumerate() {
            let Expr::Function { name, args, star, distinct } = a else {
                return Err(Error::Plan("internal: non-function aggregate".into()));
            };
            let func = AggFunc::from_name(name)
                .ok_or_else(|| Error::Plan(format!("unknown aggregate '{name}'")))?;
            let arg = if *star {
                None
            } else {
                if args.len() != 1 {
                    return Err(Error::Plan(format!("{name} takes exactly one argument")));
                }
                Some(self.bind(&args[0], scope)?)
            };
            if func != AggFunc::Count && arg.is_none() {
                return Err(Error::Plan(format!("{name}(*) is only valid for COUNT")));
            }
            aggs.push(AggExpr { func, arg, distinct: *distinct, output_name: format!("agg_{i}") });
        }

        // Aggregate output schema: group keys then aggregates.
        let mut fields = Vec::new();
        for (b, n) in group_bound.iter().zip(&group_names) {
            fields.push(Field::new(n.clone(), b.data_type(&in_schema, self.udfs)?));
        }
        for (agg, ast_expr) in aggs.iter().zip(agg_asts) {
            fields.push(Field::new(
                agg.output_name.clone(),
                agg_output_type(agg, &in_schema, self.udfs, ast_expr)?,
            ));
        }
        let agg_schema = Schema::new(fields);
        let n_groups = group_bound.len();

        let mut plan = LogicalPlan::Aggregate {
            input: Box::new(input),
            group: group_bound.clone(),
            aggs,
            schema: agg_schema.clone(),
        };

        // HAVING (bound over aggregate output).
        if let Some(h) = &q.having {
            let bound = self.rewrite_post_agg(h, scope, &group_bound, agg_asts, n_groups)?;
            plan = LogicalPlan::Filter { input: Box::new(plan), predicate: bound };
        }

        // Projections over the aggregate output.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for (i, item) in q.projections.iter().enumerate() {
            match item {
                SelectItem::Wildcard => {
                    return Err(Error::Plan("SELECT * cannot be combined with GROUP BY".into()))
                }
                SelectItem::Expr { expr, alias } => {
                    exprs.push(self.rewrite_post_agg(
                        expr,
                        scope,
                        &group_bound,
                        agg_asts,
                        n_groups,
                    )?);
                    names.push(projection_name(expr, alias.as_deref(), i));
                }
            }
        }
        Ok((plan, exprs, names))
    }

    /// Rewrites an expression that appears after aggregation: aggregate
    /// calls become references to aggregate outputs, group-key expressions
    /// become references to key columns, and anything else must be built
    /// from those (or constants).
    fn rewrite_post_agg(
        &self,
        expr: &Expr,
        scope: &Scope,
        group_bound: &[BoundExpr],
        agg_asts: &[Expr],
        n_groups: usize,
    ) -> Result<BoundExpr> {
        // An aggregate call?
        if let Some(pos) = agg_asts.iter().position(|a| a == expr) {
            return Ok(BoundExpr::Column(n_groups + pos));
        }
        // A group-key expression (matched after binding, so `patternID`
        // and `F.patternID` unify)?
        if let Ok(bound) = self.bind(expr, scope) {
            if let Some(pos) = group_bound.iter().position(|g| g == &bound) {
                return Ok(BoundExpr::Column(pos));
            }
            if bound.referenced_columns().is_empty() {
                return Ok(bound); // constant
            }
        }
        // Recurse structurally.
        match expr {
            Expr::Unary { op, expr: inner } => Ok(BoundExpr::Unary {
                op: *op,
                expr: Box::new(self.rewrite_post_agg(
                    inner,
                    scope,
                    group_bound,
                    agg_asts,
                    n_groups,
                )?),
            }),
            Expr::Binary { left, op, right } => Ok(BoundExpr::Binary {
                left: Box::new(self.rewrite_post_agg(
                    left,
                    scope,
                    group_bound,
                    agg_asts,
                    n_groups,
                )?),
                op: *op,
                right: Box::new(self.rewrite_post_agg(
                    right,
                    scope,
                    group_bound,
                    agg_asts,
                    n_groups,
                )?),
            }),
            Expr::Function { name, args, .. } => {
                let rewritten: Vec<BoundExpr> = args
                    .iter()
                    .map(|a| self.rewrite_post_agg(a, scope, group_bound, agg_asts, n_groups))
                    .collect::<Result<_>>()?;
                if let Some(func) = ScalarFunc::from_name(name) {
                    Ok(BoundExpr::ScalarFn { func, args: rewritten })
                } else if self.udfs.get(name).is_some() {
                    Ok(BoundExpr::Udf { name: name.clone(), args: rewritten })
                } else {
                    Err(Error::NotFound(format!("function '{name}'")))
                }
            }
            Expr::Column { qualifier, name } => {
                let full = match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                };
                Err(Error::Plan(format!(
                    "column '{full}' must appear in GROUP BY or inside an aggregate"
                )))
            }
            other => Err(Error::Plan(format!("cannot use {other:?} after aggregation"))),
        }
    }

    // ---- binding ----------------------------------------------------------

    /// Binds an AST expression against a scope. Aggregates are rejected —
    /// this is the path for WHERE/ON/GROUP BY and plain projections.
    fn bind(&self, expr: &Expr, scope: &Scope) -> Result<BoundExpr> {
        match expr {
            Expr::Column { qualifier, name } => {
                let idx = scope.resolve(qualifier.as_deref(), name)?;
                Ok(BoundExpr::Column(idx))
            }
            Expr::Literal(lit) => Ok(BoundExpr::Literal(literal_value(lit))),
            Expr::Unary { op, expr } => {
                Ok(BoundExpr::Unary { op: *op, expr: Box::new(self.bind(expr, scope)?) })
            }
            Expr::Binary { left, op, right } => {
                let mut l = self.bind(left, scope)?;
                let mut r = self.bind(right, scope)?;
                // Date coercion: comparing a Date column against a string
                // literal parses the literal (the paper writes
                // `printdate > '2021-01-01'`).
                if matches!(
                    op,
                    ast::BinOp::Eq
                        | ast::BinOp::NotEq
                        | ast::BinOp::Lt
                        | ast::BinOp::LtEq
                        | ast::BinOp::Gt
                        | ast::BinOp::GtEq
                ) {
                    let schema = scope.to_schema();
                    let lt = l.data_type(&schema, self.udfs);
                    let rt = r.data_type(&schema, self.udfs);
                    if let (Ok(DataType::Date), Ok(DataType::Utf8)) = (&lt, &rt) {
                        if let BoundExpr::Literal(Value::Utf8(s)) = &r {
                            r = BoundExpr::Literal(Value::Date(parse_date(s)?));
                        }
                    }
                    if let (Ok(DataType::Utf8), Ok(DataType::Date)) = (&lt, &rt) {
                        if let BoundExpr::Literal(Value::Utf8(s)) = &l {
                            l = BoundExpr::Literal(Value::Date(parse_date(s)?));
                        }
                    }
                }
                Ok(BoundExpr::Binary { left: Box::new(l), op: *op, right: Box::new(r) })
            }
            Expr::Function { name, args, .. } => {
                if AggFunc::from_name(name).is_some() {
                    return Err(Error::Plan(format!(
                        "aggregate '{name}' is not allowed in this context"
                    )));
                }
                let bound: Vec<BoundExpr> =
                    args.iter().map(|a| self.bind(a, scope)).collect::<Result<_>>()?;
                if let Some(func) = ScalarFunc::from_name(name) {
                    Ok(BoundExpr::ScalarFn { func, args: bound })
                } else if self.udfs.get(name).is_some() {
                    Ok(BoundExpr::Udf { name: name.clone(), args: bound })
                } else {
                    Err(Error::NotFound(format!("function '{name}'")))
                }
            }
            Expr::Subquery(q) => {
                let runner = self.subquery.ok_or_else(|| {
                    Error::Subquery("scalar subqueries are not available in this context".into())
                })?;
                let t = runner(q)?;
                if t.num_rows() != 1 || t.num_columns() != 1 {
                    return Err(Error::Subquery(format!(
                        "scalar subquery returned {} rows x {} columns, expected 1x1",
                        t.num_rows(),
                        t.num_columns()
                    )));
                }
                Ok(BoundExpr::Literal(t.column(0).value(0)))
            }
        }
    }

    /// Binds an expression against a single table (used by UPDATE and
    /// INSERT in the database facade).
    pub fn bind_against_table(&self, expr: &Expr, table_schema: &Schema) -> Result<BoundExpr> {
        let scope = Scope::from_schema(table_schema, None);
        self.bind(expr, &scope)
    }
}

fn conjoin_bound(exprs: Vec<BoundExpr>) -> BoundExpr {
    exprs
        .into_iter()
        .reduce(|a, b| BoundExpr::Binary {
            left: Box::new(a),
            op: ast::BinOp::And,
            right: Box::new(b),
        })
        .unwrap_or(BoundExpr::Literal(Value::Bool(true)))
}

fn literal_value(lit: &Literal) -> Value {
    match lit {
        Literal::Int(v) => Value::Int64(*v),
        Literal::Float(v) => Value::Float64(*v),
        Literal::Str(s) => Value::Utf8(s.clone()),
        Literal::Bool(b) => Value::Bool(*b),
    }
}

fn projection_name(expr: &Expr, alias: Option<&str>, index: usize) -> String {
    if let Some(a) = alias {
        return a.to_string();
    }
    match expr {
        Expr::Column { name, .. } => name.clone(),
        Expr::Function { name, .. } => name.clone(),
        _ => format!("col_{index}"),
    }
}

/// Collects aggregate function calls (rejecting nesting).
fn collect_aggregates(expr: &Expr, out: &mut Vec<Expr>) -> Result<()> {
    if let Expr::Function { name, args, .. } = expr {
        if AggFunc::from_name(name).is_some() {
            for a in args {
                if a.any(&|e| matches!(e, Expr::Function { name, .. } if AggFunc::from_name(name).is_some())) {
                    return Err(Error::Plan("nested aggregate functions".into()));
                }
            }
            if !out.contains(expr) {
                out.push(expr.clone());
            }
            return Ok(());
        }
    }
    match expr {
        Expr::Unary { expr, .. } => collect_aggregates(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_aggregates(left, out)?;
            collect_aggregates(right, out)
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out)?;
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn agg_output_type(
    agg: &AggExpr,
    in_schema: &Schema,
    udfs: &UdfRegistry,
    _ast: &Expr,
) -> Result<DataType> {
    Ok(match agg.func {
        AggFunc::Count => DataType::Int64,
        AggFunc::Avg | AggFunc::StddevSamp => DataType::Float64,
        AggFunc::Sum => {
            let t =
                agg.arg.as_ref().expect("SUM requires an argument").data_type(in_schema, udfs)?;
            if t == DataType::Int64 {
                DataType::Int64
            } else {
                DataType::Float64
            }
        }
        AggFunc::Min | AggFunc::Max => {
            agg.arg.as_ref().expect("MIN/MAX require an argument").data_type(in_schema, udfs)?
        }
    })
}
