//! Bound (name-resolved) expressions and their vectorized evaluation.
//!
//! The planner turns AST expressions into [`BoundExpr`]s whose column
//! references are positional indices into the input plan's schema. Scalar
//! subqueries are evaluated at plan time and appear here as literals.

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::column::Column;
use crate::error::{Error, Result};
use crate::sql::ast::{BinOp, UnaryOp};
use crate::table::{Schema, Table};
use crate::udf::UdfRegistry;
use crate::value::{DataType, Value};

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Abs,
    Sqrt,
    Exp,
    Ln,
    Floor,
    Ceil,
    Round,
    Pow,
    Greatest,
    Least,
    /// `if(cond, then, else)` — ClickHouse-style conditional.
    If,
}

impl ScalarFunc {
    /// Resolves a function name to a built-in, if it is one.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "abs" => ScalarFunc::Abs,
            "sqrt" => ScalarFunc::Sqrt,
            "exp" => ScalarFunc::Exp,
            "ln" | "log" => ScalarFunc::Ln,
            "floor" => ScalarFunc::Floor,
            "ceil" | "ceiling" => ScalarFunc::Ceil,
            "round" => ScalarFunc::Round,
            "pow" | "power" => ScalarFunc::Pow,
            "greatest" => ScalarFunc::Greatest,
            "least" => ScalarFunc::Least,
            "if" => ScalarFunc::If,
            _ => return None,
        })
    }

    fn arity(&self) -> usize {
        match self {
            ScalarFunc::Pow | ScalarFunc::Greatest | ScalarFunc::Least => 2,
            ScalarFunc::If => 3,
            _ => 1,
        }
    }
}

/// A name-resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundExpr {
    /// Positional reference into the input schema.
    Column(usize),
    /// A constant.
    Literal(Value),
    /// Unary operator.
    Unary { op: UnaryOp, expr: Box<BoundExpr> },
    /// Binary operator.
    Binary { left: Box<BoundExpr>, op: BinOp, right: Box<BoundExpr> },
    /// Built-in scalar function.
    ScalarFn { func: ScalarFunc, args: Vec<BoundExpr> },
    /// User-defined function, resolved from the registry at evaluation.
    Udf { name: String, args: Vec<BoundExpr> },
}

/// Everything expression evaluation needs besides the input batch.
pub struct EvalContext<'a> {
    /// UDF registry for [`BoundExpr::Udf`] calls.
    pub udfs: &'a UdfRegistry,
}

impl BoundExpr {
    /// Result type of the expression against `schema`.
    pub fn data_type(&self, schema: &Schema, udfs: &UdfRegistry) -> Result<DataType> {
        match self {
            BoundExpr::Column(i) => {
                if *i >= schema.len() {
                    return Err(Error::Plan(format!("column index {i} out of range")));
                }
                Ok(schema.field(*i).data_type)
            }
            BoundExpr::Literal(v) => Ok(v.data_type()),
            BoundExpr::Unary { op, expr } => {
                let t = expr.data_type(schema, udfs)?;
                match op {
                    UnaryOp::Neg if t.is_numeric() => Ok(t),
                    UnaryOp::Not if t == DataType::Bool => Ok(DataType::Bool),
                    _ => Err(Error::Type(format!("cannot apply {op:?} to {t}"))),
                }
            }
            BoundExpr::Binary { left, op, right } => {
                let lt = left.data_type(schema, udfs)?;
                let rt = right.data_type(schema, udfs)?;
                binary_result_type(lt, *op, rt)
            }
            BoundExpr::ScalarFn { func, args } => {
                if args.len() != func.arity() {
                    return Err(Error::Type(format!(
                        "{func:?} expects {} arguments, got {}",
                        func.arity(),
                        args.len()
                    )));
                }
                match func {
                    ScalarFunc::If => args[1].data_type(schema, udfs),
                    ScalarFunc::Greatest | ScalarFunc::Least => args[0].data_type(schema, udfs),
                    ScalarFunc::Abs => args[0].data_type(schema, udfs),
                    ScalarFunc::Floor | ScalarFunc::Ceil | ScalarFunc::Round => {
                        Ok(DataType::Float64)
                    }
                    _ => Ok(DataType::Float64),
                }
            }
            BoundExpr::Udf { name, .. } => {
                let udf =
                    udfs.get(name).ok_or_else(|| Error::NotFound(format!("function '{name}'")))?;
                Ok(udf.return_type)
            }
        }
    }

    /// Column indices the expression reads.
    pub fn referenced_columns(&self) -> BTreeSet<usize> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<usize>) {
        match self {
            BoundExpr::Column(i) => {
                out.insert(*i);
            }
            BoundExpr::Literal(_) => {}
            BoundExpr::Unary { expr, .. } => expr.collect_columns(out),
            BoundExpr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            BoundExpr::ScalarFn { args, .. } | BoundExpr::Udf { args, .. } => {
                for a in args {
                    a.collect_columns(out);
                }
            }
        }
    }

    /// Whether the expression (or a sub-expression) calls a UDF.
    pub fn contains_udf(&self) -> bool {
        match self {
            BoundExpr::Udf { .. } => true,
            BoundExpr::Column(_) | BoundExpr::Literal(_) => false,
            BoundExpr::Unary { expr, .. } => expr.contains_udf(),
            BoundExpr::Binary { left, right, .. } => left.contains_udf() || right.contains_udf(),
            BoundExpr::ScalarFn { args, .. } => args.iter().any(BoundExpr::contains_udf),
        }
    }

    /// Rewrites every column index through `map` (`new = map[old]`).
    pub fn remap_columns(&mut self, map: &[usize]) {
        match self {
            BoundExpr::Column(i) => *i = map[*i],
            BoundExpr::Literal(_) => {}
            BoundExpr::Unary { expr, .. } => expr.remap_columns(map),
            BoundExpr::Binary { left, right, .. } => {
                left.remap_columns(map);
                right.remap_columns(map);
            }
            BoundExpr::ScalarFn { args, .. } | BoundExpr::Udf { args, .. } => {
                for a in args {
                    a.remap_columns(map);
                }
            }
        }
    }

    /// Folds constant subexpressions into literals. UDF calls are never
    /// folded (they may be stateful in cost terms and must be visible to
    /// the optimizer); any evaluation error leaves the node unfolded so
    /// execution reports it in context.
    pub fn fold_constants(self, ctx: &EvalContext<'_>) -> BoundExpr {
        match self {
            BoundExpr::Unary { op, expr } => {
                let inner = expr.fold_constants(ctx);
                let folded = BoundExpr::Unary { op, expr: Box::new(inner) };
                folded.try_const(ctx)
            }
            BoundExpr::Binary { left, op, right } => {
                let l = left.fold_constants(ctx);
                let r = right.fold_constants(ctx);
                let folded = BoundExpr::Binary { left: Box::new(l), op, right: Box::new(r) };
                folded.try_const(ctx)
            }
            BoundExpr::ScalarFn { func, args } => {
                let args = args.into_iter().map(|a| a.fold_constants(ctx)).collect();
                let folded = BoundExpr::ScalarFn { func, args };
                folded.try_const(ctx)
            }
            BoundExpr::Udf { name, args } => BoundExpr::Udf {
                name,
                args: args.into_iter().map(|a| a.fold_constants(ctx)).collect(),
            },
            leaf => leaf,
        }
    }

    /// Replaces `self` with a literal when it is constant, UDF-free and
    /// evaluates cleanly.
    fn try_const(self, ctx: &EvalContext<'_>) -> BoundExpr {
        if self.contains_udf() || !self.referenced_columns().is_empty() {
            return self;
        }
        match self.eval_scalar(ctx) {
            Ok(v) => BoundExpr::Literal(v),
            Err(_) => self,
        }
    }

    /// Evaluates over a table, producing one value per row.
    pub fn eval(&self, input: &Table, ctx: &EvalContext<'_>) -> Result<Column> {
        let n = input.num_rows();
        match self {
            BoundExpr::Column(i) => Ok(input.column(*i).clone()),
            BoundExpr::Literal(v) => Ok(broadcast(v, n)),
            BoundExpr::Unary { op, expr } => {
                let c = expr.eval(input, ctx)?;
                match op {
                    UnaryOp::Neg => match c {
                        Column::Int64(v) => Ok(Column::Int64(v.into_iter().map(|x| -x).collect())),
                        Column::Float64(v) => {
                            Ok(Column::Float64(v.into_iter().map(|x| -x).collect()))
                        }
                        other => Err(Error::Type(format!("cannot negate {}", other.data_type()))),
                    },
                    UnaryOp::Not => match c {
                        Column::Bool(v) => Ok(Column::Bool(v.into_iter().map(|b| !b).collect())),
                        other => Err(Error::Type(format!("cannot NOT {}", other.data_type()))),
                    },
                }
            }
            BoundExpr::Binary { left, op, right } => {
                // Short-circuit-free vectorized evaluation.
                let l = left.eval(input, ctx)?;
                let r = right.eval(input, ctx)?;
                eval_binary(&l, *op, &r)
            }
            BoundExpr::ScalarFn { func, args } => {
                let cols: Vec<Column> =
                    args.iter().map(|a| a.eval(input, ctx)).collect::<Result<_>>()?;
                eval_scalar_fn(*func, &cols, n)
            }
            BoundExpr::Udf { name, args } => {
                let udf = ctx
                    .udfs
                    .get(name)
                    .ok_or_else(|| Error::NotFound(format!("function '{name}'")))?;
                let cols: Vec<Column> =
                    args.iter().map(|a| a.eval(input, ctx)).collect::<Result<_>>()?;
                // Prefer the vectorized implementation when one exists
                // (the paper's "batch manner").
                if let Some(batch) = &udf.batch_func {
                    let out = batch(&cols)?;
                    if out.len() != n {
                        return Err(Error::Exec(format!(
                            "batched UDF {} returned {} values for {n} rows",
                            udf.name,
                            out.len()
                        )));
                    }
                    if out.data_type() != udf.return_type {
                        return Err(Error::Type(format!(
                            "batched UDF {} returned {} (declared {})",
                            udf.name,
                            out.data_type(),
                            udf.return_type
                        )));
                    }
                    return Ok(out);
                }
                let mut out = Column::empty(udf.return_type);
                let mut row_args = Vec::with_capacity(cols.len());
                for row in 0..n {
                    row_args.clear();
                    row_args.extend(cols.iter().map(|c| c.value(row)));
                    out.push(udf.invoke(&row_args)?)?;
                }
                Ok(out)
            }
        }
    }

    /// Evaluates an expression with no column references to a single value.
    pub fn eval_const(&self, ctx: &EvalContext<'_>) -> Result<Value> {
        if !self.referenced_columns().is_empty() {
            return Err(Error::Plan("expression is not constant".into()));
        }
        let one =
            Table::new(Schema::default(), vec![]).expect("empty schema/columns are consistent");
        // An empty table has zero rows; evaluate via a scalar path instead.
        let _ = one;
        self.eval_scalar(ctx)
    }

    fn eval_scalar(&self, ctx: &EvalContext<'_>) -> Result<Value> {
        match self {
            BoundExpr::Column(_) => Err(Error::Plan("column in constant context".into())),
            BoundExpr::Literal(v) => Ok(v.clone()),
            BoundExpr::Unary { op, expr } => {
                let v = expr.eval_scalar(ctx)?;
                match op {
                    UnaryOp::Neg => match v {
                        Value::Int64(x) => Ok(Value::Int64(-x)),
                        Value::Float64(x) => Ok(Value::Float64(-x)),
                        other => Err(Error::Type(format!("cannot negate {}", other.data_type()))),
                    },
                    UnaryOp::Not => Ok(Value::Bool(!v.as_bool()?)),
                }
            }
            BoundExpr::Binary { left, op, right } => {
                let l = left.eval_scalar(ctx)?;
                let r = right.eval_scalar(ctx)?;
                scalar_binary(&l, *op, &r)
            }
            BoundExpr::ScalarFn { func, args } => {
                let vals: Vec<Value> =
                    args.iter().map(|a| a.eval_scalar(ctx)).collect::<Result<_>>()?;
                let cols: Vec<Column> = vals.iter().map(|v| broadcast(v, 1)).collect();
                let out = eval_scalar_fn(*func, &cols, 1)?;
                Ok(out.value(0))
            }
            BoundExpr::Udf { name, args } => {
                let udf = ctx
                    .udfs
                    .get(name)
                    .ok_or_else(|| Error::NotFound(format!("function '{name}'")))?;
                let vals: Vec<Value> =
                    args.iter().map(|a| a.eval_scalar(ctx)).collect::<Result<_>>()?;
                udf.invoke(&vals)
            }
        }
    }
}

fn broadcast(v: &Value, n: usize) -> Column {
    match v {
        Value::Int64(x) => Column::Int64(vec![*x; n]),
        Value::Float64(x) => Column::Float64(vec![*x; n]),
        Value::Bool(b) => Column::Bool(vec![*b; n]),
        Value::Utf8(s) => Column::Utf8(vec![s.clone(); n]),
        Value::Date(d) => Column::Date(vec![*d; n]),
        Value::Blob(b) => Column::Blob(vec![Arc::clone(b); n]),
    }
}

fn binary_result_type(lt: DataType, op: BinOp, rt: DataType) -> Result<DataType> {
    use BinOp::*;
    match op {
        And | Or => {
            if lt == DataType::Bool && rt == DataType::Bool {
                Ok(DataType::Bool)
            } else {
                Err(Error::Type(format!("{op:?} needs booleans, got {lt} and {rt}")))
            }
        }
        Eq | NotEq | Lt | LtEq | Gt | GtEq => Ok(DataType::Bool),
        Add | Sub | Mul | Mod => {
            if lt == DataType::Int64 && rt == DataType::Int64 {
                Ok(DataType::Int64)
            } else if lt.is_numeric() && rt.is_numeric() {
                Ok(DataType::Float64)
            } else {
                Err(Error::Type(format!("cannot {op:?} {lt} and {rt}")))
            }
        }
        // Division always yields Float64 (ClickHouse semantics; the paper's
        // count()/sum() ratios rely on it).
        Div => {
            if lt.is_numeric() && rt.is_numeric() {
                Ok(DataType::Float64)
            } else {
                Err(Error::Type(format!("cannot divide {lt} by {rt}")))
            }
        }
    }
}

fn eval_binary(l: &Column, op: BinOp, r: &Column) -> Result<Column> {
    use BinOp::*;
    let n = l.len();
    if r.len() != n {
        return Err(Error::Exec("binary operands differ in length".into()));
    }
    match op {
        And | Or => {
            let a = l.as_bool_slice()?;
            let b = r.as_bool_slice()?;
            let out = a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| if op == And { x && y } else { x || y })
                .collect();
            Ok(Column::Bool(out))
        }
        Add | Sub | Mul | Mod | Div => {
            // Integer fast path (Div always goes through floats).
            if let (Column::Int64(a), Column::Int64(b)) = (l, r) {
                if op != Div {
                    let out: Result<Vec<i64>> = a
                        .iter()
                        .zip(b.iter())
                        .map(|(&x, &y)| match op {
                            Add => Ok(x.wrapping_add(y)),
                            Sub => Ok(x.wrapping_sub(y)),
                            Mul => Ok(x.wrapping_mul(y)),
                            Mod => {
                                if y == 0 {
                                    Err(Error::Exec("modulo by zero".into()))
                                } else {
                                    Ok(x % y)
                                }
                            }
                            _ => unreachable!(),
                        })
                        .collect();
                    return Ok(Column::Int64(out?));
                }
            }
            let a = l.as_f64_vec()?;
            let b = r.as_f64_vec()?;
            let out: Vec<f64> = a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Mod => x % y,
                    _ => unreachable!(),
                })
                .collect();
            Ok(Column::Float64(out))
        }
        Eq | NotEq | Lt | LtEq | Gt | GtEq => {
            let mut out = Vec::with_capacity(n);
            // Typed fast path for numeric columns.
            if l.data_type().is_numeric() && r.data_type().is_numeric() {
                let a = l.as_f64_vec()?;
                let b = r.as_f64_vec()?;
                for (&x, &y) in a.iter().zip(b.iter()) {
                    out.push(match op {
                        Eq => x == y,
                        NotEq => x != y,
                        Lt => x < y,
                        LtEq => x <= y,
                        Gt => x > y,
                        GtEq => x >= y,
                        _ => unreachable!(),
                    });
                }
            } else {
                for row in 0..n {
                    let x = l.value(row);
                    let y = r.value(row);
                    let ord = x.total_cmp(&y);
                    out.push(match op {
                        Eq => x.sql_eq(&y),
                        NotEq => !x.sql_eq(&y),
                        Lt => ord.is_lt(),
                        LtEq => ord.is_le(),
                        Gt => ord.is_gt(),
                        GtEq => ord.is_ge(),
                        _ => unreachable!(),
                    });
                }
            }
            Ok(Column::Bool(out))
        }
    }
}

fn scalar_binary(l: &Value, op: BinOp, r: &Value) -> Result<Value> {
    let lc = broadcast(l, 1);
    let rc = broadcast(r, 1);
    Ok(eval_binary(&lc, op, &rc)?.value(0))
}

fn eval_scalar_fn(func: ScalarFunc, cols: &[Column], n: usize) -> Result<Column> {
    use ScalarFunc::*;
    match func {
        If => {
            #[allow(clippy::needless_range_loop)] // row indexes three parallel columns
            let cond = cols[0].as_bool_slice()?;
            let mut out = Column::empty(cols[1].data_type());
            #[allow(clippy::needless_range_loop)] // row indexes three parallel columns
            for row in 0..n {
                out.push(if cond[row] { cols[1].value(row) } else { cols[2].value(row) })?;
            }
            Ok(out)
        }
        Greatest | Least => {
            // Preserve Int64 when both inputs are Int64.
            if let (Column::Int64(a), Column::Int64(b)) = (&cols[0], &cols[1]) {
                let out = a
                    .iter()
                    .zip(b.iter())
                    .map(|(&x, &y)| if func == Greatest { x.max(y) } else { x.min(y) })
                    .collect();
                return Ok(Column::Int64(out));
            }
            let a = cols[0].as_f64_vec()?;
            let b = cols[1].as_f64_vec()?;
            let out = a
                .iter()
                .zip(b.iter())
                .map(|(&x, &y)| if func == Greatest { x.max(y) } else { x.min(y) })
                .collect();
            Ok(Column::Float64(out))
        }
        Abs => match &cols[0] {
            Column::Int64(v) => Ok(Column::Int64(v.iter().map(|x| x.abs()).collect())),
            other => Ok(Column::Float64(other.as_f64_vec()?.iter().map(|x| x.abs()).collect())),
        },
        Pow => {
            let a = cols[0].as_f64_vec()?;
            let b = cols[1].as_f64_vec()?;
            Ok(Column::Float64(a.iter().zip(b.iter()).map(|(&x, &y)| x.powf(y)).collect()))
        }
        _ => {
            let a = cols[0].as_f64_vec()?;
            let out: Vec<f64> = a
                .iter()
                .map(|&x| match func {
                    Sqrt => x.sqrt(),
                    Exp => x.exp(),
                    Ln => x.ln(),
                    Floor => x.floor(),
                    Ceil => x.ceil(),
                    Round => x.round(),
                    _ => unreachable!(),
                })
                .collect();
            Ok(Column::Float64(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Field;

    fn ctx_table() -> (UdfRegistry, Table) {
        let udfs = UdfRegistry::new();
        let t = Table::new(
            Schema::new(vec![
                Field::new("a", DataType::Int64),
                Field::new("b", DataType::Float64),
                Field::new("s", DataType::Utf8),
            ]),
            vec![
                Column::Int64(vec![1, 2, 3]),
                Column::Float64(vec![0.5, 1.5, 2.5]),
                Column::Utf8(vec!["x".into(), "y".into(), "x".into()]),
            ],
        )
        .unwrap();
        (udfs, t)
    }

    #[test]
    fn arithmetic_keeps_ints_except_division() {
        let (udfs, t) = ctx_table();
        let ctx = EvalContext { udfs: &udfs };
        let e = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinOp::Add,
            right: Box::new(BoundExpr::Literal(Value::Int64(10))),
        };
        assert_eq!(e.eval(&t, &ctx).unwrap(), Column::Int64(vec![11, 12, 13]));

        let d = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinOp::Div,
            right: Box::new(BoundExpr::Literal(Value::Int64(2))),
        };
        assert_eq!(d.eval(&t, &ctx).unwrap(), Column::Float64(vec![0.5, 1.0, 1.5]));
    }

    #[test]
    fn comparisons_and_boolean_logic() {
        let (udfs, t) = ctx_table();
        let ctx = EvalContext { udfs: &udfs };
        // a >= 2 AND s = 'x'
        let e = BoundExpr::Binary {
            left: Box::new(BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op: BinOp::GtEq,
                right: Box::new(BoundExpr::Literal(Value::Int64(2))),
            }),
            op: BinOp::And,
            right: Box::new(BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(2)),
                op: BinOp::Eq,
                right: Box::new(BoundExpr::Literal(Value::Utf8("x".into()))),
            }),
        };
        assert_eq!(e.eval(&t, &ctx).unwrap(), Column::Bool(vec![false, false, true]));
    }

    #[test]
    fn scalar_functions() {
        let (udfs, t) = ctx_table();
        let ctx = EvalContext { udfs: &udfs };
        let e = BoundExpr::ScalarFn {
            func: ScalarFunc::Greatest,
            args: vec![BoundExpr::Column(1), BoundExpr::Literal(Value::Float64(1.0))],
        };
        assert_eq!(e.eval(&t, &ctx).unwrap(), Column::Float64(vec![1.0, 1.5, 2.5]));
    }

    #[test]
    fn udf_evaluation_row_by_row() {
        let (udfs, t) = ctx_table();
        udfs.register(crate::udf::ScalarUdf::new(
            "plus_one",
            vec![DataType::Int64],
            DataType::Int64,
            |args| Ok(Value::Int64(args[0].as_i64()? + 1)),
        ));
        let ctx = EvalContext { udfs: &udfs };
        let e = BoundExpr::Udf { name: "plus_one".into(), args: vec![BoundExpr::Column(0)] };
        assert_eq!(e.eval(&t, &ctx).unwrap(), Column::Int64(vec![2, 3, 4]));
        assert!(e.contains_udf());
    }

    #[test]
    fn batched_udf_is_preferred_and_validated() {
        let (udfs, t) = ctx_table();
        udfs.register(
            crate::udf::ScalarUdf::new("neg", vec![DataType::Int64], DataType::Int64, |args| {
                Ok(Value::Int64(-args[0].as_i64()?))
            })
            .with_batch(|cols| match &cols[0] {
                Column::Int64(v) => Ok(Column::Int64(v.iter().map(|x| -x).collect())),
                other => Err(Error::Type(format!("expected Int64, got {}", other.data_type()))),
            }),
        );
        let ctx = EvalContext { udfs: &udfs };
        let e = BoundExpr::Udf { name: "neg".into(), args: vec![BoundExpr::Column(0)] };
        assert_eq!(e.eval(&t, &ctx).unwrap(), Column::Int64(vec![-1, -2, -3]));

        // A misbehaving batch impl (wrong length) is rejected.
        udfs.register(
            crate::udf::ScalarUdf::new("bad", vec![DataType::Int64], DataType::Int64, |_| {
                Ok(Value::Int64(0))
            })
            .with_batch(|_| Ok(Column::Int64(vec![0]))),
        );
        let b = BoundExpr::Udf { name: "bad".into(), args: vec![BoundExpr::Column(0)] };
        assert!(b.eval(&t, &ctx).is_err());
    }

    #[test]
    fn missing_udf_is_a_clean_error() {
        let (udfs, t) = ctx_table();
        let ctx = EvalContext { udfs: &udfs };
        let e = BoundExpr::Udf { name: "ghost".into(), args: vec![] };
        assert!(matches!(e.eval(&t, &ctx), Err(Error::NotFound(_))));
    }

    #[test]
    fn constant_folding() {
        let udfs = UdfRegistry::new();
        udfs.register(crate::udf::ScalarUdf::new("f", vec![], DataType::Int64, |_| {
            Ok(Value::Int64(1))
        }));
        let ctx = EvalContext { udfs: &udfs };
        // (1 + 2) * 3 folds to 9.
        let e = BoundExpr::Binary {
            left: Box::new(BoundExpr::Binary {
                left: Box::new(BoundExpr::Literal(Value::Int64(1))),
                op: BinOp::Add,
                right: Box::new(BoundExpr::Literal(Value::Int64(2))),
            }),
            op: BinOp::Mul,
            right: Box::new(BoundExpr::Literal(Value::Int64(3))),
        };
        assert_eq!(e.fold_constants(&ctx), BoundExpr::Literal(Value::Int64(9)));

        // col + (2 * 2) folds only the right side.
        let partial = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinOp::Add,
            right: Box::new(BoundExpr::Binary {
                left: Box::new(BoundExpr::Literal(Value::Int64(2))),
                op: BinOp::Mul,
                right: Box::new(BoundExpr::Literal(Value::Int64(2))),
            }),
        };
        let folded = partial.fold_constants(&ctx);
        let BoundExpr::Binary { right, .. } = &folded else { panic!() };
        assert_eq!(**right, BoundExpr::Literal(Value::Int64(4)));

        // UDFs never fold, even with constant arguments.
        let udf = BoundExpr::Udf { name: "f".into(), args: vec![] };
        assert!(matches!(udf.fold_constants(&ctx), BoundExpr::Udf { .. }));

        // 1 % 0 would error: left unfolded for execution to report.
        let div0 = BoundExpr::Binary {
            left: Box::new(BoundExpr::Literal(Value::Int64(1))),
            op: BinOp::Mod,
            right: Box::new(BoundExpr::Literal(Value::Int64(0))),
        };
        assert!(matches!(div0.fold_constants(&ctx), BoundExpr::Binary { .. }));
    }

    #[test]
    fn const_eval() {
        let udfs = UdfRegistry::new();
        let ctx = EvalContext { udfs: &udfs };
        let e = BoundExpr::Binary {
            left: Box::new(BoundExpr::Literal(Value::Int64(2))),
            op: BinOp::Mul,
            right: Box::new(BoundExpr::Literal(Value::Int64(21))),
        };
        assert_eq!(e.eval_const(&ctx).unwrap().as_i64().unwrap(), 42);
        assert!(BoundExpr::Column(0).eval_const(&ctx).is_err());
    }

    #[test]
    fn referenced_columns_and_remap() {
        let mut e = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinOp::Add,
            right: Box::new(BoundExpr::Column(2)),
        };
        assert_eq!(e.referenced_columns().into_iter().collect::<Vec<_>>(), vec![0, 2]);
        e.remap_columns(&[5, 6, 7]);
        assert_eq!(e.referenced_columns().into_iter().collect::<Vec<_>>(), vec![5, 7]);
    }

    #[test]
    fn type_inference_matches_eval() {
        let (udfs, t) = ctx_table();
        let ctx = EvalContext { udfs: &udfs };
        let exprs = vec![
            BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op: BinOp::Mul,
                right: Box::new(BoundExpr::Column(0)),
            },
            BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op: BinOp::Div,
                right: Box::new(BoundExpr::Column(1)),
            },
            BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op: BinOp::Lt,
                right: Box::new(BoundExpr::Column(1)),
            },
        ];
        for e in exprs {
            let declared = e.data_type(t.schema(), &udfs).unwrap();
            let actual = e.eval(&t, &ctx).unwrap().data_type();
            assert_eq!(declared, actual, "{e:?}");
        }
    }

    #[test]
    fn division_by_zero_yields_infinity_like_floats() {
        let (udfs, t) = ctx_table();
        let ctx = EvalContext { udfs: &udfs };
        let e = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinOp::Div,
            right: Box::new(BoundExpr::Literal(Value::Int64(0))),
        };
        let c = e.eval(&t, &ctx).unwrap();
        assert!(c.f64_at(0).is_infinite());
        // Integer modulo by zero is an error instead.
        let m = BoundExpr::Binary {
            left: Box::new(BoundExpr::Column(0)),
            op: BinOp::Mod,
            right: Box::new(BoundExpr::Literal(Value::Int64(0))),
        };
        assert!(m.eval(&t, &ctx).is_err());
    }
}
