//! Typed columnar storage.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// A column of values, stored as a typed vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Bool(Vec<bool>),
    Utf8(Vec<String>),
    Date(Vec<i32>),
    Blob(Vec<Arc<Vec<u8>>>),
}

/// A hashable, equatable key derived from a [`Value`], used by hash joins
/// and hash aggregation. Floats key by their bit pattern; integer-valued
/// floats key identically to the equal integer so that cross-type equi
/// joins behave like [`Value::sql_eq`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Key {
    Int(i64),
    FloatBits(u64),
    Bool(bool),
    Str(String),
    Bytes(Vec<u8>),
}

impl Value {
    /// The hash key for this value.
    pub fn to_key(&self) -> Key {
        match self {
            Value::Int64(v) => Key::Int(*v),
            Value::Float64(v) => {
                if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    Key::Int(*v as i64)
                } else {
                    Key::FloatBits(v.to_bits())
                }
            }
            Value::Bool(b) => Key::Bool(*b),
            Value::Utf8(s) => Key::Str(s.clone()),
            Value::Date(d) => Key::Int(*d as i64),
            Value::Blob(b) => Key::Bytes(b.as_ref().clone()),
        }
    }
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(dt: DataType) -> Self {
        match dt {
            DataType::Int64 => Column::Int64(Vec::new()),
            DataType::Float64 => Column::Float64(Vec::new()),
            DataType::Bool => Column::Bool(Vec::new()),
            DataType::Utf8 => Column::Utf8(Vec::new()),
            DataType::Date => Column::Date(Vec::new()),
            DataType::Blob => Column::Blob(Vec::new()),
        }
    }

    /// Builds a column of `dt` from scalar values, coercing numerics.
    pub fn from_values(dt: DataType, values: impl IntoIterator<Item = Value>) -> Result<Self> {
        let mut col = Column::empty(dt);
        for v in values {
            col.push(v)?;
        }
        Ok(col)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int64(v) => v.len(),
            Column::Float64(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Utf8(v) => v.len(),
            Column::Date(v) => v.len(),
            Column::Blob(v) => v.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int64(_) => DataType::Int64,
            Column::Float64(_) => DataType::Float64,
            Column::Bool(_) => DataType::Bool,
            Column::Utf8(_) => DataType::Utf8,
            Column::Date(_) => DataType::Date,
            Column::Blob(_) => DataType::Blob,
        }
    }

    /// The value at `row`. Panics when out of bounds (operators validate
    /// lengths up front).
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int64(v) => Value::Int64(v[row]),
            Column::Float64(v) => Value::Float64(v[row]),
            Column::Bool(v) => Value::Bool(v[row]),
            Column::Utf8(v) => Value::Utf8(v[row].clone()),
            Column::Date(v) => Value::Date(v[row]),
            Column::Blob(v) => Value::Blob(v[row].clone()),
        }
    }

    /// Appends a value, coercing Int64↔Float64 where lossless.
    pub fn push(&mut self, value: Value) -> Result<()> {
        match (self, value) {
            (Column::Int64(v), Value::Int64(x)) => v.push(x),
            (Column::Int64(v), Value::Float64(x)) if x.fract() == 0.0 => v.push(x as i64),
            (Column::Int64(v), Value::Bool(x)) => v.push(x as i64),
            (Column::Float64(v), Value::Float64(x)) => v.push(x),
            (Column::Float64(v), Value::Int64(x)) => v.push(x as f64),
            (Column::Bool(v), Value::Bool(x)) => v.push(x),
            (Column::Utf8(v), Value::Utf8(x)) => v.push(x),
            (Column::Date(v), Value::Date(x)) => v.push(x),
            (Column::Date(v), Value::Utf8(x)) => v.push(crate::value::parse_date(&x)?),
            (Column::Blob(v), Value::Blob(x)) => v.push(x),
            (col, value) => {
                return Err(Error::Type(format!(
                    "cannot store {} in a {} column",
                    value.data_type(),
                    col.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Column {
        debug_assert_eq!(mask.len(), self.len());
        fn pick<T: Clone>(v: &[T], mask: &[bool]) -> Vec<T> {
            v.iter().zip(mask.iter()).filter(|(_, keep)| **keep).map(|(x, _)| x.clone()).collect()
        }
        match self {
            Column::Int64(v) => Column::Int64(pick(v, mask)),
            Column::Float64(v) => Column::Float64(pick(v, mask)),
            Column::Bool(v) => Column::Bool(pick(v, mask)),
            Column::Utf8(v) => Column::Utf8(pick(v, mask)),
            Column::Date(v) => Column::Date(pick(v, mask)),
            Column::Blob(v) => Column::Blob(pick(v, mask)),
        }
    }

    /// Gathers rows by index (indices may repeat or reorder).
    pub fn take(&self, indices: &[usize]) -> Column {
        fn gather<T: Clone>(v: &[T], idx: &[usize]) -> Vec<T> {
            idx.iter().map(|&i| v[i].clone()).collect()
        }
        match self {
            Column::Int64(v) => Column::Int64(gather(v, indices)),
            Column::Float64(v) => Column::Float64(gather(v, indices)),
            Column::Bool(v) => Column::Bool(gather(v, indices)),
            Column::Utf8(v) => Column::Utf8(gather(v, indices)),
            Column::Date(v) => Column::Date(gather(v, indices)),
            Column::Blob(v) => Column::Blob(gather(v, indices)),
        }
    }

    /// A contiguous row range (a morsel of the column).
    pub fn slice(&self, range: std::ops::Range<usize>) -> Column {
        match self {
            Column::Int64(v) => Column::Int64(v[range].to_vec()),
            Column::Float64(v) => Column::Float64(v[range].to_vec()),
            Column::Bool(v) => Column::Bool(v[range].to_vec()),
            Column::Utf8(v) => Column::Utf8(v[range].to_vec()),
            Column::Date(v) => Column::Date(v[range].to_vec()),
            Column::Blob(v) => Column::Blob(v[range].to_vec()),
        }
    }

    /// Concatenates another column of the same type onto this one.
    pub fn append(&mut self, other: &Column) -> Result<()> {
        match (self, other) {
            (Column::Int64(a), Column::Int64(b)) => a.extend_from_slice(b),
            (Column::Float64(a), Column::Float64(b)) => a.extend_from_slice(b),
            (Column::Bool(a), Column::Bool(b)) => a.extend_from_slice(b),
            (Column::Utf8(a), Column::Utf8(b)) => a.extend_from_slice(b),
            (Column::Date(a), Column::Date(b)) => a.extend_from_slice(b),
            (Column::Blob(a), Column::Blob(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(Error::Type(format!(
                    "cannot append {} column to {} column",
                    b.data_type(),
                    a.data_type()
                )))
            }
        }
        Ok(())
    }

    /// All values as `f64` (numeric columns only).
    pub fn as_f64_vec(&self) -> Result<Vec<f64>> {
        match self {
            Column::Int64(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            Column::Float64(v) => Ok(v.clone()),
            Column::Bool(v) => Ok(v.iter().map(|&b| b as u8 as f64).collect()),
            Column::Date(v) => Ok(v.iter().map(|&x| x as f64).collect()),
            other => Err(Error::Type(format!("{} column is not numeric", other.data_type()))),
        }
    }

    /// Boolean rows (Bool columns only).
    pub fn as_bool_slice(&self) -> Result<&[bool]> {
        match self {
            Column::Bool(v) => Ok(v),
            other => Err(Error::Type(format!("{} column is not boolean", other.data_type()))),
        }
    }

    /// Convenience: `f64` at row (tests/benches).
    pub fn f64_at(&self, row: usize) -> f64 {
        self.value(row).as_f64().expect("numeric column")
    }

    /// Convenience: `i64` at row (tests/benches).
    pub fn i64_at(&self, row: usize) -> i64 {
        self.value(row).as_i64().expect("integer column")
    }

    /// Hash keys for the whole column.
    pub fn keys(&self) -> Vec<Key> {
        (0..self.len()).map(|i| self.key_at(i)).collect()
    }

    /// The hash key at `row`, built without materializing an intermediate
    /// [`Value`] (avoids a throw-away `String`/`Vec` clone per row on
    /// Utf8/Blob columns; identical to `value(row).to_key()`).
    pub fn key_at(&self, row: usize) -> Key {
        match self {
            Column::Int64(v) => Key::Int(v[row]),
            Column::Float64(v) => {
                let x = v[row];
                if x.fract() == 0.0 && x.abs() < 9.0e15 {
                    Key::Int(x as i64)
                } else {
                    Key::FloatBits(x.to_bits())
                }
            }
            Column::Bool(v) => Key::Bool(v[row]),
            Column::Utf8(v) => Key::Str(v[row].clone()),
            Column::Date(v) => Key::Int(v[row] as i64),
            Column::Blob(v) => Key::Bytes(v[row].as_ref().clone()),
        }
    }

    /// The raw `i64` rows (Int64 columns only) — typed fast paths read
    /// these instead of per-row [`Value`]s.
    pub fn as_i64_slice(&self) -> Option<&[i64]> {
        match self {
            Column::Int64(v) => Some(v),
            _ => None,
        }
    }

    /// The raw `f64` rows (Float64 columns only).
    pub fn as_f64_slice(&self) -> Option<&[f64]> {
        match self {
            Column::Float64(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes (used by the storage-overhead
    /// experiment, paper Table IV).
    pub fn memory_bytes(&self) -> usize {
        match self {
            Column::Int64(v) => v.len() * 8,
            Column::Float64(v) => v.len() * 8,
            Column::Bool(v) => v.len(),
            Column::Utf8(v) => v.iter().map(|s| s.len() + 24).sum(),
            Column::Date(v) => v.len() * 4,
            Column::Blob(v) => v.iter().map(|b| b.len() + 8).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_coerces_lossless_numerics() {
        let mut c = Column::empty(DataType::Int64);
        c.push(Value::Int64(1)).unwrap();
        c.push(Value::Float64(2.0)).unwrap();
        assert!(c.push(Value::Float64(2.5)).is_err());
        assert_eq!(c.len(), 2);

        let mut f = Column::empty(DataType::Float64);
        f.push(Value::Int64(3)).unwrap();
        assert_eq!(f.f64_at(0), 3.0);
    }

    #[test]
    fn date_column_accepts_string_literals() {
        let mut c = Column::empty(DataType::Date);
        c.push(Value::Utf8("2021-01-31".into())).unwrap();
        assert_eq!(c.value(0), Value::Date(crate::value::parse_date("2021-01-31").unwrap()));
    }

    #[test]
    fn filter_keeps_masked_rows() {
        let c = Column::Int64(vec![10, 20, 30, 40]);
        let f = c.filter(&[true, false, true, false]);
        assert_eq!(f, Column::Int64(vec![10, 30]));
    }

    #[test]
    fn take_reorders_and_repeats() {
        let c = Column::Utf8(vec!["a".into(), "b".into()]);
        let t = c.take(&[1, 0, 1]);
        assert_eq!(t, Column::Utf8(vec!["b".into(), "a".into(), "b".into()]));
    }

    #[test]
    fn append_requires_same_type() {
        let mut a = Column::Int64(vec![1]);
        a.append(&Column::Int64(vec![2])).unwrap();
        assert_eq!(a.len(), 2);
        assert!(a.append(&Column::Bool(vec![true])).is_err());
    }

    #[test]
    fn keys_unify_int_and_integral_float() {
        // An Int64 join key must meet an equal Float64 key, mirroring sql_eq.
        assert_eq!(Value::Int64(7).to_key(), Value::Float64(7.0).to_key());
        assert_ne!(Value::Int64(7).to_key(), Value::Float64(7.5).to_key());
    }

    #[test]
    fn key_at_agrees_with_value_to_key() {
        let cols = [
            Column::Int64(vec![3]),
            Column::Float64(vec![2.5]),
            Column::Float64(vec![7.0]),
            Column::Bool(vec![true]),
            Column::Utf8(vec!["x".into()]),
            Column::Date(vec![11]),
            Column::Blob(vec![Arc::new(vec![1u8, 2])]),
        ];
        for c in &cols {
            assert_eq!(c.key_at(0), c.value(0).to_key(), "{}", c.data_type());
        }
    }

    #[test]
    fn typed_slice_accessors() {
        assert_eq!(Column::Int64(vec![1, 2]).as_i64_slice(), Some(&[1i64, 2][..]));
        assert_eq!(Column::Float64(vec![0.5]).as_f64_slice(), Some(&[0.5][..]));
        assert_eq!(Column::Int64(vec![1]).as_f64_slice(), None);
        assert_eq!(Column::Float64(vec![0.5]).as_i64_slice(), None);
    }

    #[test]
    fn memory_accounting_is_monotone() {
        let small = Column::Int64(vec![1; 10]).memory_bytes();
        let big = Column::Int64(vec![1; 100]).memory_bytes();
        assert!(big > small);
    }
}
