//! Scalar values and their types.

use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

use crate::error::{Error, Result};

/// The engine's column types. No NULLs: the reproduction's workload never
/// produces them (documented limitation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit float.
    Float64,
    /// Boolean.
    Bool,
    /// UTF-8 string.
    Utf8,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
    /// Opaque binary payload (video keyframes travel as blobs).
    Blob,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Bool => "Bool",
            DataType::Utf8 => "String",
            DataType::Date => "Date",
            DataType::Blob => "Blob",
        };
        f.write_str(name)
    }
}

impl DataType {
    /// Parses a type name as written in `CREATE TABLE` (ClickHouse-flavored
    /// spellings accepted).
    pub fn parse(name: &str) -> Result<Self> {
        match name.to_ascii_lowercase().as_str() {
            "int64" | "int" | "bigint" | "integer" => Ok(DataType::Int64),
            "float64" | "float" | "double" | "real" => Ok(DataType::Float64),
            "bool" | "boolean" => Ok(DataType::Bool),
            "string" | "utf8" | "text" | "varchar" => Ok(DataType::Utf8),
            "date" => Ok(DataType::Date),
            "blob" | "bytes" | "binary" => Ok(DataType::Blob),
            other => Err(Error::Type(format!("unknown type name '{other}'"))),
        }
    }

    /// Whether values of this type support arithmetic.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64)
    }
}

/// A single scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int64(i64),
    Float64(f64),
    Bool(bool),
    Utf8(String),
    /// Days since the Unix epoch.
    Date(i32),
    Blob(Arc<Vec<u8>>),
}

impl Value {
    /// The value's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Bool(_) => DataType::Bool,
            Value::Utf8(_) => DataType::Utf8,
            Value::Date(_) => DataType::Date,
            Value::Blob(_) => DataType::Blob,
        }
    }

    /// Numeric view as `f64`; integers and booleans widen.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Int64(v) => Ok(*v as f64),
            Value::Float64(v) => Ok(*v),
            Value::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
            Value::Date(d) => Ok(*d as f64),
            other => Err(Error::Type(format!("{} is not numeric", other.data_type()))),
        }
    }

    /// Integer view; floats must be integral.
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::Int64(v) => Ok(*v),
            Value::Float64(v) if v.fract() == 0.0 => Ok(*v as i64),
            Value::Bool(b) => Ok(*b as i64),
            Value::Date(d) => Ok(*d as i64),
            other => Err(Error::Type(format!("{other:?} is not an integer"))),
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int64(v) => Ok(*v != 0),
            other => Err(Error::Type(format!("{} is not a boolean", other.data_type()))),
        }
    }

    /// String view.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::Utf8(s) => Ok(s),
            other => Err(Error::Type(format!("{} is not a string", other.data_type()))),
        }
    }

    /// Total ordering used by ORDER BY and MIN/MAX. Values of different
    /// numeric types compare numerically; other cross-type comparisons
    /// order by type tag (stable, if arbitrary).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int64(a), Int64(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Int64(a), Float64(b)) => (*a as f64).total_cmp(b),
            (Float64(a), Int64(b)) => a.total_cmp(&(*b as f64)),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Blob(a), Blob(b)) => a.cmp(b),
            (a, b) => type_rank(a).cmp(&type_rank(b)),
        }
    }

    /// Equality used by joins, grouping and `=`. Numerics compare
    /// numerically across Int64/Float64.
    pub fn sql_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Int64(a), Int64(b)) => a == b,
            (Float64(a), Float64(b)) => a == b,
            (Int64(a), Float64(b)) | (Float64(b), Int64(a)) => *a as f64 == *b,
            (Bool(a), Bool(b)) => a == b,
            (Utf8(a), Utf8(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            (Blob(a), Blob(b)) => a == b,
            _ => false,
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Int64(_) => 0,
        Value::Float64(_) => 1,
        Value::Bool(_) => 2,
        Value::Utf8(_) => 3,
        Value::Date(_) => 4,
        Value::Blob(_) => 5,
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int64(v) => write!(f, "{v}"),
            Value::Float64(v) => write!(f, "{v}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Utf8(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", format_date(*d)),
            Value::Blob(b) => write!(f, "<blob {} bytes>", b.len()),
        }
    }
}

/// Parses `YYYY-MM-DD` (single-digit month/day accepted, as in the paper's
/// `'2021-1-31'`) into days since the Unix epoch.
pub fn parse_date(s: &str) -> Result<i32> {
    let mut parts = s.split('-');
    let bad = || Error::Type(format!("'{s}' is not a date (expected YYYY-MM-DD)"));
    let year: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let month: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    let day: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
    if parts.next().is_some() || !(1..=12).contains(&month) || !(1..=31).contains(&day) {
        return Err(bad());
    }
    Ok(days_from_civil(year, month, day))
}

/// Days since 1970-01-01 for a proleptic Gregorian date
/// (Howard Hinnant's `days_from_civil` algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146097 + doe as i32 - 719468
}

/// Inverse of [`parse_date`]: days since epoch to `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let z = days + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = (z - era * 146097) as u32;
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_parsing_accepts_clickhouse_spellings() {
        assert_eq!(DataType::parse("Int64").unwrap(), DataType::Int64);
        assert_eq!(DataType::parse("FLOAT64").unwrap(), DataType::Float64);
        assert_eq!(DataType::parse("String").unwrap(), DataType::Utf8);
        assert!(DataType::parse("decimal").is_err());
    }

    #[test]
    fn date_roundtrip() {
        for s in ["1970-01-01", "2021-01-31", "2000-02-29", "1969-12-31", "2021-12-31"] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s, "roundtrip of {s}");
        }
        assert_eq!(parse_date("1970-01-01").unwrap(), 0);
        assert_eq!(parse_date("1970-01-02").unwrap(), 1);
    }

    #[test]
    fn single_digit_date_components_parse() {
        // The paper writes '2021-1-31'.
        assert_eq!(parse_date("2021-1-31").unwrap(), parse_date("2021-01-31").unwrap());
    }

    #[test]
    fn bad_dates_are_rejected() {
        for s in ["", "2021", "2021-13-01", "2021-00-10", "2021-01-40", "a-b-c", "2021-01-01-01"] {
            assert!(parse_date(s).is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert!(Value::Int64(3).sql_eq(&Value::Float64(3.0)));
        assert!(!Value::Int64(3).sql_eq(&Value::Float64(3.5)));
        assert!(!Value::Int64(1).sql_eq(&Value::Utf8("1".into())));
    }

    #[test]
    fn ordering_is_total_and_numeric_across_types() {
        assert_eq!(Value::Int64(2).total_cmp(&Value::Float64(2.5)), Ordering::Less);
        assert_eq!(Value::Utf8("a".into()).total_cmp(&Value::Utf8("b".into())), Ordering::Less);
        assert_eq!(Value::Float64(f64::NAN).total_cmp(&Value::Float64(f64::NAN)), Ordering::Equal);
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Bool(true).as_f64().unwrap(), 1.0);
        assert_eq!(Value::Float64(4.0).as_i64().unwrap(), 4);
        assert!(Value::Float64(4.5).as_i64().is_err());
        assert!(Value::Utf8("x".into()).as_f64().is_err());
        assert!(!Value::Int64(0).as_bool().unwrap());
    }
}
