//! Fast non-cryptographic hashing for executor hash maps.
//!
//! `std`'s default SipHash guards against adversarial key collisions —
//! protection the executor does not need for its own join and group-by
//! maps, whose keys come from table data the engine already holds. The
//! FxHash-style word mixer below (rotate, xor, multiply by a large odd
//! constant) hashes an `i128` packed join key in a couple of cycles,
//! which is visible end-to-end on the DL2SQL conv hot path where the
//! probe loop is little more than hash + fold.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

/// Multiplier from FxHash (Firefox): a large odd constant with good bit
/// dispersion under multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiplicative hasher.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` producing [`FxHasher`]s (no per-map random state: the
/// executor's maps are never exposed to untrusted key choice, and a fixed
/// state keeps iteration—and thus any map-order-dependent cost—repeatable).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` keyed with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// An empty fast-hashed map pre-sized for `capacity` entries.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    HashMap::with_capacity_and_hasher(capacity, FxBuildHasher)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_words_rarely_collide() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        assert_eq!(seen.len(), 10_000, "sequential keys must not collide");
    }

    #[test]
    fn hashing_is_deterministic_across_builders() {
        let b = FxBuildHasher;
        let one = b.hash_one(42i128);
        let two = FxBuildHasher.hash_one(42i128);
        assert_eq!(one, two);
    }

    #[test]
    fn map_round_trips_composite_keys() {
        let mut m: FxHashMap<Vec<u64>, usize> = fx_map_with_capacity(4);
        m.insert(vec![1, 2], 12);
        m.insert(vec![2, 1], 21);
        assert_eq!(m.get([1, 2].as_slice()), Some(&12));
        assert_eq!(m.get([2, 1].as_slice()), Some(&21));
    }

    #[test]
    fn byte_writes_cover_partial_words() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghi"); // 8 + 1 bytes: two words
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }
}
