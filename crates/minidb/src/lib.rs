//! `minidb` — an in-memory columnar SQL engine.
//!
//! This crate is the stand-in for the in-memory ClickHouse deployment in
//! the reproduction of *"A Comparative Study of in-Database Inference
//! Approaches"* (ICDE 2022). It implements the slice of a database system
//! that every experiment in the paper exercises:
//!
//! * typed columnar storage with a catalog of tables and views
//!   ([`table`], [`catalog`]),
//! * a SQL dialect covering the paper's collaborative queries and every
//!   statement the DL2SQL compiler emits ([`sql`]): SELECT with joins
//!   (explicit and implicit), GROUP BY/HAVING, ORDER BY/LIMIT, scalar
//!   subqueries, derived tables, CREATE TEMP TABLE AS, CREATE VIEW,
//!   INSERT, UPDATE, DROP,
//! * a logical planner and a rule/cost-based optimizer with a **pluggable
//!   cost model** ([`plan`], [`optimizer`]) — the hook through which the
//!   DL2SQL crate installs the paper's customized cost model (Eq. 3–8),
//! * a vectorized executor with hash joins, a symmetric hash join with
//!   bucket-level LRU (paper Sec. IV-B), hash aggregation, and
//!   per-operator timing used to reproduce the paper's Fig. 10
//!   ([`exec`], [`profile`]),
//! * scalar user-defined functions with optional selectivity and
//!   per-row-cost metadata ([`udf`]) — the loose-integration strategy's
//!   `nUDF`s and the hint rules both live on this interface,
//! * hash indices ([`index`]).
//!
//! Deliberate non-goals (nothing in the paper's evaluation needs them):
//! NULL semantics, transactions, persistence, and distributed execution.
//!
//! # Quick example
//!
//! ```
//! use minidb::Database;
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE t (id Int64, v Float64)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 2.5), (2, 4.5)").unwrap();
//! let out = db.execute("SELECT SUM(v) AS total FROM t WHERE id >= 1").unwrap();
//! assert_eq!(out.table().column(0).f64_at(0), 7.0);
//! ```

pub mod catalog;
pub mod column;
pub mod cost;
pub mod db;
pub mod error;
pub mod exec;
pub mod expr;
pub mod hash;
pub mod index;
pub mod optimizer;
pub mod plan;
pub mod profile;
pub mod sql;
pub mod stats;
pub mod table;
pub mod udf;
pub mod value;

pub use catalog::Catalog;
pub use column::Column;
pub use cost::{parallel_discount, CostContext, CostModel, DefaultCostModel, PlanCost};
pub use db::{Database, DatabaseBuilder, PreparedQuery, QueryResult};
pub use error::{Error, Result};
pub use govern::{CancelToken, QueryError};
pub use profile::{OperatorKind, Profiler};
pub use table::{Field, Schema, Table};
pub use udf::{ScalarUdf, UdfRegistry};
pub use value::{DataType, Value};
