//! The database facade: parse → plan → optimize → execute.

use std::sync::Arc;

use parking_lot::RwLock;

use crate::catalog::Catalog;
use crate::column::Column;
use crate::cost::{CostContext, CostModel, DefaultCostModel, PlanCost};
use crate::error::{Error, Result};
use crate::exec::{self, ExecConfig, ExecContext};
use crate::expr::EvalContext;
use crate::optimizer::{Optimizer, OptimizerConfig};
use crate::plan::logical::LogicalPlan;
use crate::plan::planner::Planner;
use crate::profile::{OperatorKind, Profiler};
use crate::sql::ast::{ObjectKind, Query, Statement};
use crate::sql::parser;
use crate::stats::StatsCache;
use crate::table::{Field, Schema, Table};
use crate::udf::{ScalarUdf, UdfRegistry};

/// Result of executing one statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    table: Table,
    rows_affected: usize,
    elapsed: std::time::Duration,
    rows_scanned: u64,
    plan_cache_hit: bool,
    plan_cache: cachekit::StatsSnapshot,
    trace: Option<Arc<obs::SpanTree>>,
}

impl QueryResult {
    fn of(table: Table, rows_affected: usize) -> Self {
        QueryResult {
            table,
            rows_affected,
            elapsed: std::time::Duration::ZERO,
            rows_scanned: 0,
            plan_cache_hit: false,
            plan_cache: cachekit::StatsSnapshot::default(),
            trace: None,
        }
    }

    /// The result table (empty for DML/DDL statements).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Consumes the result, returning the table.
    pub fn into_table(self) -> Table {
        self.table
    }

    /// Rows returned (SELECT) or modified (DML).
    pub fn rows_affected(&self) -> usize {
        self.rows_affected
    }

    /// Output column names, in order.
    pub fn column_names(&self) -> Vec<&str> {
        self.table.schema().fields().iter().map(|f| f.name.as_str()).collect()
    }

    /// Output column types, in order.
    pub fn column_types(&self) -> Vec<crate::value::DataType> {
        self.table.schema().fields().iter().map(|f| f.data_type).collect()
    }

    /// Wall-clock time the statement took (parse excluded for prepared
    /// queries, included for `Database::execute`).
    pub fn elapsed(&self) -> std::time::Duration {
        self.elapsed
    }

    /// Base-table rows read by Scan operators while this statement ran.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned
    }

    /// Whether `Database::execute` served this SELECT from the plan cache
    /// (skipping parse + plan). Always false for prepared queries and
    /// non-SELECT statements.
    pub fn plan_cache_hit(&self) -> bool {
        self.plan_cache_hit
    }

    /// Plan-cache lookups recorded while this statement ran (a delta of
    /// the database-wide counters; with concurrent statements the window
    /// may include their lookups too).
    pub fn plan_cache_stats(&self) -> cachekit::StatsSnapshot {
        self.plan_cache
    }

    /// The statement's span tree, present when it was traced: the
    /// collector was enabled, a slow-query threshold was armed, or the
    /// statement was `EXPLAIN ANALYZE`.
    pub fn trace(&self) -> Option<&obs::SpanTree> {
        self.trace.as_deref()
    }

    /// A one-line human summary ("3 rows in 1.24 ms, 12 rows scanned").
    pub fn summary(&self) -> String {
        format!(
            "{} row{} in {:.2} ms, {} row{} scanned",
            self.rows_affected,
            if self.rows_affected == 1 { "" } else { "s" },
            self.elapsed.as_secs_f64() * 1e3,
            self.rows_scanned,
            if self.rows_scanned == 1 { "" } else { "s" },
        )
    }
}

/// Callback invoked with the span tree of a statement that exceeded
/// [`ExecConfig::slow_query_threshold`].
pub type SlowQueryHook = Arc<dyn Fn(&obs::SpanTree) + Send + Sync>;

/// An in-memory SQL database instance.
pub struct Database {
    catalog: Catalog,
    udfs: UdfRegistry,
    profiler: Profiler,
    stats: StatsCache,
    exec_config: RwLock<ExecConfig>,
    optimizer_config: RwLock<OptimizerConfig>,
    cost_model: RwLock<Arc<dyn CostModel>>,
    /// Normalized SQL → (plan epoch at plan time, optimized plan). Entries
    /// whose stamp differs from the current [`Database::plan_epoch`] are
    /// treated as misses and replaced.
    plan_cache: cachekit::LruCache<String, (u64, Arc<LogicalPlan>)>,
    /// Bumped when the optimizer/executor configuration or cost model is
    /// swapped mid-session — all of which can change which plan is best.
    config_epoch: cachekit::Epoch,
    /// Span collector for parse/plan/execute tracing. Disabled by default;
    /// when off the only cost per statement is a few atomic loads.
    tracer: obs::Collector,
    /// Fired with the span tree of any statement slower than
    /// [`ExecConfig::slow_query_threshold`].
    slow_query_hook: RwLock<SlowQueryHook>,
    /// Per-statement wall-time distribution, exported by
    /// [`Database::metrics_snapshot`].
    query_latency: obs::Histogram,
    /// Session-wide cancel handle, created lazily on the first
    /// [`Database::cancel_handle`] call so the common case (nobody
    /// listening) keeps the unarmed governor fast path.
    session_token: std::sync::OnceLock<govern::CancelToken>,
    /// Shared memory-budget tracker, present when
    /// [`ExecConfig::memory_budget`] is non-zero. Rebuilt on
    /// [`Database::swap_exec_config`].
    memory_budget: RwLock<Option<Arc<govern::MemoryBudget>>>,
    /// Statements that returned an error (any cause).
    query_failures: std::sync::atomic::AtomicU64,
    /// Failure counts by governance cause, exported by
    /// [`Database::metrics_snapshot`].
    gov_cancellations: std::sync::atomic::AtomicU64,
    gov_timeouts: std::sync::atomic::AtomicU64,
    gov_budget_rejections: std::sync::atomic::AtomicU64,
    gov_worker_panics: std::sync::atomic::AtomicU64,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

/// Construction-time configuration for a [`Database`].
///
/// ```
/// use minidb::Database;
/// let db = Database::builder().parallelism(4).build();
/// # let _ = db;
/// ```
pub struct DatabaseBuilder {
    exec_config: ExecConfig,
    optimizer_config: OptimizerConfig,
    cost_model: Arc<dyn CostModel>,
}

impl Default for DatabaseBuilder {
    fn default() -> Self {
        DatabaseBuilder {
            exec_config: ExecConfig::default(),
            optimizer_config: OptimizerConfig::default(),
            cost_model: Arc::new(DefaultCostModel::default()),
        }
    }
}

impl DatabaseBuilder {
    /// Replaces the executor configuration wholesale.
    pub fn exec_config(mut self, config: ExecConfig) -> Self {
        self.exec_config = config;
        self
    }

    /// Replaces the optimizer configuration.
    pub fn optimizer_config(mut self, config: OptimizerConfig) -> Self {
        self.optimizer_config = config;
        self
    }

    /// Installs a cost model.
    pub fn cost_model(mut self, model: Arc<dyn CostModel>) -> Self {
        self.cost_model = model;
        self
    }

    /// Worker threads for morsel-parallel operators (`1` = serial
    /// reference path). Clamped to at least 1.
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.exec_config.parallelism = workers.max(1);
        self
    }

    /// Entries in the ad-hoc `execute` plan cache; `0` disables it.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.exec_config.plan_cache_capacity = capacity;
        self
    }

    /// Wall-clock deadline per statement; exceeding it aborts the query
    /// with [`govern::QueryError::TimedOut`]. `None` disables the check.
    pub fn query_timeout(mut self, timeout: std::time::Duration) -> Self {
        self.exec_config.query_timeout = Some(timeout);
        self
    }

    /// Byte budget shared by all memory-intensive operators (hash-join
    /// builds, group-by tables, fused accumulators). `0` disables
    /// enforcement.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.exec_config.memory_budget = bytes;
        self
    }

    /// Builds the database.
    pub fn build(self) -> Database {
        let plan_cache = cachekit::LruCache::new(self.exec_config.plan_cache_capacity);
        let default_hook: Arc<dyn Fn(&obs::SpanTree) + Send + Sync> =
            Arc::new(|tree: &obs::SpanTree| {
                eprintln!("[minidb] slow query:\n{}", tree.render());
            });
        let memory_budget = Database::build_budget(&self.exec_config);
        Database {
            catalog: Catalog::new(),
            udfs: UdfRegistry::new(),
            profiler: Profiler::new(),
            stats: StatsCache::new(),
            exec_config: RwLock::new(self.exec_config),
            optimizer_config: RwLock::new(self.optimizer_config),
            cost_model: RwLock::new(self.cost_model),
            plan_cache,
            config_epoch: cachekit::Epoch::new(),
            tracer: obs::Collector::new(),
            slow_query_hook: RwLock::new(default_hook),
            query_latency: obs::Histogram::new(&[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0]),
            session_token: std::sync::OnceLock::new(),
            memory_budget: RwLock::new(memory_budget),
            query_failures: std::sync::atomic::AtomicU64::new(0),
            gov_cancellations: std::sync::atomic::AtomicU64::new(0),
            gov_timeouts: std::sync::atomic::AtomicU64::new(0),
            gov_budget_rejections: std::sync::atomic::AtomicU64::new(0),
            gov_worker_panics: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

/// Collapses whitespace runs to single spaces and trims, so formatting
/// variants of the same statement share a plan-cache entry. Case and quoted
/// literals are preserved: distinct texts may at worst miss, never collide.
fn normalize_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_quote: Option<char> = None;
    let mut pending_space = false;
    for c in sql.trim().chars() {
        match in_quote {
            Some(q) => {
                out.push(c);
                if c == q {
                    in_quote = None;
                }
            }
            None if c == '\'' || c == '"' => {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                out.push(c);
                in_quote = Some(c);
            }
            None if c.is_whitespace() => pending_space = true,
            None => {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                out.push(c);
            }
        }
    }
    out
}

impl Database {
    /// A fresh database with the default cost model and optimizer config.
    pub fn new() -> Self {
        Database::builder().build()
    }

    /// Starts configuring a database (executor, optimizer, cost model,
    /// parallelism).
    pub fn builder() -> DatabaseBuilder {
        DatabaseBuilder::default()
    }

    /// The catalog (to create tables programmatically).
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The UDF registry.
    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// Registers a scalar UDF (convenience for `udfs().register`).
    pub fn register_udf(&self, udf: ScalarUdf) {
        self.udfs.register(udf);
    }

    /// The per-operator profiler.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Replaces the cost model mid-session, returning the previous one.
    /// The DL2SQL hint rules install and uninstall the paper's customized
    /// model around individual queries through this. Invalidates cached
    /// plans (a different model can prefer different plans).
    pub fn swap_cost_model(&self, model: Arc<dyn CostModel>) -> Arc<dyn CostModel> {
        self.config_epoch.bump();
        std::mem::replace(&mut *self.cost_model.write(), model)
    }

    /// The currently-installed cost model.
    pub fn cost_model(&self) -> Arc<dyn CostModel> {
        self.cost_model.read().clone()
    }

    /// Replaces the optimizer configuration mid-session, returning the
    /// previous one. Invalidates cached plans.
    pub fn swap_optimizer_config(&self, config: OptimizerConfig) -> OptimizerConfig {
        self.config_epoch.bump();
        std::mem::replace(&mut *self.optimizer_config.write(), config)
    }

    /// The current optimizer configuration.
    pub fn optimizer_config(&self) -> OptimizerConfig {
        self.optimizer_config.read().clone()
    }

    /// Replaces the executor configuration mid-session, returning the
    /// previous one. Invalidates cached plans (parallelism feeds the cost
    /// model) and applies the new plan-cache capacity.
    pub fn swap_exec_config(&self, config: ExecConfig) -> ExecConfig {
        self.config_epoch.bump();
        self.plan_cache.set_capacity(config.plan_cache_capacity);
        *self.memory_budget.write() = Database::build_budget(&config);
        std::mem::replace(&mut *self.exec_config.write(), config)
    }

    fn build_budget(config: &ExecConfig) -> Option<Arc<govern::MemoryBudget>> {
        (config.memory_budget > 0)
            .then(|| Arc::new(govern::MemoryBudget::new(config.memory_budget)))
    }

    /// The session-wide cancel handle. Cancelling it makes every running
    /// and subsequent statement on this database fail with
    /// [`govern::QueryError::Canceled`] until
    /// [`reset`](govern::CancelToken::reset) is called.
    pub fn cancel_handle(&self) -> govern::CancelToken {
        self.session_token.get_or_init(govern::CancelToken::new).clone()
    }

    /// Errors with [`govern::QueryError::Canceled`] when the session
    /// cancel handle is set. Layers above statement granularity (the
    /// multi-step DL2SQL runner) call this between steps.
    pub fn check_canceled(&self) -> Result<()> {
        match self.session_token.get() {
            Some(token) if token.is_canceled() => {
                // A rejection here aborts work that never reaches the
                // statement machinery; count it so metrics agree with
                // what callers observe.
                self.gov_cancellations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Err(Error::Governance(govern::QueryError::Canceled))
            }
            _ => Ok(()),
        }
    }

    /// The shared memory-budget tracker, when one is configured.
    pub fn memory_budget(&self) -> Option<Arc<govern::MemoryBudget>> {
        self.memory_budget.read().clone()
    }

    /// A governor for one statement starting now: the query-level token if
    /// given, else the session token (if anyone holds the handle), with the
    /// deadline derived from [`ExecConfig::query_timeout`]. Unarmed — a
    /// single-branch no-op per check — when neither is configured.
    fn statement_governor(&self, token: Option<govern::CancelToken>) -> govern::Governor {
        let token = token.or_else(|| self.session_token.get().cloned());
        govern::Governor::new(token, self.exec_config.read().query_timeout)
    }

    /// The current executor configuration.
    pub fn exec_config(&self) -> ExecConfig {
        self.exec_config.read().clone()
    }

    // ------------------------------------------------------------------
    // statement execution
    // ------------------------------------------------------------------

    /// The epoch cached plans are validated against: any catalog mutation,
    /// UDF (re-)registration, or config/cost-model swap moves it. Each
    /// component only ever increments, so the sum changes whenever any of
    /// them does.
    fn plan_epoch(&self) -> u64 {
        self.catalog.epoch() + self.udfs.epoch() + self.config_epoch.current()
    }

    /// Live entries in the ad-hoc plan cache (observability/tests).
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Parses and executes a single SQL statement. Repeated SELECTs are
    /// served from an epoch-validated plan cache, skipping parse + plan
    /// entirely; any catalog change invalidates affected entries wholesale.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let started = std::time::Instant::now();
        let governor = self.statement_governor(None);
        let root = self.query_root();
        let pc_before = self.profiler.plan_cache_stats();
        let out = self.execute_traced(sql, root, &governor);
        self.finalize_query(root, pc_before, started, out)
    }

    fn execute_traced(
        &self,
        sql: &str,
        root: obs::SpanId,
        governor: &govern::Governor,
    ) -> Result<QueryResult> {
        if self.plan_cache.capacity() == 0 {
            let stmt = self.parse_spanned(sql, root)?;
            return self.execute_statement_spanned(&stmt, root, governor);
        }
        let key = normalize_sql(sql);
        // Read the epoch before planning: a concurrent mutation between
        // here and insert leaves the entry stamped old → next lookup
        // misses and replans. Stale-but-marked-fresh can't happen.
        let epoch = self.plan_epoch();
        if let Some((cached_epoch, plan)) = self.plan_cache.get(&key) {
            if cached_epoch == epoch {
                self.profiler.record_plan_cache(true);
                self.tracer.event(root, "plan_cache", "hit");
                let mut result = self.run_plan_timed_spanned(&plan, root, governor)?;
                result.plan_cache_hit = true;
                return Ok(result);
            }
            self.plan_cache.remove(&key);
        }
        let stmt = self.parse_spanned(sql, root)?;
        if let Statement::Query(q) = &stmt {
            self.profiler.record_plan_cache(false);
            self.tracer.event(root, "plan_cache", "miss");
            let plan = Arc::new(self.plan_query_spanned(q, root)?);
            self.plan_cache.insert(key, (epoch, Arc::clone(&plan)));
            return self.run_plan_timed_spanned(&plan, root, governor);
        }
        self.execute_statement_spanned(&stmt, root, governor)
    }

    /// Root span for one statement: created when the collector is enabled
    /// or an armed slow-query threshold forces capture; `NONE` otherwise,
    /// which collapses the whole tracing path to `is_none` checks.
    fn query_root(&self) -> obs::SpanId {
        let forced = self.exec_config.read().slow_query_threshold.is_some();
        if self.tracer.is_enabled() || forced {
            self.tracer.start_root("query")
        } else {
            obs::SpanId::NONE
        }
    }

    /// Closes a statement's root span: extracts the tree, fires the
    /// slow-query hook when the statement crossed the threshold, attaches
    /// the trace and per-statement plan-cache delta to the result, and
    /// feeds the latency histogram. Errored statements feed the histogram
    /// too (with their wall time up to the failure) and bump the failure
    /// counters by governance cause — previously they silently skipped
    /// accounting entirely.
    fn finalize_query(
        &self,
        root: obs::SpanId,
        pc_before: cachekit::StatsSnapshot,
        started: std::time::Instant,
        out: Result<QueryResult>,
    ) -> Result<QueryResult> {
        if let Err(err) = &out {
            self.note_failure(root, err, started);
        }
        let tree = if root.is_some() {
            self.tracer.finish(root);
            Some(self.tracer.take_tree(root))
        } else {
            None
        };
        let mut result = out?;
        let pc_after = self.profiler.plan_cache_stats();
        result.plan_cache = cachekit::StatsSnapshot {
            hits: pc_after.hits.saturating_sub(pc_before.hits),
            misses: pc_after.misses.saturating_sub(pc_before.misses),
            evictions: pc_after.evictions.saturating_sub(pc_before.evictions),
        };
        self.query_latency.observe(result.elapsed.as_secs_f64());
        if let Some(tree) = tree {
            let tree = Arc::new(tree);
            if let Some(threshold) = self.exec_config.read().slow_query_threshold {
                if result.elapsed >= threshold {
                    let hook = self.slow_query_hook.read().clone();
                    hook(&tree);
                }
            }
            result.trace = Some(tree);
        }
        Ok(result)
    }

    /// Failure-side bookkeeping for [`finalize_query`](Self::finalize_query):
    /// latency histogram, failure counters by governance cause, and a
    /// `governance` trace event when the statement was traced.
    fn note_failure(&self, root: obs::SpanId, err: &Error, started: std::time::Instant) {
        use std::sync::atomic::Ordering::Relaxed;
        self.query_latency.observe(started.elapsed().as_secs_f64());
        self.query_failures.fetch_add(1, Relaxed);
        let cause = match err.governance() {
            Some(govern::QueryError::Canceled) => {
                self.gov_cancellations.fetch_add(1, Relaxed);
                "canceled"
            }
            Some(govern::QueryError::TimedOut { .. }) => {
                self.gov_timeouts.fetch_add(1, Relaxed);
                "timed_out"
            }
            Some(govern::QueryError::BudgetExceeded { .. }) => {
                self.gov_budget_rejections.fetch_add(1, Relaxed);
                "budget_exceeded"
            }
            Some(govern::QueryError::WorkerPanic(_)) => {
                self.gov_worker_panics.fetch_add(1, Relaxed);
                "worker_panic"
            }
            _ => "error",
        };
        if root.is_some() {
            self.tracer.event(root, "governance", cause);
        }
    }

    /// Parses under a `parse` phase span.
    fn parse_spanned(&self, sql: &str, parent: obs::SpanId) -> Result<Statement> {
        let span = self.tracer.child(parent, obs::SpanKind::Phase, "parse", "");
        let stmt = parser::parse_statement(sql);
        self.tracer.finish(span);
        stmt
    }

    /// Executes an optimized plan under an `execute` phase span, stamping
    /// timing + rows-scanned metadata.
    fn run_plan_timed_spanned(
        &self,
        plan: &LogicalPlan,
        parent: obs::SpanId,
        governor: &govern::Governor,
    ) -> Result<QueryResult> {
        let scanned_before = self.profiler.rows_out(OperatorKind::Scan);
        let start = std::time::Instant::now();
        let span = self.tracer.child(parent, obs::SpanKind::Phase, "execute", "");
        let table = self.execute_plan_spanned(plan, span, governor);
        self.tracer.finish(span);
        let table = table?;
        let rows = table.num_rows();
        let mut result = QueryResult::of(table, rows);
        result.elapsed = start.elapsed();
        result.rows_scanned =
            self.profiler.rows_out(OperatorKind::Scan).saturating_sub(scanned_before);
        Ok(result)
    }

    /// Executes a semicolon-separated script, returning the last result.
    pub fn execute_script(&self, sql: &str) -> Result<QueryResult> {
        let stmts = parser::parse_statements(sql)?;
        let mut last = QueryResult::of(Table::empty(Schema::default()), 0);
        for s in &stmts {
            last = self.execute_statement(s)?;
        }
        Ok(last)
    }

    /// Executes a parsed statement, stamping the result with its wall time
    /// and the number of base-table rows its Scan operators read.
    pub fn execute_statement(&self, stmt: &Statement) -> Result<QueryResult> {
        let started = std::time::Instant::now();
        let governor = self.statement_governor(None);
        let root = self.query_root();
        let pc_before = self.profiler.plan_cache_stats();
        let out = self.execute_statement_spanned(stmt, root, &governor);
        self.finalize_query(root, pc_before, started, out)
    }

    fn execute_statement_spanned(
        &self,
        stmt: &Statement,
        span: obs::SpanId,
        governor: &govern::Governor,
    ) -> Result<QueryResult> {
        let scanned_before = self.profiler.rows_out(OperatorKind::Scan);
        let start = std::time::Instant::now();
        let mut result = self.execute_statement_inner(stmt, span, governor)?;
        result.elapsed = start.elapsed();
        result.rows_scanned =
            self.profiler.rows_out(OperatorKind::Scan).saturating_sub(scanned_before);
        Ok(result)
    }

    fn execute_statement_inner(
        &self,
        stmt: &Statement,
        span: obs::SpanId,
        governor: &govern::Governor,
    ) -> Result<QueryResult> {
        match stmt {
            Statement::Query(q) => {
                let table = self.run_query_spanned(q, span, governor)?;
                let rows = table.num_rows();
                Ok(QueryResult::of(table, rows))
            }
            Statement::CreateTable { name, if_not_exists, columns, as_query, .. } => {
                if *if_not_exists && self.catalog.table(name).is_some() {
                    return Ok(QueryResult::of(Table::empty(Schema::default()), 0));
                }
                // The inner query's operators record themselves; the
                // CreateTable entry covers only the materialization.
                let table = match as_query {
                    Some(q) => self.run_query_spanned(q, span, governor)?,
                    None => {
                        let schema = Schema::new(
                            columns.iter().map(|(n, t)| Field::new(n.clone(), *t)).collect(),
                        );
                        Table::empty(schema)
                    }
                };
                let start = std::time::Instant::now();
                let rows = table.num_rows();
                // `CREATE TEMP TABLE` re-creation is idiomatic in the
                // DL2SQL-generated scripts: allow replacement.
                self.catalog.create_table(name, table, true)?;
                self.profiler.record(OperatorKind::CreateTable, start.elapsed(), rows);
                Ok(QueryResult::of(Table::empty(Schema::default()), rows))
            }
            Statement::CreateView { name, query } => {
                // Validate the definition by planning it once.
                let _plan = self.plan_query(query)?;
                self.catalog.create_view(name, query.clone(), true)?;
                Ok(QueryResult::of(Table::empty(Schema::default()), 0))
            }
            Statement::Insert { table, rows } => self.run_insert(table, rows),
            Statement::InsertSelect { table, query } => {
                let start = std::time::Instant::now();
                let current = self
                    .catalog
                    .table(table)
                    .ok_or_else(|| Error::NotFound(format!("table '{table}'")))?;
                let incoming = self.run_query_spanned(query, span, governor)?;
                if incoming.num_columns() != current.num_columns() {
                    return Err(Error::Plan(format!(
                        "INSERT SELECT produces {} columns, table '{table}' has {}",
                        incoming.num_columns(),
                        current.num_columns()
                    )));
                }
                let mut new_table = (*current).clone();
                for row in 0..incoming.num_rows() {
                    new_table.push_row(incoming.row(row))?;
                }
                let affected = incoming.num_rows();
                self.catalog.replace_table(table, new_table)?;
                self.profiler.record(OperatorKind::Insert, start.elapsed(), affected);
                Ok(QueryResult::of(Table::empty(Schema::default()), affected))
            }
            Statement::Update { table, assignments, predicate } => {
                self.run_update(table, assignments, predicate.as_ref())
            }
            Statement::CreateIndex { table, column } => {
                self.catalog.create_index(table, column)?;
                Ok(QueryResult::of(Table::empty(Schema::default()), 0))
            }
            Statement::Explain(q) => {
                let text = self.explain_plan_with_costs(&self.plan_query(q)?);
                let mut col = Column::empty(crate::value::DataType::Utf8);
                for line in text.lines() {
                    col.push(crate::value::Value::Utf8(line.to_string()))?;
                }
                let table = Table::new(
                    Schema::new(vec![Field::new("plan", crate::value::DataType::Utf8)]),
                    vec![col],
                )?;
                let rows = table.num_rows();
                Ok(QueryResult::of(table, rows))
            }
            Statement::ExplainAnalyze(inner) => self.explain_analyze(inner, governor),
            Statement::Drop { kind, name, if_exists } => {
                let dropped = match kind {
                    ObjectKind::Table => self.catalog.drop_table(name, *if_exists)?,
                    ObjectKind::View => self.catalog.drop_view(name, *if_exists)?,
                };
                Ok(QueryResult::of(Table::empty(Schema::default()), dropped as usize))
            }
        }
    }

    /// Parses and plans a SELECT once, for repeated execution through
    /// [`PreparedQuery::run`]. The plan is bound to this database; table
    /// *contents* are re-read from the catalog on every run, so prepared
    /// queries observe later INSERTs/UPDATEs.
    pub fn prepare(&self, sql: &str) -> Result<PreparedQuery<'_>> {
        let stmt = parser::parse_statement(sql)?;
        let Statement::Query(q) = stmt else {
            return Err(Error::Plan("prepare supports SELECT statements".into()));
        };
        self.prepare_query(&q)
    }

    /// Plans an already-parsed SELECT for repeated execution.
    pub fn prepare_query(&self, q: &Query) -> Result<PreparedQuery<'_>> {
        Ok(PreparedQuery { db: self, plan: self.plan_query(q)?, token: std::sync::OnceLock::new() })
    }

    /// Plans, optimizes and executes a SELECT. Failures count toward the
    /// same governance metrics as [`execute`](Self::execute) — this is
    /// the entry point the collaborative strategies drive directly.
    pub fn run_query(&self, q: &Query) -> Result<Table> {
        let started = std::time::Instant::now();
        let governor = self.statement_governor(None);
        let out = self.run_query_spanned(q, obs::SpanId::NONE, &governor);
        if let Err(err) = &out {
            self.note_failure(obs::SpanId::NONE, err, started);
        }
        out
    }

    /// [`run_query`](Self::run_query) with plan/execute phase spans
    /// nesting under `parent`.
    fn run_query_spanned(
        &self,
        q: &Query,
        parent: obs::SpanId,
        governor: &govern::Governor,
    ) -> Result<Table> {
        let plan = self.plan_query_spanned(q, parent)?;
        let span = self.tracer.child(parent, obs::SpanKind::Phase, "execute", "");
        let out = self.execute_plan_spanned(&plan, span, governor);
        self.tracer.finish(span);
        out
    }

    fn cost_ctx(&self) -> CostContext<'_> {
        CostContext {
            catalog: &self.catalog,
            udfs: &self.udfs,
            stats: &self.stats,
            parallelism: self.exec_config.read().parallelism,
        }
    }

    /// Plans and optimizes a SELECT without executing it.
    pub fn plan_query(&self, q: &Query) -> Result<LogicalPlan> {
        self.plan_query_spanned(q, obs::SpanId::NONE)
    }

    /// [`plan_query`](Self::plan_query) under a `plan` phase span with one
    /// child per optimizer pass.
    fn plan_query_spanned(&self, q: &Query, parent: obs::SpanId) -> Result<LogicalPlan> {
        let span = self.tracer.child(parent, obs::SpanKind::Phase, "plan", "");
        let out = self.plan_query_passes(q, span);
        self.tracer.finish(span);
        out
    }

    fn plan_query_passes(&self, q: &Query, span: obs::SpanId) -> Result<LogicalPlan> {
        let runner = |sub: &Query| self.run_query(sub);
        let planner = Planner::new(&self.catalog, &self.udfs, Some(&runner));
        let s = self.tracer.child(span, obs::SpanKind::Phase, "build_logical", "");
        let plan = planner.plan_query(q);
        self.tracer.finish(s);
        let plan = plan?;
        let optimizer = Optimizer::new(self.optimizer_config(), self.cost_model());
        let ctx = self.cost_ctx();
        let s = self.tracer.child(span, obs::SpanKind::Phase, "optimize", "");
        let plan = optimizer.optimize(plan, &ctx);
        self.tracer.finish(s);
        let plan = plan?;
        let s = self.tracer.child(span, obs::SpanKind::Phase, "fold_constants", "");
        let plan = crate::optimizer::fold_plan_constants(plan, &self.udfs);
        self.tracer.finish(s);
        let s = self.tracer.child(span, obs::SpanKind::Phase, "prune_columns", "");
        let plan = crate::optimizer::prune_columns(plan);
        self.tracer.finish(s);
        // Fusion runs last, over the pruned plan: the rewrite sees the
        // joins' final output masks and unmasks group/aggregate expressions
        // through them.
        if self.optimizer_config().fuse_join_aggregates {
            let s = self.tracer.child(span, obs::SpanKind::Phase, "fuse_join_aggregates", "");
            let plan = crate::optimizer::fuse_join_aggregates(plan);
            self.tracer.finish(s);
            return Ok(plan);
        }
        Ok(plan)
    }

    /// Executes an already-optimized plan.
    pub fn execute_plan(&self, plan: &LogicalPlan) -> Result<Table> {
        let governor = self.statement_governor(None);
        self.execute_plan_spanned(plan, obs::SpanId::NONE, &governor)
    }

    /// [`execute_plan`](Self::execute_plan) with operator spans nesting
    /// under `span` (pass [`obs::SpanId::NONE`] to disable tracing).
    fn execute_plan_spanned(
        &self,
        plan: &LogicalPlan,
        span: obs::SpanId,
        governor: &govern::Governor,
    ) -> Result<Table> {
        let exec_config = self.exec_config.read().clone();
        let ctx = ExecContext {
            catalog: &self.catalog,
            udfs: &self.udfs,
            profiler: &self.profiler,
            config: &exec_config,
            tracer: &self.tracer,
            span,
            governor: governor.clone(),
            budget: self.memory_budget.read().clone(),
        };
        exec::execute(plan, &ctx)
    }

    /// The optimized plan for a SELECT statement, as EXPLAIN text.
    pub fn explain(&self, sql: &str) -> Result<String> {
        let stmt = parser::parse_statement(sql)?;
        let Statement::Query(q) = stmt else {
            return Err(Error::Plan("EXPLAIN supports SELECT statements".into()));
        };
        Ok(self.explain_plan_with_costs(&self.plan_query(&q)?))
    }

    /// Renders a plan with per-node row/cost estimates from the installed
    /// cost model.
    fn explain_plan_with_costs(&self, plan: &LogicalPlan) -> String {
        let model = self.cost_model();
        let ctx = self.cost_ctx();
        fn walk(
            plan: &LogicalPlan,
            depth: usize,
            model: &dyn CostModel,
            ctx: &CostContext<'_>,
            out: &mut String,
        ) {
            let est = model.estimate(plan, ctx);
            // Reuse the single-line rendering of display_indent.
            let line = plan.display_indent().lines().next().unwrap_or_default().to_string();
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "{line}  [rows≈{:.0}, cost≈{:.0}]
",
                est.rows, est.cost
            ));
            for c in plan.children() {
                walk(c, depth + 1, model, ctx, out);
            }
        }
        let mut out = String::new();
        walk(plan, 0, model.as_ref(), &ctx, &mut out);
        out
    }

    /// Executes a statement under a forced trace and renders the span tree
    /// — phases, operators with actual rows/loops/exclusive time/effective
    /// parallelism/bytes-not-materialized, cache events, morsel workers —
    /// as a one-column `plan` table (the `EXPLAIN ANALYZE` statement).
    fn explain_analyze(
        &self,
        stmt: &Statement,
        governor: &govern::Governor,
    ) -> Result<QueryResult> {
        // Forced root: EXPLAIN ANALYZE traces even with the collector off.
        let root = self.tracer.start_root("query");
        let out = self.execute_statement_spanned(stmt, root, governor);
        self.tracer.finish(root);
        let tree = self.tracer.take_tree(root);
        let inner = out?;
        let mut col = Column::empty(crate::value::DataType::Utf8);
        for line in tree.render().lines() {
            col.push(crate::value::Value::Utf8(line.to_string()))?;
        }
        col.push(crate::value::Value::Utf8(format!(
            "Execution: {} rows, time={}",
            inner.rows_affected,
            obs::fmt_ns(inner.elapsed.as_nanos() as u64)
        )))?;
        let table = Table::new(
            Schema::new(vec![Field::new("plan", crate::value::DataType::Utf8)]),
            vec![col],
        )?;
        let rows = table.num_rows();
        let mut result = QueryResult::of(table, rows);
        result.trace = Some(Arc::new(tree));
        Ok(result)
    }

    /// The span collector. Enable it (`db.tracer().enable()`) to trace
    /// every statement and read trees back via [`QueryResult::trace`].
    pub fn tracer(&self) -> &obs::Collector {
        &self.tracer
    }

    /// Replaces the slow-query hook (default: render the span tree to
    /// stderr). Fires for statements slower than
    /// [`ExecConfig::slow_query_threshold`].
    pub fn set_slow_query_hook(&self, hook: SlowQueryHook) {
        *self.slow_query_hook.write() = hook;
    }

    /// A point-in-time metrics registry: per-operator profiler counters,
    /// plan-cache stats, the query-latency histogram and task-pool
    /// scheduler counters — exportable as Prometheus text or JSON.
    pub fn metrics_snapshot(&self) -> obs::Registry {
        let mut reg = obs::Registry::new();
        let mut ops = self.profiler.snapshot();
        ops.sort_by_key(|(kind, _)| kind.label());
        for (kind, s) in ops {
            let labels: &[(&str, &str)] = &[("op", kind.label())];
            reg.counter(
                "minidb_operator_invocations_total",
                "Operator invocations",
                labels,
                s.invocations,
            );
            reg.counter(
                "minidb_operator_time_nanoseconds_total",
                "Operator wall time, children excluded",
                labels,
                s.total.as_nanos() as u64,
            );
            reg.counter(
                "minidb_operator_busy_nanoseconds_total",
                "Summed per-worker busy time",
                labels,
                s.busy.as_nanos() as u64,
            );
            reg.counter("minidb_operator_rows_out_total", "Rows produced", labels, s.rows_out);
            if s.bytes_not_materialized > 0 {
                reg.counter(
                    "minidb_operator_bytes_not_materialized_total",
                    "Intermediate bytes fusion avoided materializing",
                    labels,
                    s.bytes_not_materialized,
                );
            }
        }
        let pc = self.profiler.plan_cache_stats();
        reg.counter("minidb_plan_cache_hits_total", "Plan cache hits", &[], pc.hits);
        reg.counter("minidb_plan_cache_misses_total", "Plan cache misses", &[], pc.misses);
        reg.counter("minidb_plan_cache_evictions_total", "Plan cache evictions", &[], pc.evictions);
        reg.gauge(
            "minidb_plan_cache_entries",
            "Live plan cache entries",
            &[],
            self.plan_cache.len() as f64,
        );
        reg.histogram(
            "minidb_query_latency_seconds",
            "Per-statement wall time",
            &[],
            self.query_latency.snapshot(),
        );
        {
            use std::sync::atomic::Ordering::Relaxed;
            reg.counter(
                "minidb_query_failures_total",
                "Statements that returned an error (any cause)",
                &[],
                self.query_failures.load(Relaxed),
            );
            reg.counter(
                "minidb_query_cancellations_total",
                "Statements aborted by a cancel handle",
                &[],
                self.gov_cancellations.load(Relaxed),
            );
            reg.counter(
                "minidb_query_timeouts_total",
                "Statements aborted by the query timeout",
                &[],
                self.gov_timeouts.load(Relaxed),
            );
            reg.counter(
                "minidb_budget_rejections_total",
                "Statements aborted by the memory budget",
                &[],
                self.gov_budget_rejections.load(Relaxed),
            );
            reg.counter(
                "minidb_worker_panics_total",
                "Statements aborted by a caught worker panic",
                &[],
                self.gov_worker_panics.load(Relaxed),
            );
        }
        if let Some(budget) = self.memory_budget.read().as_ref() {
            reg.gauge(
                "minidb_memory_budget_limit_bytes",
                "Configured operator memory budget",
                &[],
                budget.limit() as f64,
            );
            reg.gauge(
                "minidb_memory_budget_in_use_bytes",
                "Bytes currently reserved against the budget",
                &[],
                budget.in_use() as f64,
            );
            reg.gauge(
                "minidb_memory_budget_peak_bytes",
                "High-water mark of reserved bytes",
                &[],
                budget.peak() as f64,
            );
        }
        let pool = taskpool::stats();
        reg.counter("taskpool_regions_total", "Parallel regions entered", &[], pool.regions);
        reg.counter("taskpool_tasks_total", "Tasks executed", &[], pool.tasks);
        reg.counter(
            "taskpool_busy_nanoseconds_total",
            "Wall time inside task closures",
            &[],
            pool.busy_nanos,
        );
        reg.gauge(
            "taskpool_peak_workers",
            "Largest worker count any region ran with",
            &[],
            pool.peak_workers as f64,
        );
        reg.counter(
            "taskpool_caught_panics_total",
            "Worker panics caught and converted to errors",
            &[],
            pool.caught_panics,
        );
        reg
    }

    /// Cost estimate of a SELECT under the installed cost model.
    pub fn estimate(&self, sql: &str) -> Result<PlanCost> {
        self.estimate_with(sql, self.cost_model().as_ref())
    }

    /// Cost estimate of a SELECT under an arbitrary model (paper Fig. 12
    /// compares the default and customized models on the same plans).
    pub fn estimate_with(&self, sql: &str, model: &dyn CostModel) -> Result<PlanCost> {
        let stmt = parser::parse_statement(sql)?;
        let Statement::Query(q) = stmt else {
            return Err(Error::Plan("cost estimation supports SELECT statements".into()));
        };
        let plan = self.plan_query(&q)?;
        let ctx = self.cost_ctx();
        Ok(model.estimate(&plan, &ctx))
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    fn run_insert(
        &self,
        table_name: &str,
        rows: &[Vec<crate::sql::ast::Expr>],
    ) -> Result<QueryResult> {
        let start = std::time::Instant::now();
        let current = self
            .catalog
            .table(table_name)
            .ok_or_else(|| Error::NotFound(format!("table '{table_name}'")))?;
        let mut new_table = (*current).clone();
        let planner = Planner::new(&self.catalog, &self.udfs, None);
        let eval_ctx = EvalContext { udfs: &self.udfs };
        let empty = Schema::default();
        for row in rows {
            if row.len() != new_table.num_columns() {
                return Err(Error::Plan(format!(
                    "INSERT row has {} values, table '{table_name}' has {} columns",
                    row.len(),
                    new_table.num_columns()
                )));
            }
            let values: Vec<crate::value::Value> = row
                .iter()
                .map(|e| planner.bind_against_table(e, &empty)?.eval_const(&eval_ctx))
                .collect::<Result<_>>()?;
            // Date columns accept string literals; push coerces.
            new_table.push_row(values)?;
        }
        let affected = rows.len();
        self.catalog.replace_table(table_name, new_table)?;
        self.profiler.record(OperatorKind::Insert, start.elapsed(), affected);
        Ok(QueryResult::of(Table::empty(Schema::default()), affected))
    }

    fn run_update(
        &self,
        table_name: &str,
        assignments: &[(String, crate::sql::ast::Expr)],
        predicate: Option<&crate::sql::ast::Expr>,
    ) -> Result<QueryResult> {
        let start = std::time::Instant::now();
        let current = self
            .catalog
            .table(table_name)
            .ok_or_else(|| Error::NotFound(format!("table '{table_name}'")))?;
        let planner = Planner::new(&self.catalog, &self.udfs, None);
        let eval_ctx = EvalContext { udfs: &self.udfs };
        let schema = current.schema().clone();

        let mask: Vec<bool> = match predicate {
            Some(p) => {
                let bound = planner.bind_against_table(p, &schema)?;
                bound.eval(&current, &eval_ctx)?.as_bool_slice()?.to_vec()
            }
            None => vec![true; current.num_rows()],
        };
        let affected = mask.iter().filter(|&&b| b).count();

        let mut new_table = (*current).clone();
        for (col_name, expr) in assignments {
            let idx = schema.index_of(col_name)?;
            let bound = planner.bind_against_table(expr, &schema)?;
            let new_vals = bound.eval(&current, &eval_ctx)?;
            let old = current.column(idx);
            let target = schema.field(idx).data_type;
            let mut rebuilt = Column::empty(target);
            #[allow(clippy::needless_range_loop)] // row indexes three parallel columns
            for row in 0..current.num_rows() {
                let v = if mask[row] { new_vals.value(row) } else { old.value(row) };
                rebuilt.push(v)?;
            }
            new_table.set_column(idx, rebuilt)?;
        }
        self.catalog.replace_table(table_name, new_table)?;
        self.profiler.record(OperatorKind::Update, start.elapsed(), affected);
        Ok(QueryResult::of(Table::empty(Schema::default()), affected))
    }
}

/// A SELECT parsed, planned and optimized once, executable many times.
///
/// Obtained from [`Database::prepare`] / [`Database::prepare_query`]. Each
/// [`run`](PreparedQuery::run) re-reads table contents from the catalog, so
/// data changes between runs are observed; the *plan* (join order,
/// algorithm choice) is frozen at prepare time.
pub struct PreparedQuery<'a> {
    db: &'a Database,
    plan: LogicalPlan,
    /// Created lazily on the first [`cancel_handle`](Self::cancel_handle)
    /// call; when absent, runs fall back to the database session token.
    token: std::sync::OnceLock<govern::CancelToken>,
}

impl PreparedQuery<'_> {
    /// The frozen optimized plan.
    pub fn plan(&self) -> &LogicalPlan {
        &self.plan
    }

    /// A cancel handle scoped to this prepared query: cancelling it aborts
    /// in-flight and subsequent [`run`](Self::run) calls (until
    /// [`reset`](govern::CancelToken::reset)) without touching other
    /// statements on the database.
    pub fn cancel_handle(&self) -> govern::CancelToken {
        self.token.get_or_init(govern::CancelToken::new).clone()
    }

    /// Executes the prepared plan, stamping timing metadata like
    /// [`Database::execute_statement`] (without the parse/plan cost).
    pub fn run(&self) -> Result<QueryResult> {
        let started = std::time::Instant::now();
        let governor = self.db.statement_governor(self.token.get().cloned());
        let root = self.db.query_root();
        let pc_before = self.db.profiler.plan_cache_stats();
        let out = self.db.run_plan_timed_spanned(&self.plan, root, &governor);
        self.db.finalize_query(root, pc_before, started, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{DataType, Value};

    fn db_with_data() -> Database {
        let db = Database::new();
        db.execute("CREATE TABLE fabric (transID Int64, patternID Int64, meter Float64, printdate Date, humidity Float64)")
            .unwrap();
        db.execute(
            "INSERT INTO fabric VALUES \
             (1, 10, 5.0, '2021-01-05', 85.0), \
             (2, 10, 7.5, '2021-01-10', 70.0), \
             (3, 20, 2.5, '2021-02-01', 90.0), \
             (4, 30, 4.0, '2021-01-20', 82.0)",
        )
        .unwrap();
        db.execute("CREATE TABLE video (transID Int64, frame Int64)").unwrap();
        db.execute("INSERT INTO video VALUES (1, 100), (2, 200), (3, 300), (9, 900)").unwrap();
        db
    }

    #[test]
    fn select_filter_on_dates() {
        let db = db_with_data();
        let out = db
            .execute("SELECT transID FROM fabric WHERE printdate > '2021-01-01' and printdate < '2021-1-31'")
            .unwrap();
        assert_eq!(out.table().num_rows(), 3);
    }

    #[test]
    fn implicit_join_with_where() {
        let db = db_with_data();
        let out = db
            .execute("SELECT f.transID, v.frame FROM fabric f, video v WHERE f.transID = v.transID")
            .unwrap();
        assert_eq!(out.table().num_rows(), 3);
    }

    #[test]
    fn explicit_inner_join() {
        let db = db_with_data();
        let out = db
            .execute(
                "SELECT f.transID FROM fabric f INNER JOIN video v ON f.transID = v.transID \
                 WHERE f.humidity > 80",
            )
            .unwrap();
        assert_eq!(out.table().num_rows(), 2); // trans 1 (85) and 3 (90)
    }

    #[test]
    fn group_by_with_expression_over_aggregates() {
        let db = db_with_data();
        let out = db
            .execute(
                "SELECT patternID, sum(meter) / count(*) AS avg_m FROM fabric \
                 GROUP BY patternID ORDER BY patternID",
            )
            .unwrap();
        let t = out.table();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column(0).i64_at(0), 10);
        assert!((t.column(1).f64_at(0) - 6.25).abs() < 1e-9);
    }

    #[test]
    fn create_table_as_and_scalar_subquery() {
        let db = db_with_data();
        db.execute("CREATE TEMP TABLE m AS SELECT meter FROM fabric").unwrap();
        let out = db
            .execute(
                "SELECT meter - (SELECT AVG(meter) FROM m) AS centered FROM m ORDER BY centered",
            )
            .unwrap();
        let t = out.table();
        assert_eq!(t.num_rows(), 4);
        let sum: f64 = (0..4).map(|i| t.column(0).f64_at(i)).sum();
        assert!(sum.abs() < 1e-9, "centered values sum to ~0");
    }

    #[test]
    fn paper_style_create_temp_table_with_paren_query() {
        let db = db_with_data();
        db.execute(
            "CREATE TEMP TABLE agg( SELECT patternID, sum(meter) as total FROM fabric GROUP BY patternID)",
        )
        .unwrap();
        let out = db.execute("SELECT * FROM agg ORDER BY patternID").unwrap();
        assert_eq!(out.table().num_rows(), 3);
    }

    #[test]
    fn update_with_predicate_is_the_relu_idiom() {
        let db = Database::new();
        db.execute("CREATE TABLE fm (id Int64, Value Float64)").unwrap();
        db.execute("INSERT INTO fm VALUES (1, -2.0), (2, 3.0), (3, -0.5)").unwrap();
        let r = db.execute("UPDATE fm SET Value = 0 WHERE Value < 0").unwrap();
        assert_eq!(r.rows_affected(), 2);
        let out = db.execute("SELECT Value FROM fm ORDER BY id").unwrap();
        assert_eq!(out.table().column(0).f64_at(0), 0.0);
        assert_eq!(out.table().column(0).f64_at(1), 3.0);
        assert_eq!(out.table().column(0).f64_at(2), 0.0);
    }

    #[test]
    fn views_are_inlined() {
        let db = db_with_data();
        db.execute("CREATE VIEW heavy AS SELECT transID, meter FROM fabric WHERE meter > 4.0")
            .unwrap();
        let out = db.execute("SELECT count(*) FROM heavy").unwrap();
        assert_eq!(out.table().column(0).i64_at(0), 2);
        // Dropping and re-creating with different predicate changes results.
        db.execute("DROP VIEW heavy").unwrap();
        db.execute("CREATE VIEW heavy AS SELECT transID, meter FROM fabric WHERE meter > 2.0")
            .unwrap();
        let out = db.execute("SELECT count(*) FROM heavy").unwrap();
        assert_eq!(out.table().column(0).i64_at(0), 4);
    }

    #[test]
    fn udf_in_predicate_end_to_end() {
        let db = db_with_data();
        db.register_udf(ScalarUdf::new("is_even", vec![DataType::Int64], DataType::Bool, |args| {
            Ok(Value::Bool(args[0].as_i64()? % 2 == 0))
        }));
        let out = db.execute("SELECT transID FROM fabric WHERE is_even(transID) = TRUE").unwrap();
        assert_eq!(out.table().num_rows(), 2);
    }

    #[test]
    fn derived_table_in_from() {
        let db = db_with_data();
        let out = db
            .execute(
                "SELECT t.patternID FROM (SELECT patternID, sum(meter) s FROM fabric GROUP BY patternID) t \
                 WHERE t.s >= 4.0 ORDER BY t.patternID",
            )
            .unwrap();
        assert_eq!(out.table().num_rows(), 2); // patterns 10 (12.5m) and 30 (4.0m)
    }

    #[test]
    fn having_filters_groups() {
        let db = db_with_data();
        let out = db
            .execute("SELECT patternID FROM fabric GROUP BY patternID HAVING count(*) > 1")
            .unwrap();
        assert_eq!(out.table().num_rows(), 1);
        assert_eq!(out.table().column(0).i64_at(0), 10);
    }

    #[test]
    fn limit_and_order() {
        let db = db_with_data();
        let out = db.execute("SELECT transID FROM fabric ORDER BY meter DESC LIMIT 2").unwrap();
        assert_eq!(out.table().num_rows(), 2);
        assert_eq!(out.table().column(0).i64_at(0), 2); // meter 7.5
    }

    #[test]
    fn errors_are_reported_cleanly() {
        let db = db_with_data();
        assert!(matches!(db.execute("SELECT missing FROM fabric"), Err(Error::NotFound(_))));
        assert!(matches!(db.execute("SELECT * FROM ghost"), Err(Error::NotFound(_))));
        assert!(db.execute("SELECT sum(meter), transID FROM fabric").is_err());
        assert!(matches!(db.execute("SELEC 1"), Err(Error::Parse { .. })));
    }

    #[test]
    fn planner_rejects_malformed_queries() {
        let db = db_with_data();
        // Duplicate table binding.
        assert!(db.execute("SELECT * FROM fabric f, video f").is_err());
        // Aggregate in WHERE.
        assert!(db.execute("SELECT transID FROM fabric WHERE sum(meter) > 1").is_err());
        // Wildcard with GROUP BY.
        assert!(db.execute("SELECT * FROM fabric GROUP BY patternID").is_err());
        // Non-grouped column in an aggregate query.
        assert!(db.execute("SELECT transID, sum(meter) FROM fabric GROUP BY patternID").is_err());
        // Correlated subqueries are unsupported (outer column unresolvable).
        assert!(db
            .execute("SELECT transID FROM fabric f WHERE meter > (SELECT AVG(frame) FROM video v WHERE v.transID = f.transID)")
            .is_err());
    }

    #[test]
    fn scalar_subquery_shape_is_validated() {
        let db = db_with_data();
        // More than one row.
        assert!(matches!(
            db.execute("SELECT meter - (SELECT meter FROM fabric) AS d FROM fabric"),
            Err(Error::Subquery(_))
        ));
        // More than one column.
        assert!(matches!(
            db.execute(
                "SELECT meter - (SELECT meter, transID FROM fabric LIMIT 1) AS d FROM fabric"
            ),
            Err(Error::Subquery(_))
        ));
    }

    #[test]
    fn count_distinct() {
        let db = db_with_data();
        let out = db.execute("SELECT count(DISTINCT patternID) FROM fabric").unwrap();
        assert_eq!(out.table().column(0).i64_at(0), 3);
    }

    #[test]
    fn explain_and_estimate() {
        let db = db_with_data();
        let plan = db
            .explain("SELECT f.transID FROM fabric f, video v WHERE f.transID = v.transID and f.meter > 3.0")
            .unwrap();
        assert!(plan.contains("Join"), "{plan}");
        let est = db
            .estimate("SELECT f.transID FROM fabric f, video v WHERE f.transID = v.transID")
            .unwrap();
        assert!(est.rows >= 1.0);
        assert!(est.cost > 0.0);
    }

    #[test]
    fn select_distinct_deduplicates() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (a Int64, b Int64); \
             INSERT INTO t VALUES (1, 10), (1, 10), (2, 20), (1, 30);",
        )
        .unwrap();
        let out = db.execute("SELECT DISTINCT a, b FROM t ORDER BY a, b").unwrap();
        assert_eq!(out.table().num_rows(), 3);
        let out = db.execute("SELECT DISTINCT a FROM t ORDER BY a").unwrap();
        assert_eq!(out.table().num_rows(), 2);
    }

    #[test]
    fn in_and_between_predicates() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (v Int64); INSERT INTO t VALUES (1), (2), (3), (4), (5);",
        )
        .unwrap();
        let c = |sql: &str| db.execute(sql).unwrap().table().column(0).i64_at(0);
        assert_eq!(c("SELECT count(*) FROM t WHERE v IN (2, 4, 9)"), 2);
        assert_eq!(c("SELECT count(*) FROM t WHERE v NOT IN (2, 4)"), 3);
        assert_eq!(c("SELECT count(*) FROM t WHERE v BETWEEN 2 AND 4"), 3);
        assert_eq!(c("SELECT count(*) FROM t WHERE v NOT BETWEEN 2 AND 4"), 2);
        // BETWEEN binds tighter than AND.
        assert_eq!(c("SELECT count(*) FROM t WHERE v BETWEEN 1 AND 3 AND v != 2"), 2);
    }

    #[test]
    fn cross_join_without_equi_keys() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE a (x Int64); CREATE TABLE b (y Int64); \
             INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (10), (20), (30);",
        )
        .unwrap();
        let out = db.execute("SELECT a.x, b.y FROM a, b WHERE a.x * 10 < b.y").unwrap();
        // pairs: (1,20),(1,30),(2,30)
        assert_eq!(out.table().num_rows(), 3);
    }

    #[test]
    fn multi_key_sort_orders_lexicographically() {
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE t (a Int64, b Int64); \
             INSERT INTO t VALUES (2, 1), (1, 2), (1, 1), (2, 0);",
        )
        .unwrap();
        let out = db.execute("SELECT a, b FROM t ORDER BY a ASC, b DESC").unwrap();
        let rows: Vec<(i64, i64)> = (0..4)
            .map(|r| (out.table().column(0).i64_at(r), out.table().column(1).i64_at(r)))
            .collect();
        assert_eq!(rows, vec![(1, 2), (1, 1), (2, 1), (2, 0)]);
    }

    #[test]
    fn mixed_type_join_keys_still_match() {
        // Int64 join key meeting a Float64 key with integral values.
        let db = Database::new();
        db.execute_script(
            "CREATE TABLE a (k Int64); CREATE TABLE b (k Float64); \
             INSERT INTO a VALUES (1), (2), (3); INSERT INTO b VALUES (2.0), (3.0), (4.5);",
        )
        .unwrap();
        let out = db.execute("SELECT a.k FROM a, b WHERE a.k = b.k ORDER BY a.k").unwrap();
        assert_eq!(out.table().num_rows(), 2);
        assert_eq!(out.table().column(0).i64_at(0), 2);
        assert_eq!(out.table().column(0).i64_at(1), 3);
    }

    #[test]
    fn explain_statement_returns_plan_rows() {
        let db = db_with_data();
        let out = db
            .execute("EXPLAIN SELECT f.transID FROM fabric f, video v WHERE f.transID = v.transID")
            .unwrap();
        let rendered: Vec<String> = (0..out.table().num_rows())
            .map(|r| out.table().column(0).value(r).to_string())
            .collect();
        assert!(rendered.iter().any(|l| l.contains("Join")), "{rendered:?}");
    }

    #[test]
    fn create_index_statement_registers_an_index() {
        let db = db_with_data();
        db.execute("CREATE INDEX idx_trans ON fabric (transID)").unwrap();
        assert!(db.catalog().index("fabric", "transID").is_some());
        // Anonymous form too.
        db.execute("CREATE INDEX ON video (transID)").unwrap();
        assert!(db.catalog().index("video", "transID").is_some());
    }

    #[test]
    fn normalize_sql_collapses_whitespace_outside_quotes() {
        assert_eq!(normalize_sql("  SELECT  1\n\t FROM   t "), "SELECT 1 FROM t");
        assert_eq!(normalize_sql("SELECT 'a  b' FROM t"), "SELECT 'a  b' FROM t");
        assert_ne!(normalize_sql("SELECT 'x y'"), normalize_sql("SELECT 'x  y'"));
    }

    #[test]
    fn plan_cache_hits_on_repeat_and_formatting_variants() {
        let db = db_with_data();
        let sql = "SELECT transID FROM fabric WHERE meter > 3.0";
        let cold = db.execute(sql).unwrap();
        assert!(!cold.plan_cache_hit());
        let warm = db.execute(sql).unwrap();
        assert!(warm.plan_cache_hit());
        assert_eq!(warm.table().num_rows(), cold.table().num_rows());
        // Whitespace variants share the entry.
        let variant = db.execute("SELECT transID\n  FROM fabric   WHERE meter > 3.0").unwrap();
        assert!(variant.plan_cache_hit());
        let s = db.profiler().plan_cache_stats();
        assert_eq!((s.hits, s.misses), (2, 1));
    }

    #[test]
    fn plan_cache_invalidates_on_insert_update_and_ddl() {
        let db = db_with_data();
        let sql = "SELECT count(*) FROM fabric WHERE meter > 3.0";
        assert_eq!(db.execute(sql).unwrap().table().column(0).i64_at(0), 3);
        assert!(db.execute(sql).unwrap().plan_cache_hit());
        // INSERT: next run must not be a (stale) hit and must see new data.
        db.execute("INSERT INTO fabric VALUES (5, 40, 9.0, '2021-03-01', 50.0)").unwrap();
        let r = db.execute(sql).unwrap();
        assert!(!r.plan_cache_hit());
        assert_eq!(r.table().column(0).i64_at(0), 4);
        assert!(db.execute(sql).unwrap().plan_cache_hit());
        // UPDATE invalidates too.
        db.execute("UPDATE fabric SET meter = 1.0 WHERE transID = 5").unwrap();
        let r = db.execute(sql).unwrap();
        assert!(!r.plan_cache_hit());
        assert_eq!(r.table().column(0).i64_at(0), 3);
        // DDL on an unrelated table still invalidates (epoch is global).
        db.execute("CREATE TABLE other (x Int64)").unwrap();
        assert!(!db.execute(sql).unwrap().plan_cache_hit());
    }

    #[test]
    fn plan_cache_respects_view_redefinition() {
        // views_are_inlined semantics must survive caching: the view body
        // is frozen into the plan, so redefining it must invalidate.
        let db = db_with_data();
        db.execute("CREATE VIEW heavy AS SELECT meter FROM fabric WHERE meter > 4.0").unwrap();
        let sql = "SELECT count(*) FROM heavy";
        assert_eq!(db.execute(sql).unwrap().table().column(0).i64_at(0), 2);
        db.execute("DROP VIEW heavy").unwrap();
        db.execute("CREATE VIEW heavy AS SELECT meter FROM fabric WHERE meter > 2.0").unwrap();
        let r = db.execute(sql).unwrap();
        assert!(!r.plan_cache_hit());
        assert_eq!(r.table().column(0).i64_at(0), 4);
    }

    #[test]
    fn plan_cache_invalidates_on_udf_and_config_swaps() {
        let db = db_with_data();
        db.register_udf(ScalarUdf::new("thr", vec![DataType::Float64], DataType::Bool, |a| {
            Ok(Value::Bool(a[0].as_f64()? > 3.0))
        }));
        let sql = "SELECT count(*) FROM fabric WHERE thr(meter) = TRUE";
        assert_eq!(db.execute(sql).unwrap().table().column(0).i64_at(0), 3);
        assert!(db.execute(sql).unwrap().plan_cache_hit());
        // Re-registering the UDF with different behavior must invalidate.
        db.register_udf(ScalarUdf::new("thr", vec![DataType::Float64], DataType::Bool, |a| {
            Ok(Value::Bool(a[0].as_f64()? > 100.0))
        }));
        let r = db.execute(sql).unwrap();
        assert!(!r.plan_cache_hit());
        assert_eq!(r.table().column(0).i64_at(0), 0);
        // Config swaps invalidate as well.
        assert!(db.execute(sql).unwrap().plan_cache_hit());
        db.swap_optimizer_config(db.optimizer_config());
        assert!(!db.execute(sql).unwrap().plan_cache_hit());
    }

    #[test]
    fn plan_cache_evicts_lru_under_tiny_capacity() {
        let db = Database::builder().plan_cache_capacity(2).build();
        db.execute_script("CREATE TABLE t (a Int64); INSERT INTO t VALUES (1), (2);").unwrap();
        let q1 = "SELECT a FROM t";
        let q2 = "SELECT a FROM t WHERE a > 1";
        let q3 = "SELECT count(*) FROM t";
        db.execute(q1).unwrap();
        db.execute(q2).unwrap();
        assert_eq!(db.plan_cache_len(), 2);
        // q3 evicts the coldest (q1).
        db.execute(q3).unwrap();
        assert_eq!(db.plan_cache_len(), 2);
        assert!(!db.execute(q1).unwrap().plan_cache_hit(), "q1 was evicted");
        assert!(db.execute(q3).unwrap().plan_cache_hit());
    }

    #[test]
    fn plan_cache_capacity_zero_disables() {
        let db = Database::builder().plan_cache_capacity(0).build();
        db.execute("CREATE TABLE t (a Int64)").unwrap();
        db.execute("SELECT a FROM t").unwrap();
        let r = db.execute("SELECT a FROM t").unwrap();
        assert!(!r.plan_cache_hit());
        assert_eq!(db.plan_cache_len(), 0);
        let s = db.profiler().plan_cache_stats();
        assert_eq!((s.hits, s.misses), (0, 0), "disabled cache records nothing");
    }

    #[test]
    fn prepared_queries_observe_data_changes() {
        let db = db_with_data();
        let prepared = db.prepare("SELECT count(*) FROM video").unwrap();
        assert_eq!(prepared.run().unwrap().table().column(0).i64_at(0), 4);
        db.execute("INSERT INTO video VALUES (10, 1000)").unwrap();
        assert_eq!(prepared.run().unwrap().table().column(0).i64_at(0), 5);
        assert!(!prepared.run().unwrap().plan_cache_hit());
    }

    #[test]
    fn multi_statement_script_runs_in_order() {
        let db = Database::new();
        let out = db
            .execute_script(
                "CREATE TABLE t (a Int64); INSERT INTO t VALUES (1), (2), (3); \
                 SELECT sum(a) FROM t;",
            )
            .unwrap();
        assert_eq!(out.table().column(0).i64_at(0), 6);
    }
}
