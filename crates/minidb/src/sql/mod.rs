//! SQL front-end: lexer, abstract syntax tree and recursive-descent parser.
//!
//! The dialect covers everything the paper's collaborative queries use and
//! everything the DL2SQL compiler emits — see the crate docs for the list.

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::{
    BinOp, Expr, FromItem, Join, Literal, ObjectKind, OrderByItem, Query, SelectItem, Statement,
    TableFactor, UnaryOp,
};
pub use parser::{parse_expression, parse_statement, parse_statements};
pub use printer::{expr_to_sql, query_to_sql, statement_to_sql};
