//! Abstract syntax tree for the supported SQL dialect.

use crate::value::DataType;

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A `SELECT` query.
    Query(Query),
    /// `CREATE [TEMP] TABLE name (col type, ...)` or
    /// `CREATE [TEMP] TABLE name AS <query>`.
    CreateTable {
        name: String,
        temp: bool,
        if_not_exists: bool,
        columns: Vec<(String, DataType)>,
        as_query: Option<Query>,
    },
    /// `CREATE VIEW name AS <query>`.
    CreateView { name: String, query: Query },
    /// `INSERT INTO name VALUES (...), (...)`.
    Insert { table: String, rows: Vec<Vec<Expr>> },
    /// `INSERT INTO name SELECT ...`.
    InsertSelect { table: String, query: Query },
    /// `UPDATE name SET col = expr [, ...] [WHERE pred]`.
    Update { table: String, assignments: Vec<(String, Expr)>, predicate: Option<Expr> },
    /// `DROP TABLE|VIEW [IF EXISTS] name`.
    Drop { kind: ObjectKind, name: String, if_exists: bool },
    /// `CREATE INDEX ON table (column)` — builds a hash index (the paper
    /// indexes MatrixID/OrderID/KernelID).
    CreateIndex { table: String, column: String },
    /// `EXPLAIN <select>` — returns the optimized plan as text.
    Explain(Query),
    /// `EXPLAIN ANALYZE <statement>` — executes the statement under a
    /// forced trace and returns its annotated span tree as text. Any
    /// statement kind is allowed (the DL2SQL scripts are CREATE TEMP
    /// TABLE / UPDATE heavy).
    ExplainAnalyze(Box<Statement>),
}

/// What a DROP statement targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjectKind {
    Table,
    View,
}

/// A `SELECT` query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// Select-list items.
    pub projections: Vec<SelectItem>,
    /// Comma-separated FROM items, each with optional JOIN chains.
    pub from: Vec<FromItem>,
    /// WHERE predicate.
    pub predicate: Option<Expr>,
    /// GROUP BY expressions.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// One select-list entry.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// `expr [AS alias]`.
    Expr { expr: Expr, alias: Option<String> },
}

/// One comma-separated FROM entry with its JOIN chain.
#[derive(Debug, Clone, PartialEq)]
pub struct FromItem {
    pub factor: TableFactor,
    pub joins: Vec<Join>,
}

/// An explicit `[INNER] JOIN factor ON expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    pub factor: TableFactor,
    pub on: Expr,
}

/// A table reference in FROM.
#[derive(Debug, Clone, PartialEq)]
pub enum TableFactor {
    /// A named table or view, with an optional alias.
    Named { name: String, alias: Option<String> },
    /// A parenthesized derived table with an alias.
    Derived { query: Box<Query>, alias: String },
}

impl TableFactor {
    /// The name this factor binds in the query's namespace.
    pub fn binding_name(&self) -> &str {
        match self {
            TableFactor::Named { name, alias } => alias.as_deref().unwrap_or(name),
            TableFactor::Derived { alias, .. } => alias,
        }
    }
}

/// `expr [ASC | DESC]`.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    pub expr: Expr,
    pub ascending: bool,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// `name` or `qualifier.name`.
    Column { qualifier: Option<String>, name: String },
    /// A literal.
    Literal(Literal),
    /// Unary operator application.
    Unary { op: UnaryOp, expr: Box<Expr> },
    /// Binary operator application.
    Binary { left: Box<Expr>, op: BinOp, right: Box<Expr> },
    /// Function call: scalar built-in, aggregate, or UDF. `distinct` and
    /// `star` cover `COUNT(DISTINCT x)` / `COUNT(*)`.
    Function { name: String, args: Vec<Expr>, star: bool, distinct: bool },
    /// A parenthesized scalar subquery.
    Subquery(Box<Query>),
}

/// A literal value.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Or,
    And,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column { qualifier: None, name: name.to_string() }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qcol(qualifier: &str, name: &str) -> Expr {
        Expr::Column { qualifier: Some(qualifier.to_string()), name: name.to_string() }
    }

    /// Builds `left op right`.
    pub fn binary(left: Expr, op: BinOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }

    /// Splits a conjunctive predicate into its AND-ed conjuncts.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::Binary { left, op: BinOp::And, right } => {
                let mut out = left.conjuncts();
                out.extend(right.conjuncts());
                out
            }
            other => vec![other],
        }
    }

    /// Rebuilds a predicate from conjuncts (empty input yields `TRUE`).
    pub fn conjoin(exprs: Vec<Expr>) -> Expr {
        exprs
            .into_iter()
            .reduce(|a, b| Expr::binary(a, BinOp::And, b))
            .unwrap_or(Expr::Literal(Literal::Bool(true)))
    }

    /// Walks the expression tree, calling `f` on every node.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } => expr.visit(f),
            Expr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Column { .. } | Expr::Literal(_) | Expr::Subquery(_) => {}
        }
    }

    /// Whether any node satisfies `pred`.
    pub fn any(&self, pred: &impl Fn(&Expr) -> bool) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if pred(e) {
                found = true;
            }
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let e = Expr::binary(
            Expr::binary(Expr::col("a"), BinOp::And, Expr::col("b")),
            BinOp::And,
            Expr::col("c"),
        );
        assert_eq!(e.conjuncts().len(), 3);
        // OR is not split.
        let o = Expr::binary(Expr::col("a"), BinOp::Or, Expr::col("b"));
        assert_eq!(o.conjuncts().len(), 1);
    }

    #[test]
    fn conjoin_inverts_conjuncts() {
        let parts = vec![Expr::col("a"), Expr::col("b")];
        let e = Expr::conjoin(parts);
        assert_eq!(e.conjuncts().len(), 2);
        assert_eq!(Expr::conjoin(vec![]), Expr::Literal(Literal::Bool(true)));
    }

    #[test]
    fn any_finds_functions() {
        let e = Expr::binary(
            Expr::Function {
                name: "f".into(),
                args: vec![Expr::col("x")],
                star: false,
                distinct: false,
            },
            BinOp::Eq,
            Expr::Literal(Literal::Int(1)),
        );
        assert!(e.any(&|n| matches!(n, Expr::Function { .. })));
        assert!(!Expr::col("x").any(&|n| matches!(n, Expr::Function { .. })));
    }

    #[test]
    fn binding_names() {
        let named = TableFactor::Named { name: "fabric".into(), alias: Some("F".into()) };
        assert_eq!(named.binding_name(), "F");
        let bare = TableFactor::Named { name: "fabric".into(), alias: None };
        assert_eq!(bare.binding_name(), "fabric");
    }
}
