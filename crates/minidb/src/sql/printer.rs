//! SQL pretty-printer: renders an AST back to parseable SQL text.
//!
//! Used for logging/debugging generated statements, and paired with the
//! parser in a round-trip property test (print → parse → identical AST).

use crate::sql::ast::*;

/// Renders a statement as SQL.
pub fn statement_to_sql(stmt: &Statement) -> String {
    match stmt {
        Statement::Query(q) => query_to_sql(q),
        Statement::CreateTable { name, temp, if_not_exists, columns, as_query } => {
            let temp_kw = if *temp { "TEMP " } else { "" };
            let ine = if *if_not_exists { "IF NOT EXISTS " } else { "" };
            match as_query {
                Some(q) => format!("CREATE {temp_kw}TABLE {ine}{name} AS {}", query_to_sql(q)),
                None => {
                    let cols: Vec<String> =
                        columns.iter().map(|(n, t)| format!("{n} {t}")).collect();
                    format!("CREATE {temp_kw}TABLE {ine}{name} ({})", cols.join(", "))
                }
            }
        }
        Statement::CreateView { name, query } => {
            format!("CREATE VIEW {name} AS {}", query_to_sql(query))
        }
        Statement::Insert { table, rows } => {
            let rendered: Vec<String> = rows
                .iter()
                .map(|r| {
                    let vals: Vec<String> = r.iter().map(expr_to_sql).collect();
                    format!("({})", vals.join(", "))
                })
                .collect();
            format!("INSERT INTO {table} VALUES {}", rendered.join(", "))
        }
        Statement::InsertSelect { table, query } => {
            format!("INSERT INTO {table} {}", query_to_sql(query))
        }
        Statement::Update { table, assignments, predicate } => {
            let sets: Vec<String> =
                assignments.iter().map(|(c, e)| format!("{c} = {}", expr_to_sql(e))).collect();
            let mut out = format!("UPDATE {table} SET {}", sets.join(", "));
            if let Some(p) = predicate {
                out.push_str(&format!(" WHERE {}", expr_to_sql(p)));
            }
            out
        }
        Statement::Drop { kind, name, if_exists } => {
            let kw = match kind {
                ObjectKind::Table => "TABLE",
                ObjectKind::View => "VIEW",
            };
            let ie = if *if_exists { "IF EXISTS " } else { "" };
            format!("DROP {kw} {ie}{name}")
        }
        Statement::CreateIndex { table, column } => {
            format!("CREATE INDEX ON {table} ({column})")
        }
        Statement::Explain(q) => format!("EXPLAIN {}", query_to_sql(q)),
        Statement::ExplainAnalyze(inner) => {
            format!("EXPLAIN ANALYZE {}", statement_to_sql(inner))
        }
    }
}

/// Renders a query as SQL.
pub fn query_to_sql(q: &Query) -> String {
    let mut out = String::from("SELECT ");
    if q.distinct {
        out.push_str("DISTINCT ");
    }
    let items: Vec<String> = q
        .projections
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{} AS {a}", expr_to_sql(expr)),
                None => expr_to_sql(expr),
            },
        })
        .collect();
    out.push_str(&items.join(", "));
    if !q.from.is_empty() {
        out.push_str(" FROM ");
        let froms: Vec<String> = q
            .from
            .iter()
            .map(|item| {
                let mut s = factor_to_sql(&item.factor);
                for j in &item.joins {
                    s.push_str(&format!(
                        " INNER JOIN {} ON {}",
                        factor_to_sql(&j.factor),
                        expr_to_sql(&j.on)
                    ));
                }
                s
            })
            .collect();
        out.push_str(&froms.join(", "));
    }
    if let Some(p) = &q.predicate {
        out.push_str(&format!(" WHERE {}", expr_to_sql(p)));
    }
    if !q.group_by.is_empty() {
        let keys: Vec<String> = q.group_by.iter().map(expr_to_sql).collect();
        out.push_str(&format!(" GROUP BY {}", keys.join(", ")));
    }
    if let Some(h) = &q.having {
        out.push_str(&format!(" HAVING {}", expr_to_sql(h)));
    }
    if !q.order_by.is_empty() {
        let keys: Vec<String> = q
            .order_by
            .iter()
            .map(|ob| {
                format!("{} {}", expr_to_sql(&ob.expr), if ob.ascending { "ASC" } else { "DESC" })
            })
            .collect();
        out.push_str(&format!(" ORDER BY {}", keys.join(", ")));
    }
    if let Some(n) = q.limit {
        out.push_str(&format!(" LIMIT {n}"));
    }
    out
}

fn factor_to_sql(f: &TableFactor) -> String {
    match f {
        TableFactor::Named { name, alias } => match alias {
            Some(a) => format!("{name} AS {a}"),
            None => name.clone(),
        },
        TableFactor::Derived { query, alias } => {
            format!("({}) AS {alias}", query_to_sql(query))
        }
    }
}

/// Renders an expression as SQL (fully parenthesized where precedence
/// could matter).
pub fn expr_to_sql(e: &Expr) -> String {
    match e {
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => format!("{q}.{name}"),
            None => name.clone(),
        },
        Expr::Literal(Literal::Int(v)) => v.to_string(),
        Expr::Literal(Literal::Float(v)) => {
            // Keep the float-ness of round numbers ("2.0", not "2").
            if v.fract() == 0.0 && v.is_finite() {
                format!("{v:.1}")
            } else {
                v.to_string()
            }
        }
        Expr::Literal(Literal::Str(s)) => format!("'{}'", s.replace('\'', "''")),
        Expr::Literal(Literal::Bool(b)) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => format!("(-{})", expr_to_sql(expr)),
            UnaryOp::Not => format!("(NOT {})", expr_to_sql(expr)),
        },
        Expr::Binary { left, op, right } => {
            let sym = match op {
                BinOp::Or => "OR",
                BinOp::And => "AND",
                BinOp::Eq => "=",
                BinOp::NotEq => "!=",
                BinOp::Lt => "<",
                BinOp::LtEq => "<=",
                BinOp::Gt => ">",
                BinOp::GtEq => ">=",
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Mod => "%",
            };
            format!("({} {sym} {})", expr_to_sql(left), expr_to_sql(right))
        }
        Expr::Function { name, args, star, distinct } => {
            if *star {
                return format!("{name}(*)");
            }
            let rendered: Vec<String> = args.iter().map(expr_to_sql).collect();
            let d = if *distinct { "DISTINCT " } else { "" };
            format!("{name}({d}{})", rendered.join(", "))
        }
        Expr::Subquery(q) => format!("({})", query_to_sql(q)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sql::parser::parse_statement;

    fn roundtrip(sql: &str) {
        let first = parse_statement(sql).unwrap();
        let printed = statement_to_sql(&first);
        let second = parse_statement(&printed)
            .unwrap_or_else(|e| panic!("printed SQL fails to parse: {printed}\n{e}"));
        assert_eq!(first, second, "roundtrip changed the AST:\n{printed}");
    }

    #[test]
    fn paper_queries_roundtrip() {
        roundtrip(
            "SELECT sum(meter) FROM FABRIC F, Video V \
             WHERE F.printdate > '2021-01-01' and F.printdate < '2021-1-31' \
             and nUDF_classify(V.keyframe) = 'Floral Pattern'",
        );
        roundtrip(
            "SELECT patternID, count(nUDF_detect(V.keyframe) = TRUE) / sum(meter) AS rate \
             FROM FABRIC F INNER JOIN Video V ON F.transID = V.transID \
             GROUP BY patternID ORDER BY patternID ASC LIMIT 5",
        );
        roundtrip(
            "CREATE TEMP TABLE t AS SELECT MatrixID, SUM(a.Value * b.Value) AS Value \
                   FROM fm a, kernel b WHERE a.OrderID = b.OrderID GROUP BY MatrixID",
        );
        roundtrip("UPDATE cb_output SET Value = 0 WHERE Value < 0");
        roundtrip("INSERT INTO t VALUES (1, 'x''y'), (2, 'z')");
        roundtrip("DROP TABLE IF EXISTS tmp");
        roundtrip("CREATE INDEX ON fm (OrderID)");
        roundtrip("EXPLAIN SELECT a FROM t WHERE a IN (1, 2, 3)");
        roundtrip("SELECT DISTINCT a, b FROM t WHERE a BETWEEN 1 AND 5");
    }

    #[test]
    fn scalar_subquery_roundtrips() {
        roundtrip(
            "SELECT (Value - (SELECT AVG(Value) FROM t)) / ((SELECT stddevSamp(Value) FROM t) + 0.00005) AS v FROM t",
        );
    }
}
