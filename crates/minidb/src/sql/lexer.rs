//! Hand-written SQL tokenizer.

use crate::error::{Error, Result};

/// A lexical token with its starting byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds. Keywords are not distinguished here — the parser matches
/// identifiers case-insensitively, which keeps the keyword set open-ended.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (case preserved).
    Ident(String),
    /// Numeric literal, unparsed text.
    Number(String),
    /// Single-quoted string literal with `''` escapes resolved.
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
}

/// Tokenizes `sql`, skipping whitespace and `--` line comments.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let offset = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: TokenKind::Dot, offset });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, offset });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, offset });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, offset });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, offset });
                i += 1;
            }
            '%' => {
                tokens.push(Token { kind: TokenKind::Percent, offset });
                i += 1;
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, offset });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset });
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                tokens.push(Token { kind: TokenKind::NotEq, offset });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::LtEq, offset });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::NotEq, offset });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, offset });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::GtEq, offset });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset });
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(Error::Parse {
                            message: "unterminated string literal".into(),
                            offset,
                        });
                    }
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            s.push('\'');
                            i += 2;
                        } else {
                            i += 1;
                            break;
                        }
                    } else {
                        s.push(bytes[i] as char);
                        i += 1;
                    }
                }
                tokens.push(Token { kind: TokenKind::Str(s), offset });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    // Stop at "1." followed by a non-digit (e.g. "1..2" never
                    // appears in this dialect, but "t1.c" must not eat the dot).
                    if bytes[i] == b'.' && !bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    i += 1;
                }
                // Exponent suffix.
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                tokens.push(Token { kind: TokenKind::Number(sql[start..i].to_string()), offset });
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token { kind: TokenKind::Ident(sql[start..i].to_string()), offset });
            }
            other => {
                return Err(Error::Parse {
                    message: format!("unexpected character '{other}'"),
                    offset,
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_a_paper_query_fragment() {
        let ks = kinds("SELECT sum(meter) FROM FABRIC F WHERE F.printdate > '2021-1-31'");
        assert!(ks.contains(&TokenKind::Ident("SELECT".into())));
        assert!(ks.contains(&TokenKind::Str("2021-1-31".into())));
        assert!(ks.contains(&TokenKind::Gt));
        assert!(ks.contains(&TokenKind::Dot));
    }

    #[test]
    fn numbers_including_floats_and_exponents() {
        assert_eq!(
            kinds("1 2.5 0.00005 1e3 1.5e-2"),
            vec![
                TokenKind::Number("1".into()),
                TokenKind::Number("2.5".into()),
                TokenKind::Number("0.00005".into()),
                TokenKind::Number("1e3".into()),
                TokenKind::Number("1.5e-2".into()),
            ]
        );
    }

    #[test]
    fn qualified_column_is_three_tokens() {
        assert_eq!(
            kinds("t1.c"),
            vec![TokenKind::Ident("t1".into()), TokenKind::Dot, TokenKind::Ident("c".into()),]
        );
    }

    #[test]
    fn comparison_operator_variants() {
        assert_eq!(kinds("a != b"), kinds("a <> b"));
        assert_eq!(kinds("<=")[0], TokenKind::LtEq);
        assert_eq!(kinds(">=")[0], TokenKind::GtEq);
    }

    #[test]
    fn string_escapes_and_errors() {
        assert_eq!(kinds("'it''s'"), vec![TokenKind::Str("it's".into())]);
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("SELECT @").is_err());
    }

    #[test]
    fn line_comments_are_skipped() {
        assert_eq!(
            kinds("1 -- comment\n2"),
            vec![TokenKind::Number("1".into()), TokenKind::Number("2".into())]
        );
    }
}
