//! Recursive-descent parser.

use crate::error::{Error, Result};
use crate::sql::ast::*;
use crate::sql::lexer::{tokenize, Token, TokenKind};
use crate::value::DataType;

/// Keywords that terminate an implicit table alias (`FROM t A INNER JOIN…`).
const RESERVED_AFTER_TABLE: &[&str] = &[
    "inner", "join", "on", "where", "group", "order", "having", "limit", "as", "set", "left",
    "right", "cross", "union",
];

/// Parses a single SQL statement.
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let mut p = Parser::new(sql)?;
    let stmt = p.statement()?;
    p.skip_semicolons();
    p.expect_end()?;
    Ok(stmt)
}

/// Parses a semicolon-separated script into statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(sql)?;
    let mut out = Vec::new();
    p.skip_semicolons();
    while !p.at_end() {
        out.push(p.statement()?);
        p.skip_semicolons();
    }
    Ok(out)
}

/// Parses a standalone scalar expression (used by tests and by the DL2SQL
/// compiler's assertions).
pub fn parse_expression(sql: &str) -> Result<Expr> {
    let mut p = Parser::new(sql)?;
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    len: usize,
}

impl Parser {
    fn new(sql: &str) -> Result<Self> {
        let tokens = tokenize(sql)?;
        Ok(Parser { len: sql.len(), tokens, pos: 0 })
    }

    // -- token utilities ---------------------------------------------------

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn offset(&self) -> usize {
        self.tokens.get(self.pos).map_or(self.len, |t| t.offset)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(Error::Parse { message: message.into(), offset: self.offset() })
    }

    fn expect_end(&self) -> Result<()> {
        if self.at_end() {
            Ok(())
        } else {
            self.err("trailing input after statement")
        }
    }

    fn skip_semicolons(&mut self) {
        while matches!(self.peek(), Some(TokenKind::Semicolon)) {
            self.pos += 1;
        }
    }

    /// Peeks whether the current token is the keyword `kw`.
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(TokenKind::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    /// Consumes keyword `kw` if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.err(format!("expected keyword {}", kw.to_uppercase()))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            self.err(format!("expected {kind:?}, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(TokenKind::Ident(s)) => {
                let s = s.clone();
                self.pos += 1;
                Ok(s)
            }
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    // -- statements --------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.at_kw("select") {
            return Ok(Statement::Query(self.query()?));
        }
        if self.at_kw("create") {
            return self.create();
        }
        if self.at_kw("insert") {
            return self.insert();
        }
        if self.at_kw("update") {
            return self.update();
        }
        if self.at_kw("drop") {
            return self.drop();
        }
        if self.eat_kw("explain") {
            if self.eat_kw("analyze") {
                let inner = self.statement()?;
                return Ok(Statement::ExplainAnalyze(Box::new(inner)));
            }
            let q = self.query()?;
            return Ok(Statement::Explain(q));
        }
        self.err("expected SELECT, CREATE, INSERT, UPDATE, DROP or EXPLAIN")
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        let temp = self.eat_kw("temp") || self.eat_kw("temporary");
        if self.eat_kw("index") {
            // Optional index name, then ON table (column).
            if !self.at_kw("on") {
                let _name = self.ident()?;
            }
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let column = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Statement::CreateIndex { table, column });
        }
        if self.eat_kw("view") {
            let name = self.ident()?;
            // `AS` is standard; the paper's listings also write
            // `CREATE VIEW name ( SELECT ... )`.
            if self.eat_kw("as") {
                let query = self.maybe_parenthesized_query()?;
                return Ok(Statement::CreateView { name, query });
            }
            self.expect(&TokenKind::LParen)?;
            let query = self.query()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Statement::CreateView { name, query });
        }
        self.expect_kw("table")?;
        let if_not_exists = if self.eat_kw("if") {
            self.expect_kw("not")?;
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        if self.eat_kw("as") {
            let query = self.maybe_parenthesized_query()?;
            return Ok(Statement::CreateTable {
                name,
                temp,
                if_not_exists,
                columns: vec![],
                as_query: Some(query),
            });
        }
        self.expect(&TokenKind::LParen)?;
        // The paper's `CREATE TEMP TABLE t ( SELECT ... )` form.
        if self.at_kw("select") {
            let query = self.query()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Statement::CreateTable {
                name,
                temp,
                if_not_exists,
                columns: vec![],
                as_query: Some(query),
            });
        }
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.ident()?;
            columns.push((col, DataType::parse(&ty)?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable { name, temp, if_not_exists, columns, as_query: None })
    }

    fn maybe_parenthesized_query(&mut self) -> Result<Query> {
        if self.eat(&TokenKind::LParen) {
            let q = self.query()?;
            self.expect(&TokenKind::RParen)?;
            Ok(q)
        } else {
            self.query()
        }
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        if self.at_kw("select") {
            let query = self.query()?;
            return Ok(Statement::InsertSelect { table, query });
        }
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    row.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_kw("update")?;
        let table = self.ident()?;
        self.expect_kw("set")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        Ok(Statement::Update { table, assignments, predicate })
    }

    fn drop(&mut self) -> Result<Statement> {
        self.expect_kw("drop")?;
        let kind = if self.eat_kw("view") {
            ObjectKind::View
        } else {
            self.expect_kw("table")?;
            ObjectKind::Table
        };
        let if_exists = if self.eat_kw("if") {
            self.expect_kw("exists")?;
            true
        } else {
            false
        };
        let name = self.ident()?;
        Ok(Statement::Drop { kind, name, if_exists })
    }

    // -- queries -----------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        let mut projections = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                projections.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw("as") {
                    Some(self.ident()?)
                } else {
                    // Implicit alias: a bare identifier that is not a clause
                    // keyword.
                    match self.peek() {
                        Some(TokenKind::Ident(s)) if !is_clause_keyword(s) => {
                            let a = s.clone();
                            self.pos += 1;
                            Some(a)
                        }
                        _ => None,
                    }
                };
                projections.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }

        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.from_item()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let predicate = if self.eat_kw("where") { Some(self.expr()?) } else { None };

        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };

        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let ascending = if self.eat_kw("desc") {
                    false
                } else {
                    self.eat_kw("asc");
                    true
                };
                order_by.push(OrderByItem { expr, ascending });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.eat_kw("limit") {
            match self.bump() {
                Some(TokenKind::Number(n)) => Some(n.parse::<u64>().map_err(|_| Error::Parse {
                    message: format!("bad LIMIT '{n}'"),
                    offset: self.offset(),
                })?),
                _ => return self.err("expected a number after LIMIT"),
            }
        } else {
            None
        };

        Ok(Query { distinct, projections, from, predicate, group_by, having, order_by, limit })
    }

    #[allow(clippy::wrong_self_convention)] // parses a FROM item; not a conversion
    fn from_item(&mut self) -> Result<FromItem> {
        let factor = self.table_factor()?;
        let mut joins = Vec::new();
        loop {
            let explicit_inner = self.at_kw("inner");
            if explicit_inner || self.at_kw("join") {
                if explicit_inner {
                    self.expect_kw("inner")?;
                }
                self.expect_kw("join")?;
                let f = self.table_factor()?;
                self.expect_kw("on")?;
                let on = self.expr()?;
                joins.push(Join { factor: f, on });
            } else {
                break;
            }
        }
        Ok(FromItem { factor, joins })
    }

    fn table_factor(&mut self) -> Result<TableFactor> {
        if self.eat(&TokenKind::LParen) {
            let query = self.query()?;
            self.expect(&TokenKind::RParen)?;
            // `AS` optional before the derived-table alias.
            self.eat_kw("as");
            let alias = self.ident()?;
            return Ok(TableFactor::Derived { query: Box::new(query), alias });
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            match self.peek() {
                Some(TokenKind::Ident(s))
                    if !RESERVED_AFTER_TABLE.contains(&s.to_ascii_lowercase().as_str()) =>
                {
                    let a = s.clone();
                    self.pos += 1;
                    Some(a)
                }
                _ => None,
            }
        };
        Ok(TableFactor::Named { name, alias })
    }

    // -- expressions ---------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::binary(left, BinOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        // Postfix forms desugar immediately: `x [NOT] BETWEEN a AND b`
        // becomes a conjunction, `x [NOT] IN (v, ...)` a disjunction of
        // equalities — no downstream machinery needs to know about them.
        let negated = if self.at_kw("not") {
            let after = self.tokens.get(self.pos + 1).map(|t| &t.kind);
            let is_postfix = matches!(after, Some(TokenKind::Ident(s))
                if s.eq_ignore_ascii_case("between") || s.eq_ignore_ascii_case("in"));
            if is_postfix {
                self.pos += 1;
                true
            } else {
                false
            }
        } else {
            false
        };
        if self.eat_kw("between") {
            let lo = self.add_expr()?;
            self.expect_kw("and")?;
            let hi = self.add_expr()?;
            let range = Expr::binary(
                Expr::binary(left.clone(), BinOp::GtEq, lo),
                BinOp::And,
                Expr::binary(left, BinOp::LtEq, hi),
            );
            return Ok(if negated {
                Expr::Unary { op: UnaryOp::Not, expr: Box::new(range) }
            } else {
                range
            });
        }
        if self.eat_kw("in") {
            self.expect(&TokenKind::LParen)?;
            let mut alts = Vec::new();
            loop {
                let v = self.expr()?;
                alts.push(Expr::binary(left.clone(), BinOp::Eq, v));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            let any =
                alts.into_iter().reduce(|a, b| Expr::binary(a, BinOp::Or, b)).ok_or_else(|| {
                    Error::Parse { message: "empty IN list".into(), offset: self.offset() }
                })?;
            return Ok(if negated {
                Expr::Unary { op: UnaryOp::Not, expr: Box::new(any) }
            } else {
                any
            });
        }
        if negated {
            return self.err("expected BETWEEN or IN after NOT");
        }
        let op = match self.peek() {
            Some(TokenKind::Eq) => Some(BinOp::Eq),
            Some(TokenKind::NotEq) => Some(BinOp::NotEq),
            Some(TokenKind::Lt) => Some(BinOp::Lt),
            Some(TokenKind::LtEq) => Some(BinOp::LtEq),
            Some(TokenKind::Gt) => Some(BinOp::Gt),
            Some(TokenKind::GtEq) => Some(BinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            return Ok(Expr::binary(left, op, right));
        }
        Ok(left)
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Plus) => BinOp::Add,
                Some(TokenKind::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(TokenKind::Star) => BinOp::Mul,
                Some(TokenKind::Slash) => BinOp::Div,
                Some(TokenKind::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::binary(left, op, right);
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        if self.eat(&TokenKind::Plus) {
            return self.unary_expr();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek().cloned() {
            Some(TokenKind::Number(n)) => {
                self.pos += 1;
                if n.contains('.') || n.contains('e') || n.contains('E') {
                    let v: f64 = n.parse().map_err(|_| Error::Parse {
                        message: format!("bad number '{n}'"),
                        offset: self.offset(),
                    })?;
                    Ok(Expr::Literal(Literal::Float(v)))
                } else {
                    let v: i64 = n.parse().map_err(|_| Error::Parse {
                        message: format!("bad number '{n}'"),
                        offset: self.offset(),
                    })?;
                    Ok(Expr::Literal(Literal::Int(v)))
                }
            }
            Some(TokenKind::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Literal::Str(s)))
            }
            Some(TokenKind::LParen) => {
                self.pos += 1;
                if self.at_kw("select") {
                    let q = self.query()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::Subquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            Some(TokenKind::Ident(word)) => {
                if word.eq_ignore_ascii_case("true") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Bool(true)));
                }
                if word.eq_ignore_ascii_case("false") {
                    self.pos += 1;
                    return Ok(Expr::Literal(Literal::Bool(false)));
                }
                if is_reserved_word(&word) {
                    return self
                        .err(format!("unexpected keyword {} in expression", word.to_uppercase()));
                }
                self.pos += 1;
                // Function call?
                if self.eat(&TokenKind::LParen) {
                    if self.eat(&TokenKind::Star) {
                        self.expect(&TokenKind::RParen)?;
                        return Ok(Expr::Function {
                            name: word,
                            args: vec![],
                            star: true,
                            distinct: false,
                        });
                    }
                    let distinct = self.eat_kw("distinct");
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(&TokenKind::RParen)?;
                    }
                    return Ok(Expr::Function { name: word, args, star: false, distinct });
                }
                // Qualified column?
                if self.eat(&TokenKind::Dot) {
                    let name = self.ident()?;
                    return Ok(Expr::Column { qualifier: Some(word), name });
                }
                Ok(Expr::Column { qualifier: None, name: word })
            }
            other => self.err(format!("unexpected token {other:?} in expression")),
        }
    }
}

/// Words that can never begin a column reference in an expression. Kept
/// minimal on purpose — names like `date` or `value` are legal columns.
fn is_reserved_word(word: &str) -> bool {
    matches!(
        word.to_ascii_lowercase().as_str(),
        "select"
            | "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "limit"
            | "by"
            | "on"
            | "inner"
            | "join"
            | "as"
            | "set"
            | "values"
            | "into"
            | "union"
            | "create"
            | "insert"
            | "update"
            | "drop"
            | "table"
            | "view"
    )
}

fn is_clause_keyword(word: &str) -> bool {
    matches!(
        word.to_ascii_lowercase().as_str(),
        "from" | "where" | "group" | "having" | "order" | "limit" | "as" | "inner" | "join" | "on"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_table_i_type1_query() {
        let sql = "SELECT sum(meter) FROM FABRIC F, Video V \
                   WHERE F.printdate>'2021-01-01' and F.printdate<'2021-1-31' \
                   and V.date>'2021-01-01' and V.date<'2021-1-31' \
                   and nUDF_classify(V.keyframe)='Floral Pattern'";
        let Statement::Query(q) = parse_statement(sql).unwrap() else {
            panic!("expected query");
        };
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.projections.len(), 1);
        let pred = q.predicate.unwrap();
        assert_eq!(pred.conjuncts().len(), 5);
    }

    #[test]
    fn parses_paper_q1_conv_join() {
        let sql = "CREATE TEMP TABLE Layer_Output( \
                     SELECT MatrixID as TupleID, SUM(A.Value * B.Value) as Value \
                     FROM FeatureMap A INNER JOIN Kernel B ON A.OrderID = B.OrderID \
                     GROUP BY KernelID, MatrixID)";
        let Statement::CreateTable { name, temp, as_query: Some(q), .. } =
            parse_statement(sql).unwrap()
        else {
            panic!("expected CREATE TABLE AS");
        };
        assert_eq!(name, "Layer_Output");
        assert!(temp);
        assert_eq!(q.group_by.len(), 2);
        assert_eq!(q.from[0].joins.len(), 1);
    }

    #[test]
    fn parses_scalar_subquery_in_projection() {
        // Paper Q4's batch-normalization statement shape.
        let sql = "SELECT MatrixID, ((Value - (SELECT AVG(Value) FROM t)) / \
                   ((SELECT stddevSamp(Value) FROM t) + 0.00005)) as Value FROM t";
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        let SelectItem::Expr { expr, alias } = &q.projections[1] else { panic!() };
        assert_eq!(alias.as_deref(), Some("Value"));
        assert!(expr.any(&|e| matches!(e, Expr::Subquery(_))));
    }

    #[test]
    fn parses_update_relu() {
        let sql = "UPDATE cb_output SET Value = 0 where Value < 0";
        let Statement::Update { table, assignments, predicate } = parse_statement(sql).unwrap()
        else {
            panic!()
        };
        assert_eq!(table, "cb_output");
        assert_eq!(assignments.len(), 1);
        assert!(predicate.is_some());
    }

    #[test]
    fn parses_derived_table_with_alias() {
        let sql = "SELECT a FROM (SELECT 1 as a) as t, u WHERE t.a = u.a";
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        assert_eq!(q.from.len(), 2);
        assert!(matches!(q.from[0].factor, TableFactor::Derived { .. }));
    }

    #[test]
    fn operator_precedence_is_conventional() {
        let e = parse_expression("1 + 2 * 3 = 7 AND true").unwrap();
        // Top is AND.
        let Expr::Binary { op: BinOp::And, left, .. } = e else { panic!("top must be AND") };
        let Expr::Binary { op: BinOp::Eq, left: add, .. } = *left else { panic!("then =") };
        let Expr::Binary { op: BinOp::Add, .. } = *add else { panic!("then +") };
    }

    #[test]
    fn not_and_negation() {
        let e = parse_expression("NOT a = 1").unwrap();
        assert!(matches!(e, Expr::Unary { op: UnaryOp::Not, .. }));
        let n = parse_expression("-x + 1").unwrap();
        let Expr::Binary { left, .. } = n else { panic!() };
        assert!(matches!(*left, Expr::Unary { op: UnaryOp::Neg, .. }));
    }

    #[test]
    fn count_star_and_distinct() {
        let e = parse_expression("count(*)").unwrap();
        assert!(matches!(e, Expr::Function { star: true, .. }));
        let d = parse_expression("count(DISTINCT x)").unwrap();
        assert!(matches!(d, Expr::Function { distinct: true, .. }));
    }

    #[test]
    fn multi_statement_script() {
        let stmts = parse_statements(
            "CREATE TABLE t (a Int64); INSERT INTO t VALUES (1), (2); SELECT a FROM t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn group_order_limit_having() {
        let sql =
            "SELECT k, sum(v) s FROM t GROUP BY k HAVING sum(v) > 1 ORDER BY s DESC, k LIMIT 10";
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        assert_eq!(q.group_by.len(), 1);
        assert!(q.having.is_some());
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert!(q.order_by[1].ascending);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn create_and_drop_variants() {
        assert!(matches!(
            parse_statement("CREATE TABLE IF NOT EXISTS t (a Int64, b Float64)").unwrap(),
            Statement::CreateTable { if_not_exists: true, .. }
        ));
        assert!(matches!(
            parse_statement("CREATE VIEW v AS SELECT 1 x").unwrap(),
            Statement::CreateView { .. }
        ));
        assert!(matches!(
            parse_statement("DROP TABLE IF EXISTS t").unwrap(),
            Statement::Drop { kind: ObjectKind::Table, if_exists: true, .. }
        ));
        assert!(matches!(
            parse_statement("DROP VIEW v").unwrap(),
            Statement::Drop { kind: ObjectKind::View, if_exists: false, .. }
        ));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        assert!(matches!(err, Error::Parse { .. }));
        assert!(parse_statement("SELECT 1 extra garbage, ,").is_err());
    }

    #[test]
    fn implicit_aliases_do_not_eat_keywords() {
        let sql =
            "SELECT * FROM FABRIC F INNER JOIN Video V ON F.transID = V.transID WHERE F.x > 1";
        let Statement::Query(q) = parse_statement(sql).unwrap() else { panic!() };
        assert_eq!(q.from[0].factor.binding_name(), "F");
        assert_eq!(q.from[0].joins[0].factor.binding_name(), "V");
    }
}
