//! Schemas and in-memory tables.

use std::sync::Arc;

use crate::column::Column;
use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// One column's name and type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (case-preserving, matched case-insensitively).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type }
    }
}

/// An ordered list of fields.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by case-insensitive name.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        let mut found = None;
        for (i, f) in self.fields.iter().enumerate() {
            if f.name.eq_ignore_ascii_case(name) {
                if found.is_some() {
                    return Err(Error::Plan(format!("ambiguous column name '{name}'")));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| Error::NotFound(format!("column '{name}'")))
    }

    /// Field at `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }
}

/// An immutable-by-convention columnar table. Mutation happens by
/// replacing the table in the catalog (UPDATE rewrites columns in place
/// through [`Table::set_column`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    rows: usize,
}

impl Table {
    /// Builds a table from a schema and matching columns.
    pub fn new(schema: Schema, columns: Vec<Column>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(Error::Plan(format!(
                "schema has {} fields but {} columns provided",
                schema.len(),
                columns.len()
            )));
        }
        let rows = columns.first().map_or(0, Column::len);
        for (f, c) in schema.fields().iter().zip(&columns) {
            if c.data_type() != f.data_type {
                return Err(Error::Type(format!(
                    "column '{}' declared {} but stored {}",
                    f.name,
                    f.data_type,
                    c.data_type()
                )));
            }
            if c.len() != rows {
                return Err(Error::Plan(format!(
                    "column '{}' has {} rows, expected {rows}",
                    f.name,
                    c.len()
                )));
            }
        }
        Ok(Table { schema, columns, rows })
    }

    /// An empty table with the given schema.
    pub fn empty(schema: Schema) -> Self {
        let columns = schema.fields().iter().map(|f| Column::empty(f.data_type)).collect();
        Table { schema, columns, rows: 0 }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column by position.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&Column> {
        Ok(&self.columns[self.schema.index_of(name)?])
    }

    /// All columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Replaces column `i` (same type and row count required). Used by
    /// UPDATE.
    pub fn set_column(&mut self, i: usize, column: Column) -> Result<()> {
        if column.data_type() != self.schema.field(i).data_type {
            return Err(Error::Type(format!(
                "cannot replace {} column with {}",
                self.schema.field(i).data_type,
                column.data_type()
            )));
        }
        if column.len() != self.rows {
            return Err(Error::Plan("replacement column row count mismatch".into()));
        }
        self.columns[i] = column;
        Ok(())
    }

    /// One row as values.
    pub fn row(&self, i: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(i)).collect()
    }

    /// Appends a row of values (with per-column coercion).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(Error::Plan(format!(
                "row has {} values, table has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (c, v) in self.columns.iter_mut().zip(row) {
            c.push(v)?;
        }
        self.rows += 1;
        Ok(())
    }

    /// Appends all rows of `other` (schemas must match by type).
    pub fn append(&mut self, other: &Table) -> Result<()> {
        if other.num_columns() != self.num_columns() {
            return Err(Error::Plan("appending table with different column count".into()));
        }
        for (a, b) in self.columns.iter_mut().zip(other.columns.iter()) {
            a.append(b)?;
        }
        self.rows += other.rows;
        Ok(())
    }

    /// Keeps rows where `mask` is true.
    pub fn filter(&self, mask: &[bool]) -> Table {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.filter(mask)).collect();
        let rows = columns.first().map_or(0, Column::len);
        Table { schema: self.schema.clone(), columns, rows }
    }

    /// A contiguous row range — the executor's morsel unit. Column data is
    /// copied; the schema is shared.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Table {
        let rows = range.len();
        let columns: Vec<Column> = self.columns.iter().map(|c| c.slice(range.clone())).collect();
        Table { schema: self.schema.clone(), columns, rows }
    }

    /// Gathers rows by index.
    pub fn take(&self, indices: &[usize]) -> Table {
        let columns: Vec<Column> = self.columns.iter().map(|c| c.take(indices)).collect();
        Table { schema: self.schema.clone(), columns, rows: indices.len() }
    }

    /// Approximate in-memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum()
    }

    /// Renders the table as an aligned text grid (for examples and
    /// harness output).
    pub fn to_display_string(&self) -> String {
        let mut widths: Vec<usize> = self.schema.fields().iter().map(|f| f.name.len()).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows);
        for r in 0..self.rows {
            let row: Vec<String> = self
                .columns
                .iter()
                .map(|c| match c.value(r) {
                    Value::Float64(f) => format!("{f:.4}"),
                    v => v.to_string(),
                })
                .collect();
            for (w, cell) in widths.iter_mut().zip(&row) {
                *w = (*w).max(cell.len());
            }
            cells.push(row);
        }
        let mut out = String::new();
        for (i, f) in self.schema.fields().iter().enumerate() {
            out.push_str(&format!("{:<w$}  ", f.name, w = widths[i]));
        }
        out.push('\n');
        for row in cells {
            for (i, cell) in row.iter().enumerate() {
                out.push_str(&format!("{:<w$}  ", cell, w = widths[i]));
            }
            out.push('\n');
        }
        out
    }
}

/// Shared, cheaply-clonable table handle used by the catalog.
pub type TableRef = Arc<Table>;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::new(
            Schema::new(vec![
                Field::new("id", DataType::Int64),
                Field::new("v", DataType::Float64),
            ]),
            vec![Column::Int64(vec![1, 2, 3]), Column::Float64(vec![0.1, 0.2, 0.3])],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates_shape() {
        let schema = Schema::new(vec![Field::new("id", DataType::Int64)]);
        assert!(Table::new(schema.clone(), vec![]).is_err());
        assert!(Table::new(schema.clone(), vec![Column::Bool(vec![true])]).is_err());
        let uneven =
            Schema::new(vec![Field::new("a", DataType::Int64), Field::new("b", DataType::Int64)]);
        assert!(
            Table::new(uneven, vec![Column::Int64(vec![1]), Column::Int64(vec![1, 2])]).is_err()
        );
    }

    #[test]
    fn name_lookup_is_case_insensitive() {
        let t = sample();
        assert!(t.column_by_name("ID").is_ok());
        assert!(t.column_by_name("missing").is_err());
    }

    #[test]
    fn ambiguous_names_are_reported() {
        let s =
            Schema::new(vec![Field::new("x", DataType::Int64), Field::new("X", DataType::Int64)]);
        assert!(matches!(s.index_of("x"), Err(Error::Plan(_))));
    }

    #[test]
    fn push_row_and_append() {
        let mut t = sample();
        t.push_row(vec![Value::Int64(4), Value::Float64(0.4)]).unwrap();
        assert_eq!(t.num_rows(), 4);
        assert!(t.push_row(vec![Value::Int64(5)]).is_err());

        let other = sample();
        t.append(&other).unwrap();
        assert_eq!(t.num_rows(), 7);
    }

    #[test]
    fn filter_and_take_preserve_schema() {
        let t = sample();
        let f = t.filter(&[true, false, true]);
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.schema(), t.schema());
        let g = t.take(&[2, 2, 0]);
        assert_eq!(g.column(0).i64_at(0), 3);
        assert_eq!(g.column(0).i64_at(2), 1);
    }

    #[test]
    fn display_renders_all_rows() {
        let s = sample().to_display_string();
        assert!(s.contains("id"));
        assert!(s.lines().count() == 4);
    }
}
