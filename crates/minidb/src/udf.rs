//! Scalar user-defined functions.
//!
//! This is the interface the paper's `nUDF`s live on. Besides the callable
//! itself, a [`ScalarUdf`] carries the optimizer-facing metadata the hint
//! rules of paper Sec. IV-B consume:
//!
//! * `cost_per_row` — how expensive one invocation is relative to
//!   evaluating an ordinary scalar expression on one row (neural inference
//!   is many orders of magnitude more expensive),
//! * `class_probabilities` — the class histogram `Pr(c_i)` learned during
//!   offline training (paper Eq. 9–10); the selectivity of
//!   `nUDF(x) = 'class'` is `Pr(class)`.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::column::{Column, Key};
use crate::error::{Error, Result};
use crate::value::{DataType, Value};

/// The callable: a scalar function over one row's argument values.
pub type UdfFn = dyn Fn(&[Value]) -> Result<Value> + Send + Sync;

/// An optional vectorized implementation: whole argument columns in, one
/// result column out. The paper's nUDFs run "in a batch manner (a batch of
/// feature maps are fed to the model together)"; a batch implementation
/// amortizes per-call overhead (and, on an accelerator, the host↔device
/// round trip).
pub type UdfBatchFn = dyn Fn(&[Column]) -> Result<Column> + Send + Sync;

/// A registered scalar UDF.
pub struct ScalarUdf {
    /// Function name (matched case-insensitively in SQL).
    pub name: String,
    /// Expected argument types (arity check; Blob arguments carry tensors).
    pub arg_types: Vec<DataType>,
    /// Return type.
    pub return_type: DataType,
    /// Cost of one invocation, in units of "one scalar expression on one
    /// row". Used by the optimizer to decide nUDF placement.
    pub cost_per_row: f64,
    /// `Pr(class)` histogram for classification UDFs: maps a predicted
    /// value (as a hash [`Key`]) to its empirical probability.
    pub class_probabilities: Option<HashMap<Key, f64>>,
    /// The row-at-a-time implementation.
    pub func: Arc<UdfFn>,
    /// Optional vectorized implementation (preferred by the executor when
    /// present).
    pub batch_func: Option<Arc<UdfBatchFn>>,
}

impl fmt::Debug for ScalarUdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScalarUdf")
            .field("name", &self.name)
            .field("arg_types", &self.arg_types)
            .field("return_type", &self.return_type)
            .field("cost_per_row", &self.cost_per_row)
            .field("has_histogram", &self.class_probabilities.is_some())
            .field("has_batch_impl", &self.batch_func.is_some())
            .finish()
    }
}

impl ScalarUdf {
    /// A UDF with default metadata (cost 1, no histogram).
    pub fn new(
        name: impl Into<String>,
        arg_types: Vec<DataType>,
        return_type: DataType,
        func: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) -> Self {
        ScalarUdf {
            name: name.into(),
            arg_types,
            return_type,
            cost_per_row: 1.0,
            class_probabilities: None,
            func: Arc::new(func),
            batch_func: None,
        }
    }

    /// Attaches a vectorized implementation. The executor calls it once
    /// per batch instead of once per row; it must return exactly one value
    /// per input row, of the declared return type.
    pub fn with_batch(
        mut self,
        batch: impl Fn(&[Column]) -> Result<Column> + Send + Sync + 'static,
    ) -> Self {
        self.batch_func = Some(Arc::new(batch));
        self
    }

    /// Sets the per-row cost estimate.
    pub fn with_cost(mut self, cost_per_row: f64) -> Self {
        self.cost_per_row = cost_per_row;
        self
    }

    /// Attaches the class-probability histogram (paper Eq. 10). The map
    /// keys are predicted values; probabilities should sum to ~1.
    pub fn with_class_probabilities(
        mut self,
        probs: impl IntoIterator<Item = (Value, f64)>,
    ) -> Self {
        self.class_probabilities = Some(probs.into_iter().map(|(v, p)| (v.to_key(), p)).collect());
        self
    }

    /// The selectivity of `udf(x) = value`: `Pr(value)` if a histogram is
    /// attached, else `None` (the optimizer falls back to a default).
    pub fn selectivity_eq(&self, value: &Value) -> Option<f64> {
        self.class_probabilities.as_ref().map(|m| m.get(&value.to_key()).copied().unwrap_or(0.0))
    }

    /// Invokes the UDF on one row's arguments (with arity check).
    pub fn invoke(&self, args: &[Value]) -> Result<Value> {
        if args.len() != self.arg_types.len() {
            return Err(Error::Exec(format!(
                "UDF {} expects {} arguments, got {}",
                self.name,
                self.arg_types.len(),
                args.len()
            )));
        }
        (self.func)(args)
    }
}

/// Thread-safe registry of scalar UDFs.
#[derive(Debug, Default)]
pub struct UdfRegistry {
    map: RwLock<HashMap<String, Arc<ScalarUdf>>>,
    /// Bumped on register/unregister. Cached plans capture bound UDF
    /// closures, so a re-registration must invalidate them; the plan cache
    /// folds this counter into its epoch.
    epoch: cachekit::Epoch,
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        UdfRegistry::default()
    }

    /// The registry's version counter (bumped by register/unregister).
    pub fn epoch(&self) -> u64 {
        self.epoch.current()
    }

    /// Registers (or replaces) a UDF.
    pub fn register(&self, udf: ScalarUdf) {
        self.map.write().insert(udf.name.to_ascii_lowercase(), Arc::new(udf));
        self.epoch.bump();
    }

    /// Looks up a UDF by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<Arc<ScalarUdf>> {
        self.map.read().get(&name.to_ascii_lowercase()).cloned()
    }

    /// Removes a UDF; true if it existed.
    pub fn unregister(&self, name: &str) -> bool {
        let removed = self.map.write().remove(&name.to_ascii_lowercase()).is_some();
        if removed {
            self.epoch.bump();
        }
        removed
    }

    /// Names of all registered UDFs.
    pub fn names(&self) -> Vec<String> {
        self.map.read().values().map(|u| u.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn double() -> ScalarUdf {
        ScalarUdf::new("double", vec![DataType::Int64], DataType::Int64, |args| {
            Ok(Value::Int64(args[0].as_i64()? * 2))
        })
    }

    #[test]
    fn register_lookup_is_case_insensitive() {
        let reg = UdfRegistry::new();
        reg.register(double());
        assert!(reg.get("DOUBLE").is_some());
        assert!(reg.get("Double").is_some());
        assert!(reg.get("nope").is_none());
    }

    #[test]
    fn invoke_checks_arity() {
        let u = double();
        assert_eq!(u.invoke(&[Value::Int64(4)]).unwrap().as_i64().unwrap(), 8);
        assert!(u.invoke(&[]).is_err());
        assert!(u.invoke(&[Value::Int64(1), Value::Int64(2)]).is_err());
    }

    #[test]
    fn histogram_selectivity() {
        let u = double().with_class_probabilities(vec![
            (Value::Utf8("Floral Pattern".into()), 0.15),
            (Value::Utf8("Stripe".into()), 0.85),
        ]);
        assert_eq!(u.selectivity_eq(&Value::Utf8("Floral Pattern".into())), Some(0.15));
        assert_eq!(u.selectivity_eq(&Value::Utf8("Dots".into())), Some(0.0));
        assert_eq!(double().selectivity_eq(&Value::Int64(1)), None);
    }

    #[test]
    fn batch_implementation_is_optional_and_attachable() {
        let plain = double();
        assert!(plain.batch_func.is_none());
        let batched = double().with_batch(|cols| {
            let Column::Int64(v) = &cols[0] else {
                return Err(Error::Type("expected Int64".into()));
            };
            Ok(Column::Int64(v.iter().map(|x| x * 2).collect()))
        });
        let out = (batched.batch_func.as_ref().unwrap())(&[Column::Int64(vec![1, 2, 3])]).unwrap();
        assert_eq!(out, Column::Int64(vec![2, 4, 6]));
    }

    #[test]
    fn unregister_removes() {
        let reg = UdfRegistry::new();
        reg.register(double());
        assert!(reg.unregister("double"));
        assert!(!reg.unregister("double"));
        assert!(reg.get("double").is_none());
    }
}
