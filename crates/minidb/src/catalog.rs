//! The catalog: tables, views and indices, behind a `parking_lot` lock.

use std::collections::HashMap;
use std::sync::Arc;

use cachekit::Epoch;
use parking_lot::RwLock;

use crate::error::{Error, Result};
use crate::index::HashIndex;
use crate::sql::ast::Query;
use crate::table::{Table, TableRef};

#[derive(Default)]
struct Inner {
    tables: HashMap<String, TableRef>,
    views: HashMap<String, Arc<Query>>,
    /// Indices keyed by lower-cased table name.
    indexes: HashMap<String, Vec<Arc<HashIndex>>>,
    /// Per-table version counters, keyed by lower-cased name. Entries
    /// survive DROP so a later re-creation continues the sequence — a
    /// (name, epoch) cache key can never alias across the drop.
    table_epochs: HashMap<String, u64>,
}

/// Thread-safe name → object registry.
#[derive(Default)]
pub struct Catalog {
    inner: RwLock<Inner>,
    /// Bumped on every mutation (DDL, data replacement, index builds).
    /// Caches over planning artifacts key on this to stay coherent.
    epoch: Epoch,
}

fn key(name: &str) -> String {
    name.to_ascii_lowercase()
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// The catalog-wide version counter. Any mutation — CREATE/DROP of
    /// tables or views, INSERT/UPDATE data replacement, index builds —
    /// bumps it, so a plan cached under one epoch is known valid iff the
    /// epoch is unchanged.
    pub fn epoch(&self) -> u64 {
        self.epoch.current()
    }

    /// The version counter of one table (0 for never-seen names). Survives
    /// DROP: re-creating a table continues its sequence rather than
    /// restarting at 0, so stale per-table cache entries can never alias.
    pub fn table_epoch(&self, name: &str) -> u64 {
        self.inner.read().table_epochs.get(&key(name)).copied().unwrap_or(0)
    }

    fn touch(&self, inner: &mut Inner, k: &str) {
        *inner.table_epochs.entry(k.to_string()).or_insert(0) += 1;
        self.epoch.bump();
    }

    /// Registers a table. Fails if a table or view of that name exists and
    /// `or_replace` is false.
    pub fn create_table(&self, name: &str, table: Table, or_replace: bool) -> Result<()> {
        let mut inner = self.inner.write();
        let k = key(name);
        if !or_replace && (inner.tables.contains_key(&k) || inner.views.contains_key(&k)) {
            return Err(Error::AlreadyExists(format!("table or view '{name}'")));
        }
        inner.indexes.remove(&k);
        inner.views.remove(&k);
        inner.tables.insert(k.clone(), Arc::new(table));
        self.touch(&mut inner, &k);
        Ok(())
    }

    /// Registers a view definition.
    pub fn create_view(&self, name: &str, query: Query, or_replace: bool) -> Result<()> {
        let mut inner = self.inner.write();
        let k = key(name);
        if !or_replace && (inner.tables.contains_key(&k) || inner.views.contains_key(&k)) {
            return Err(Error::AlreadyExists(format!("table or view '{name}'")));
        }
        inner.tables.remove(&k);
        inner.views.insert(k.clone(), Arc::new(query));
        self.touch(&mut inner, &k);
        Ok(())
    }

    /// Snapshot of a table by name.
    pub fn table(&self, name: &str) -> Option<TableRef> {
        self.inner.read().tables.get(&key(name)).cloned()
    }

    /// View definition by name.
    pub fn view(&self, name: &str) -> Option<Arc<Query>> {
        self.inner.read().views.get(&key(name)).cloned()
    }

    /// Replaces a table's contents in place (used by INSERT/UPDATE).
    pub fn replace_table(&self, name: &str, table: Table) -> Result<()> {
        let mut inner = self.inner.write();
        let k = key(name);
        if !inner.tables.contains_key(&k) {
            return Err(Error::NotFound(format!("table '{name}'")));
        }
        // Data changed: indices over the old snapshot are stale.
        inner.indexes.remove(&k);
        inner.tables.insert(k.clone(), Arc::new(table));
        self.touch(&mut inner, &k);
        Ok(())
    }

    /// Drops a table; `Ok(false)` when absent and `if_exists`.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<bool> {
        let mut inner = self.inner.write();
        let k = key(name);
        inner.indexes.remove(&k);
        if inner.tables.remove(&k).is_some() {
            self.touch(&mut inner, &k);
            Ok(true)
        } else if if_exists {
            Ok(false)
        } else {
            Err(Error::NotFound(format!("table '{name}'")))
        }
    }

    /// Drops a view; `Ok(false)` when absent and `if_exists`.
    pub fn drop_view(&self, name: &str, if_exists: bool) -> Result<bool> {
        let mut inner = self.inner.write();
        let k = key(name);
        if inner.views.remove(&k).is_some() {
            self.touch(&mut inner, &k);
            Ok(true)
        } else if if_exists {
            Ok(false)
        } else {
            Err(Error::NotFound(format!("view '{name}'")))
        }
    }

    /// Builds (or rebuilds) a hash index on `table.column`.
    pub fn create_index(&self, table_name: &str, column: &str) -> Result<()> {
        let table = self
            .table(table_name)
            .ok_or_else(|| Error::NotFound(format!("table '{table_name}'")))?;
        let idx = Arc::new(HashIndex::build(&table, column)?);
        let mut inner = self.inner.write();
        let list = inner.indexes.entry(key(table_name)).or_default();
        list.retain(|i| !i.column.eq_ignore_ascii_case(column));
        list.push(idx);
        // A new index can change which plan the optimizer would pick, but
        // leaves the table's data (and thus its stats) untouched: bump the
        // catalog epoch only.
        self.epoch.bump();
        Ok(())
    }

    /// A current (non-stale) index on `table.column`, if one exists.
    pub fn index(&self, table_name: &str, column: &str) -> Option<Arc<HashIndex>> {
        let inner = self.inner.read();
        let idx = inner
            .indexes
            .get(&key(table_name))?
            .iter()
            .find(|i| i.column.eq_ignore_ascii_case(column))?
            .clone();
        let table = inner.tables.get(&key(table_name))?;
        (idx.rows() == table.num_rows()).then_some(idx)
    }

    /// Names of all tables.
    pub fn table_names(&self) -> Vec<String> {
        self.inner.read().tables.keys().cloned().collect()
    }

    /// Names of all views.
    pub fn view_names(&self) -> Vec<String> {
        self.inner.read().views.keys().cloned().collect()
    }

    /// Total approximate bytes across all tables (storage experiments).
    pub fn total_memory_bytes(&self) -> usize {
        self.inner.read().tables.values().map(|t| t.memory_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::{Field, Schema};
    use crate::value::DataType;

    fn t(rows: Vec<i64>) -> Table {
        Table::new(Schema::new(vec![Field::new("id", DataType::Int64)]), vec![Column::Int64(rows)])
            .unwrap()
    }

    #[test]
    fn create_and_lookup_case_insensitive() {
        let c = Catalog::new();
        c.create_table("Fabric", t(vec![1]), false).unwrap();
        assert!(c.table("FABRIC").is_some());
        assert!(matches!(c.create_table("fabric", t(vec![]), false), Err(Error::AlreadyExists(_))));
        c.create_table("fabric", t(vec![2]), true).unwrap();
        assert_eq!(c.table("fabric").unwrap().num_rows(), 1);
    }

    #[test]
    fn drop_semantics() {
        let c = Catalog::new();
        c.create_table("t", t(vec![]), false).unwrap();
        assert!(c.drop_table("t", false).unwrap());
        assert!(!c.drop_table("t", true).unwrap());
        assert!(c.drop_table("t", false).is_err());
    }

    #[test]
    fn index_staleness_after_replace() {
        let c = Catalog::new();
        c.create_table("t", t(vec![1, 2, 3]), false).unwrap();
        c.create_index("t", "id").unwrap();
        assert!(c.index("t", "id").is_some());
        c.replace_table("t", t(vec![1, 2, 3, 4])).unwrap();
        assert!(c.index("t", "id").is_none(), "index must be invalidated");
    }

    #[test]
    fn epochs_advance_on_mutation_and_survive_drop() {
        let c = Catalog::new();
        let e0 = c.epoch();
        assert_eq!(c.table_epoch("t"), 0);
        c.create_table("t", t(vec![1]), false).unwrap();
        assert!(c.epoch() > e0);
        let te1 = c.table_epoch("T");
        assert!(te1 > 0, "case-insensitive per-table epoch");
        c.replace_table("t", t(vec![1, 2])).unwrap();
        assert!(c.table_epoch("t") > te1);
        // DROP + re-CREATE keeps counting up: no (name, epoch) aliasing.
        let te2 = c.table_epoch("t");
        c.drop_table("t", false).unwrap();
        c.create_table("t", t(vec![1]), false).unwrap();
        assert!(c.table_epoch("t") > te2);
        // Index creation bumps the catalog epoch but not the table's.
        let (ge, te) = (c.epoch(), c.table_epoch("t"));
        c.create_index("t", "id").unwrap();
        assert!(c.epoch() > ge);
        assert_eq!(c.table_epoch("t"), te);
    }

    #[test]
    fn views_and_tables_share_a_namespace() {
        let c = Catalog::new();
        c.create_table("x", t(vec![]), false).unwrap();
        let q = crate::sql::parser::parse_statement("SELECT 1 a").unwrap();
        let crate::sql::ast::Statement::Query(q) = q else { panic!() };
        assert!(c.create_view("x", q.clone(), false).is_err());
        assert!(c.create_view("v", q, false).is_ok());
        assert!(c.view("V").is_some());
        assert!(c.drop_view("v", false).unwrap());
    }
}
