//! Hash indices.
//!
//! The paper builds indices on `MatrixID`, `OrderID` and `KernelID` to
//! speed up the feature-map/kernel joins. A [`HashIndex`] maps each
//! distinct key of one column to the row ids holding it; the executor uses
//! it for equality filters and as a pre-built hash-join build side.

use std::collections::HashMap;

use crate::column::Key;
use crate::error::Result;
use crate::table::Table;

/// A hash index over a single column of a table snapshot.
#[derive(Debug, Clone)]
pub struct HashIndex {
    /// Indexed column name.
    pub column: String,
    map: HashMap<Key, Vec<u32>>,
    rows: usize,
}

impl HashIndex {
    /// Builds an index over `column` of `table`.
    pub fn build(table: &Table, column: &str) -> Result<Self> {
        let col = table.column_by_name(column)?;
        let mut map: HashMap<Key, Vec<u32>> = HashMap::new();
        for row in 0..col.len() {
            map.entry(col.value(row).to_key()).or_default().push(row as u32);
        }
        Ok(HashIndex { column: column.to_string(), map, rows: col.len() })
    }

    /// Row ids whose indexed column equals `key`.
    pub fn lookup(&self, key: &Key) -> &[u32] {
        self.map.get(key).map_or(&[], Vec::as_slice)
    }

    /// Number of distinct keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Number of rows the index was built over. The executor uses this to
    /// detect stale indices after a table was replaced.
    pub fn rows(&self) -> usize {
        self.rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::{Field, Schema};
    use crate::value::{DataType, Value};

    fn table() -> Table {
        Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Utf8)]),
            vec![
                Column::Int64(vec![1, 2, 1, 3]),
                Column::Utf8(vec!["a".into(), "b".into(), "c".into(), "d".into()]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn lookup_returns_all_matching_rows() {
        let idx = HashIndex::build(&table(), "k").unwrap();
        assert_eq!(idx.lookup(&Value::Int64(1).to_key()), &[0, 2]);
        assert_eq!(idx.lookup(&Value::Int64(3).to_key()), &[3]);
        assert!(idx.lookup(&Value::Int64(9).to_key()).is_empty());
    }

    #[test]
    fn distinct_key_count() {
        let idx = HashIndex::build(&table(), "k").unwrap();
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.rows(), 4);
    }

    #[test]
    fn unknown_column_is_an_error() {
        assert!(HashIndex::build(&table(), "zzz").is_err());
    }
}
