//! The fused join–aggregate operator.
//!
//! Executes [`LogicalPlan::JoinAggregate`]: a hash equi join whose probe
//! folds aggregate partials directly into per-group accumulators, so the
//! join output — one row per matched pair, the largest intermediate of
//! the DL2SQL conv pipeline — is never materialized.
//!
//! Bit-identity with the unfused pair is by construction:
//!
//! * the build side is the smaller input and the probe walks the other
//!   side in ascending row order, emitting matches in build insertion
//!   order — exactly the unfused `hash_join`'s pair order;
//! * each pair updates the same [`Acc`] accumulators the unfused
//!   group-by would, in the same order, with the same argument values
//!   (the per-side column evaluation reproduces what expression
//!   evaluation over the materialized join row would compute);
//! * the morsel-parallel path partitions *probe* rows, computes partial
//!   accumulators per morsel and merges them in morsel order, so the
//!   result depends only on the morsel decomposition, never on worker
//!   scheduling — the same discipline as [`parallel::aggregate`].
//!
//! Typed fast paths avoid per-pair heap traffic: join keys pack into
//! `i128`s, group keys of up to two `Int64` columns pack the same way,
//! and aggregate arguments read `&[i64]`/`&[f64]` slices. All key maps
//! use the crate's fast non-SipHash hasher ([`crate::hash`]).

use std::hash::Hash;
use std::time::{Duration, Instant};

use crate::column::{Column, Key};
use crate::error::Result;
use crate::expr::BoundExpr;
use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::optimizer::fuse::{decompose_arg, side_of, ArgShape, Side};
use crate::plan::logical::AggExpr;
use crate::table::{Schema, Table};
use crate::value::{DataType, Value};

use super::{composite_keys, join_keys, parallel, Acc, ExecContext, JoinKeys};

/// Counters the executor feeds into the profiler's fused record.
pub(crate) struct FusedMetrics {
    /// Worker busy time beyond the operator's own wall time (zero when
    /// the probe ran serially).
    pub extra_busy: Duration,
    /// Serial setup time — argument/key evaluation plus hash-table build —
    /// before the (possibly parallel) probe starts. The profiler records
    /// this as its own invocation so effective parallelism reflects only
    /// the probe.
    pub build: Duration,
    /// Rows consumed across both join inputs.
    pub rows_in: usize,
    /// Estimated bytes of join output the fusion avoided building
    /// (matched pairs × bytes per unfused join row).
    pub bytes_not_materialized: u64,
}

/// A numeric column unwrapped for slice access.
enum NumCol {
    I64(Vec<i64>),
    F64(Vec<f64>),
}

impl NumCol {
    fn from_column(c: Column) -> Result<NumCol> {
        match c {
            Column::Int64(v) => Ok(NumCol::I64(v)),
            other => Ok(NumCol::F64(other.as_f64_vec()?)),
        }
    }

    #[inline]
    fn f64_at(&self, row: usize) -> f64 {
        match self {
            NumCol::I64(v) => v[row] as f64,
            NumCol::F64(v) => v[row],
        }
    }
}

/// How one aggregate's argument is computed per matched (left, right) pair.
enum FusedArg {
    /// `COUNT(*)`.
    CountStar,
    /// Evaluated entirely on one join side.
    Single { side: Side, col: Column },
    /// A product of one factor per side, operands in source order (the
    /// conv `SUM(A.Value * B.Value)` shape). `int` mirrors the binary
    /// evaluator's type rule: Int64 only when both factors are Int64.
    Product { a_side: Side, a: NumCol, b_side: Side, b: NumCol, int: bool },
}

#[inline]
fn pick(side: Side, li: usize, ri: usize) -> usize {
    match side {
        Side::Left => li,
        Side::Right => ri,
    }
}

impl FusedArg {
    /// The argument's column type — what evaluating it over the
    /// materialized join output would produce (drives SumI vs SumF).
    fn data_type(&self) -> Option<DataType> {
        match self {
            FusedArg::CountStar => None,
            FusedArg::Single { col, .. } => Some(col.data_type()),
            FusedArg::Product { int, .. } => {
                Some(if *int { DataType::Int64 } else { DataType::Float64 })
            }
        }
    }

    #[inline]
    fn value(&self, li: usize, ri: usize) -> Option<Value> {
        match self {
            FusedArg::CountStar => None,
            FusedArg::Single { side, col } => Some(col.value(pick(*side, li, ri))),
            FusedArg::Product { a_side, a, b_side, b, int } => {
                let ar = pick(*a_side, li, ri);
                let br = pick(*b_side, li, ri);
                if *int {
                    let (NumCol::I64(av), NumCol::I64(bv)) = (a, b) else { unreachable!() };
                    // Same wrapping semantics as the vectorized evaluator.
                    Some(Value::Int64(av[ar].wrapping_mul(bv[br])))
                } else {
                    Some(Value::Float64(a.f64_at(ar) * b.f64_at(br)))
                }
            }
        }
    }
}

/// Merged group state after the fold, with group keys erased.
#[derive(Default)]
struct FoldedGroups {
    /// First matched (left row, right row) per group, in first-occurrence
    /// order — the rows group-key output values are read from.
    firsts: Vec<(usize, usize)>,
    accs: Vec<Vec<Acc>>,
    pairs: u64,
}

/// Per-morsel (or whole-input) partial state.
struct LocalGroups<K> {
    keys: Vec<K>,
    folded: FoldedGroups,
}

/// Executes the fused operator. Returns the aggregated table and the
/// profiler counters; the caller records wall time around this call.
pub(crate) fn join_aggregate(
    lt: &Table,
    rt: &Table,
    keys: &[(BoundExpr, BoundExpr)],
    group: &[BoundExpr],
    aggs: &[AggExpr],
    schema: &Schema,
    ctx: &ExecContext<'_>,
) -> Result<(Table, FusedMetrics)> {
    let setup_start = Instant::now();
    let l_width = lt.num_columns();
    let full_width = l_width + rt.num_columns();

    // Side-resolved group-key columns, evaluated once per side.
    let group_cols: Vec<(Side, Column)> = group
        .iter()
        .map(|g| eval_on_side(g, lt, rt, l_width, full_width, ctx))
        .collect::<Result<_>>()?;

    // Per-aggregate argument evaluators.
    let args: Vec<FusedArg> = aggs
        .iter()
        .map(|a| match &a.arg {
            None => Ok(FusedArg::CountStar),
            Some(arg) => build_arg(arg, lt, rt, l_width, full_width, ctx),
        })
        .collect::<Result<_>>()?;

    // Join keys per side; build on the smaller input (the unfused rule).
    let l_exprs: Vec<BoundExpr> = keys.iter().map(|(l, _)| l.clone()).collect();
    let r_exprs: Vec<BoundExpr> = keys.iter().map(|(_, r)| r.clone()).collect();
    let lk = join_keys(lt, &l_exprs, ctx)?;
    let rk = join_keys(rt, &r_exprs, ctx)?;
    let build_left = lt.num_rows() <= rt.num_rows();

    let (mut folded, extra_busy, build_time) = match (&lk, &rk) {
        (JoinKeys::Packed(l), JoinKeys::Packed(r)) => {
            let (build, probe) = if build_left { (l, r) } else { (r, l) };
            let _build_mem = ctx.reserve("fused.build", super::build_bytes(build.len(), 16))?;
            let mut table: FxHashMap<i128, Vec<usize>> = fx_map_with_capacity(build.len());
            for (row, &k) in build.iter().enumerate() {
                if row % super::CHECK_STRIDE == 0 {
                    ctx.check()?;
                }
                table.entry(k).or_default().push(row);
            }
            let build_time = setup_start.elapsed();
            let (folded, extra_busy) = fold_grouped(
                probe.len(),
                |row| table.get(&probe[row]),
                build_left,
                &group_cols,
                &args,
                aggs,
                ctx,
            )?;
            (folded, extra_busy, build_time)
        }
        _ => {
            let lg = composite_keys(lt, &l_exprs, ctx)?;
            let rg = composite_keys(rt, &r_exprs, ctx)?;
            let (build, probe) = if build_left { (&lg, &rg) } else { (&rg, &lg) };
            let _build_mem = ctx.reserve("fused.build", super::build_bytes(build.len(), 32))?;
            let mut table: FxHashMap<&[Key], Vec<usize>> = fx_map_with_capacity(build.len());
            for (row, k) in build.iter().enumerate() {
                if row % super::CHECK_STRIDE == 0 {
                    ctx.check()?;
                }
                table.entry(k.as_slice()).or_default().push(row);
            }
            let build_time = setup_start.elapsed();
            let (folded, extra_busy) = fold_grouped(
                probe.len(),
                |row| table.get(probe[row].as_slice()),
                build_left,
                &group_cols,
                &args,
                aggs,
                ctx,
            )?;
            (folded, extra_busy, build_time)
        }
    };

    // The merged accumulator table is the fused operator's second big
    // allocation; charge it once its size is known.
    let _acc_mem =
        ctx.reserve("fused.accs", super::group_state_bytes(folded.accs.len(), aggs.len()))?;

    // Global aggregate over zero pairs still emits one group.
    if group.is_empty() && folded.accs.is_empty() {
        folded.firsts.push((usize::MAX, usize::MAX));
        folded
            .accs
            .push(args.iter().zip(aggs).map(|(arg, a)| Acc::new(a, arg.data_type())).collect());
    }

    // Emit: group-key values from each group's first pair, then finished
    // accumulators — the same order and coercions as the unfused path.
    let mut cols: Vec<Column> =
        schema.fields().iter().map(|f| Column::empty(f.data_type)).collect();
    for (g, &(li, ri)) in folded.firsts.iter().enumerate() {
        for (ki, (side, col)) in group_cols.iter().enumerate() {
            cols[ki].push(col.value(pick(*side, li, ri)))?;
        }
        for (ai, acc) in folded.accs[g].iter().enumerate() {
            let field = schema.field(group.len() + ai);
            cols[group.len() + ai].push(acc.finish(field.data_type))?;
        }
    }
    let out = Table::new(schema.clone(), cols)?;

    let metrics = FusedMetrics {
        extra_busy,
        build: build_time,
        rows_in: lt.num_rows() + rt.num_rows(),
        bytes_not_materialized: folded.pairs * per_pair_bytes(group, aggs, lt, rt, l_width),
    };
    Ok((out, metrics))
}

/// Evaluates a single-sided expression on its side's table.
fn eval_on_side(
    expr: &BoundExpr,
    lt: &Table,
    rt: &Table,
    l_width: usize,
    full_width: usize,
    ctx: &ExecContext<'_>,
) -> Result<(Side, Column)> {
    let side = side_of(expr, l_width, full_width).ok_or_else(|| {
        crate::error::Error::Plan("fused expression straddles both join sides".into())
    })?;
    Ok((side, eval_side(expr, side, lt, rt, l_width, full_width, ctx)?))
}

/// Evaluates an expression known to live on `side` against that side's
/// table (right-side column indices shift down by the left width).
fn eval_side(
    expr: &BoundExpr,
    side: Side,
    lt: &Table,
    rt: &Table,
    l_width: usize,
    full_width: usize,
    ctx: &ExecContext<'_>,
) -> Result<Column> {
    match side {
        Side::Left => expr.eval(lt, &ctx.eval_ctx()),
        Side::Right => {
            let mut e = expr.clone();
            e.remap_columns(&right_map(l_width, full_width));
            e.eval(rt, &ctx.eval_ctx())
        }
    }
}

/// Column map sending `left ++ right` indices onto right-side positions.
fn right_map(l_width: usize, full_width: usize) -> Vec<usize> {
    (0..full_width).map(|c| c.wrapping_sub(l_width)).collect()
}

/// Builds the per-pair evaluator for one aggregate argument.
fn build_arg(
    arg: &BoundExpr,
    lt: &Table,
    rt: &Table,
    l_width: usize,
    full_width: usize,
    ctx: &ExecContext<'_>,
) -> Result<FusedArg> {
    match decompose_arg(arg, l_width, full_width) {
        Some(ArgShape::Single(side, e)) => {
            let col = eval_side(e, side, lt, rt, l_width, full_width, ctx)?;
            Ok(FusedArg::Single { side, col })
        }
        Some(ArgShape::Product { first: (a_side, a_e), second: (b_side, b_e) }) => {
            let a_col = eval_side(a_e, a_side, lt, rt, l_width, full_width, ctx)?;
            let b_col = eval_side(b_e, b_side, lt, rt, l_width, full_width, ctx)?;
            let int = a_col.data_type() == DataType::Int64 && b_col.data_type() == DataType::Int64;
            Ok(FusedArg::Product {
                a_side,
                a: NumCol::from_column(a_col)?,
                b_side,
                b: NumCol::from_column(b_col)?,
                int,
            })
        }
        None => Err(crate::error::Error::Plan(
            "fused aggregate argument is not decomposable over the join sides".into(),
        )),
    }
}

/// Dispatches on the group-key representation: up to two `Int64` key
/// columns pack into an `i128` (the conv shape — no per-pair allocation);
/// anything else uses general composite keys.
fn fold_grouped<'a, LF>(
    probe_len: usize,
    lookup: LF,
    build_left: bool,
    group_cols: &[(Side, Column)],
    args: &[FusedArg],
    aggs: &[AggExpr],
    ctx: &ExecContext<'_>,
) -> Result<(FoldedGroups, Duration)>
where
    LF: Fn(usize) -> Option<&'a Vec<usize>> + Sync,
{
    let packed: Option<Vec<(Side, &[i64])>> = if group_cols.len() <= 2 {
        group_cols.iter().map(|(s, c)| c.as_i64_slice().map(|v| (*s, v))).collect()
    } else {
        None
    };
    match packed.as_deref() {
        Some([]) => fold_all(probe_len, lookup, build_left, |_, _| 0i128, args, aggs, ctx),
        Some([(s0, c0)]) => {
            let (s0, c0) = (*s0, *c0);
            fold_all(
                probe_len,
                lookup,
                build_left,
                move |li, ri| c0[pick(s0, li, ri)] as i128,
                args,
                aggs,
                ctx,
            )
        }
        Some([(s0, c0), (s1, c1)]) => {
            let (s0, c0, s1, c1) = (*s0, *c0, *s1, *c1);
            fold_all(
                probe_len,
                lookup,
                build_left,
                move |li, ri| {
                    let a = c0[pick(s0, li, ri)];
                    let b = c1[pick(s1, li, ri)];
                    ((a as i128) << 64) | (b as u64 as i128)
                },
                args,
                aggs,
                ctx,
            )
        }
        _ => fold_all(
            probe_len,
            lookup,
            build_left,
            |li, ri| -> Vec<Key> {
                group_cols.iter().map(|(s, c)| c.key_at(pick(*s, li, ri))).collect()
            },
            args,
            aggs,
            ctx,
        ),
    }
}

/// Probes serially or morsel-parallel and returns merged group state plus
/// worker busy time beyond wall time.
fn fold_all<'a, K, KF, LF>(
    probe_len: usize,
    lookup: LF,
    build_left: bool,
    keyer: KF,
    args: &[FusedArg],
    aggs: &[AggExpr],
    ctx: &ExecContext<'_>,
) -> Result<(FoldedGroups, Duration)>
where
    K: Eq + Hash + Clone + Send,
    KF: Fn(usize, usize) -> K + Sync,
    LF: Fn(usize) -> Option<&'a Vec<usize>> + Sync,
{
    if !parallel::active(ctx.config, probe_len) {
        let local = fold_range(0..probe_len, &lookup, build_left, &keyer, args, aggs, ctx)?;
        return Ok((local.folded, Duration::ZERO));
    }

    let probe_start = Instant::now();
    let ranges = taskpool::split_ranges(probe_len, ctx.config.morsel_rows);
    let parts = taskpool::try_run_ranges(ctx.config.parallelism, &ranges, |range| {
        parallel::morsel_checkpoint(ctx)?;
        let t0 = parallel::morsel_t0(ctx);
        let start = Instant::now();
        let local = fold_range(range.clone(), &lookup, build_left, &keyer, args, aggs, ctx)?;
        let elapsed = start.elapsed();
        parallel::note_morsel(ctx, &range, t0, local.keys.len() as u64);
        Ok::<_, crate::error::Error>((local, elapsed))
    })?;

    // Merge partials in morsel order: group ids follow first occurrence
    // across morsels, matching the serial probe's group order.
    let mut busy = Duration::ZERO;
    let mut ids: FxHashMap<K, usize> = FxHashMap::default();
    let mut folded = FoldedGroups::default();
    for part in parts {
        let (local, elapsed) = part?;
        busy += elapsed;
        folded.pairs += local.folded.pairs;
        for ((key, first), partials) in
            local.keys.into_iter().zip(local.folded.firsts).zip(local.folded.accs)
        {
            match ids.get(&key) {
                Some(&gid) => {
                    for (acc, partial) in folded.accs[gid].iter_mut().zip(partials) {
                        acc.merge(partial)?;
                    }
                }
                None => {
                    ids.insert(key, folded.firsts.len());
                    folded.firsts.push(first);
                    folded.accs.push(partials);
                }
            }
        }
    }
    Ok((folded, busy.saturating_sub(probe_start.elapsed())))
}

/// The probe-and-fold inner loop over one probe-row range.
#[allow(clippy::too_many_arguments)] // the fold's full evaluation state
fn fold_range<'a, K, KF, LF>(
    range: std::ops::Range<usize>,
    lookup: &LF,
    build_left: bool,
    keyer: &KF,
    args: &[FusedArg],
    aggs: &[AggExpr],
    ctx: &ExecContext<'_>,
) -> Result<LocalGroups<K>>
where
    K: Eq + Hash + Clone,
    KF: Fn(usize, usize) -> K,
    LF: Fn(usize) -> Option<&'a Vec<usize>>,
{
    let mut ids: FxHashMap<K, usize> = fx_map_with_capacity(64);
    let mut local = LocalGroups { keys: Vec::new(), folded: FoldedGroups::default() };
    for probe_row in range {
        if probe_row % super::CHECK_STRIDE == 0 {
            ctx.check()?;
        }
        let Some(matches) = lookup(probe_row) else { continue };
        for &build_row in matches {
            let (li, ri) = if build_left { (build_row, probe_row) } else { (probe_row, build_row) };
            let key = keyer(li, ri);
            let id = match ids.get(&key) {
                Some(&id) => id,
                None => {
                    let id = local.keys.len();
                    ids.insert(key.clone(), id);
                    local.keys.push(key);
                    local.folded.firsts.push((li, ri));
                    local.folded.accs.push(
                        args.iter()
                            .zip(aggs)
                            .map(|(arg, a)| Acc::new(a, arg.data_type()))
                            .collect(),
                    );
                    id
                }
            };
            for (ai, arg) in args.iter().enumerate() {
                let v = arg.value(li, ri);
                local.folded.accs[id][ai].update(v.as_ref())?;
            }
            local.folded.pairs += 1;
        }
    }
    Ok(local)
}

/// Estimated bytes per join-output row the unfused plan would have
/// materialized: the distinct columns the aggregate reads, sized by type.
fn per_pair_bytes(
    group: &[BoundExpr],
    aggs: &[AggExpr],
    lt: &Table,
    rt: &Table,
    l_width: usize,
) -> u64 {
    let mut cols = std::collections::BTreeSet::new();
    for g in group {
        cols.extend(g.referenced_columns());
    }
    for a in aggs {
        if let Some(arg) = &a.arg {
            cols.extend(arg.referenced_columns());
        }
    }
    let bytes: u64 = cols
        .into_iter()
        .map(|c| {
            let dt = if c < l_width {
                lt.schema().field(c).data_type
            } else {
                rt.schema().field(c - l_width).data_type
            };
            match dt {
                DataType::Int64 | DataType::Float64 => 8,
                DataType::Bool => 1,
                DataType::Date => 4,
                DataType::Utf8 | DataType::Blob => 24,
            }
        })
        .sum();
    // Even a COUNT(*)-only aggregate forces the unfused join to carry at
    // least one column per row.
    bytes.max(8)
}
