//! The vectorized executor.
//!
//! Fully materialized, operator-at-a-time execution over columnar tables.
//! Every operator records its own wall time (children excluded) into the
//! session [`Profiler`] — the data behind the paper's Fig. 10 clause
//! breakdown.

pub mod fused;
pub mod parallel;
pub mod symmetric;

use std::time::{Duration, Instant};

use crate::catalog::Catalog;
use crate::column::{Column, Key};
use crate::error::{Error, Result};
use crate::expr::{BoundExpr, EvalContext};
use crate::hash::{fx_map_with_capacity, FxHashMap};
use crate::plan::logical::{AggExpr, AggFunc, JoinAlgorithm, LogicalPlan};
use crate::profile::{OperatorKind, Profiler};
use crate::table::{Schema, Table};
use crate::udf::UdfRegistry;
use crate::value::{DataType, Value};

/// Executor tuning knobs.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Rows per batch consumed alternately by the symmetric hash join.
    pub symmetric_batch_rows: usize,
    /// In-memory bucket budget of the symmetric hash join before the
    /// bucket-level LRU starts evicting (paper Sec. IV-B rule 3).
    pub symmetric_bucket_budget: usize,
    /// Worker threads for morsel-parallel operators. `1` (the default)
    /// takes the serial reference path, bit-for-bit.
    pub parallelism: usize,
    /// Rows per morsel when an operator goes parallel.
    pub morsel_rows: usize,
    /// Inputs below this row count stay serial even when `parallelism > 1`
    /// (fan-out overhead dominates on small tables).
    pub min_parallel_rows: usize,
    /// Entries in the ad-hoc `Database::execute` plan cache (normalized SQL
    /// text → optimized plan, validated against the catalog epoch). `0`
    /// disables the cache.
    pub plan_cache_capacity: usize,
    /// Queries slower than this are traced (even with the collector off)
    /// and their full span tree is handed to the database's slow-query
    /// hook. `None` (the default) disables the slow-query log.
    pub slow_query_threshold: Option<Duration>,
    /// Per-statement wall-clock deadline. Checked cooperatively at
    /// operator and morsel boundaries (and on a stride inside serial
    /// loops), so a timed-out query aborts within a few morsels of the
    /// deadline with [`govern::QueryError::TimedOut`]. `None` (the
    /// default) disables the deadline.
    pub query_timeout: Option<Duration>,
    /// Memory budget in bytes shared by every memory-hungry operator of
    /// the session (hash-join builds, group-by tables, fused
    /// accumulators). Reservations past the budget fail with
    /// [`govern::QueryError::BudgetExceeded`]. `0` (the default)
    /// disables the budget.
    pub memory_budget: u64,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            symmetric_batch_rows: 1024,
            symmetric_bucket_budget: 1 << 16,
            parallelism: 1,
            morsel_rows: 4096,
            min_parallel_rows: 4096,
            plan_cache_capacity: 64,
            slow_query_threshold: None,
            query_timeout: None,
            memory_budget: 0,
        }
    }
}

/// Everything execution needs.
pub struct ExecContext<'a> {
    pub catalog: &'a Catalog,
    pub udfs: &'a UdfRegistry,
    pub profiler: &'a Profiler,
    pub config: &'a ExecConfig,
    /// Span collector; [`obs::disabled`] when the session is untraced.
    pub tracer: &'a obs::Collector,
    /// Span operator spans nest under; `NONE` disables tracing for the
    /// whole subtree (the zero-cost-when-off path — no atomics, no lock).
    pub span: obs::SpanId,
    /// Cancellation + deadline checkpoint. [`govern::Governor::unrestricted`]
    /// (a single never-taken branch per check) when governance is off.
    pub governor: govern::Governor,
    /// Session memory budget; `None` when disabled.
    pub budget: Option<std::sync::Arc<govern::MemoryBudget>>,
}

impl<'a> ExecContext<'a> {
    fn eval_ctx(&self) -> EvalContext<'a> {
        EvalContext { udfs: self.udfs }
    }

    /// The same context with operator spans nesting under `span`.
    pub fn with_span(&self, span: obs::SpanId) -> ExecContext<'a> {
        ExecContext {
            catalog: self.catalog,
            udfs: self.udfs,
            profiler: self.profiler,
            config: self.config,
            tracer: self.tracer,
            span,
            governor: self.governor.clone(),
            budget: self.budget.clone(),
        }
    }

    /// Cooperative governance checkpoint: errors when the statement was
    /// canceled or overran its deadline.
    #[inline]
    pub fn check(&self) -> Result<()> {
        self.governor.check().map_err(Error::Governance)
    }

    /// Reserves `bytes` against the session memory budget (no-op when no
    /// budget is configured). Hold the returned guard for the lifetime of
    /// the allocation it covers; dropping it releases the bytes.
    pub fn reserve(&self, site: &str, bytes: u64) -> Result<Option<govern::Reservation>> {
        match &self.budget {
            None => Ok(None),
            Some(budget) => budget.reserve(site, bytes).map(Some).map_err(Error::Governance),
        }
    }

    /// Records a serial operator into the profiler and the current span
    /// (one elapsed value feeds both, so the views cannot disagree).
    fn record(&self, kind: OperatorKind, elapsed: Duration, rows_out: usize) {
        self.profiler.record(kind, elapsed, rows_out);
        self.note_span(kind, elapsed, elapsed, 0, rows_out, 0);
    }

    /// Records a (possibly) parallel operator: wall time plus summed
    /// worker busy time.
    fn record_parallel(
        &self,
        kind: OperatorKind,
        elapsed: Duration,
        busy: Duration,
        rows_out: usize,
    ) {
        self.profiler.record_parallel(kind, elapsed, busy, rows_out);
        self.note_span(kind, elapsed, busy, 0, rows_out, 0);
    }

    /// Records a fused operator invocation with its extra counters.
    #[allow(clippy::too_many_arguments)]
    fn record_fused(
        &self,
        kind: OperatorKind,
        elapsed: Duration,
        busy: Duration,
        rows_in: usize,
        rows_out: usize,
        bytes_not_materialized: u64,
    ) {
        self.profiler.record_fused(kind, elapsed, busy, rows_in, rows_out, bytes_not_materialized);
        self.note_span(kind, elapsed, busy, rows_in, rows_out, bytes_not_materialized);
    }

    fn note_span(
        &self,
        kind: OperatorKind,
        elapsed: Duration,
        busy: Duration,
        rows_in: usize,
        rows_out: usize,
        bytes_not_materialized: u64,
    ) {
        if self.span.is_none() {
            return;
        }
        self.tracer.note_op(
            self.span,
            kind.label(),
            obs::OpMetrics {
                self_ns: elapsed.as_nanos() as u64,
                busy_ns: busy.as_nanos() as u64,
                rows_in: rows_in as u64,
                rows_out: rows_out as u64,
                bytes_not_materialized,
            },
        );
    }
}

// Morsel workers borrow the context across threads; keep it shareable.
const _: fn() = || {
    fn assert_sync<T: Sync>() {}
    assert_sync::<ExecContext<'static>>();
};

/// Executes a plan to a materialized table. When the context carries a
/// live span, every plan node gets an operator span mirroring the plan
/// tree (children nest under their parent operator).
pub fn execute(plan: &LogicalPlan, ctx: &ExecContext<'_>) -> Result<Table> {
    if ctx.span.is_none() {
        return execute_node(plan, ctx);
    }
    let span = ctx.tracer.child(
        ctx.span,
        obs::SpanKind::Operator,
        variant_name(plan),
        &plan.node_header(),
    );
    let inner = ctx.with_span(span);
    let out = execute_node(plan, &inner);
    ctx.tracer.finish(span);
    out
}

/// The plan variant's name, used as the operator span's initial label
/// (the recorded [`OperatorKind`] overwrites it — e.g. a `Filter` whose
/// predicate calls a UDF reports as `UdfEval`).
fn variant_name(plan: &LogicalPlan) -> &'static str {
    match plan {
        LogicalPlan::Scan { .. } => "Scan",
        LogicalPlan::Values { .. } => "Values",
        LogicalPlan::MultiJoin { .. } => "MultiJoin",
        LogicalPlan::Filter { .. } => "Filter",
        LogicalPlan::Project { .. } => "Project",
        LogicalPlan::Join { .. } => "Join",
        LogicalPlan::Cross { .. } => "Join",
        LogicalPlan::JoinAggregate { .. } => "JoinAggregate",
        LogicalPlan::Aggregate { .. } => "GroupBy",
        LogicalPlan::Sort { .. } => "Sort",
        LogicalPlan::Limit { .. } => "Limit",
    }
}

/// Serial row loops check the governor once per this many rows, keeping
/// cancellation latency at morsel scale without measurable per-row cost.
pub(crate) const CHECK_STRIDE: usize = 4096;

fn execute_node(plan: &LogicalPlan, ctx: &ExecContext<'_>) -> Result<Table> {
    ctx.check()?;
    match plan {
        LogicalPlan::Scan { table, .. } => {
            let start = Instant::now();
            let t = ctx
                .catalog
                .table(table)
                .ok_or_else(|| Error::NotFound(format!("table '{table}'")))?;
            let out = (*t).clone();
            ctx.record(OperatorKind::Scan, start.elapsed(), out.num_rows());
            Ok(out)
        }
        LogicalPlan::Values { table } => Ok(table.clone()),
        LogicalPlan::MultiJoin { .. } => {
            Err(Error::Plan("MultiJoin reached the executor; run the optimizer first".into()))
        }
        LogicalPlan::Filter { input, predicate } => {
            let t = execute(input, ctx)?;
            let start = Instant::now();
            let kind =
                if predicate.contains_udf() { OperatorKind::UdfEval } else { OperatorKind::Filter };
            if parallel::active(ctx.config, t.num_rows()) {
                let (out, busy) = parallel::filter(&t, predicate, ctx)?;
                ctx.record_parallel(kind, start.elapsed(), busy, out.num_rows());
                return Ok(out);
            }
            let mask_col = predicate.eval(&t, &ctx.eval_ctx())?;
            let mask = mask_col.as_bool_slice()?;
            let out = t.filter(mask);
            ctx.record(kind, start.elapsed(), out.num_rows());
            Ok(out)
        }
        LogicalPlan::Project { input, exprs, schema } => {
            let t = execute(input, ctx)?;
            let start = Instant::now();
            if parallel::active(ctx.config, t.num_rows()) {
                let (out, busy) = parallel::project(&t, exprs, schema, ctx)?;
                ctx.record_parallel(OperatorKind::Project, start.elapsed(), busy, out.num_rows());
                return Ok(out);
            }
            let cols: Vec<Column> = exprs
                .iter()
                .zip(schema.fields())
                .map(|(e, f)| coerce_column(e.eval(&t, &ctx.eval_ctx())?, f.data_type))
                .collect::<Result<_>>()?;
            let out = Table::new(schema.clone(), cols)?;
            ctx.record(OperatorKind::Project, start.elapsed(), out.num_rows());
            Ok(out)
        }
        LogicalPlan::Join { left, right, keys, residual, algorithm, output, schema } => {
            let lt = execute(left, ctx)?;
            let rt = execute(right, ctx)?;
            let start = Instant::now();
            let (out, extra_busy) = match algorithm {
                JoinAlgorithm::Hash => {
                    hash_join(&lt, &rt, keys, residual.as_ref(), output.as_deref(), schema, ctx)?
                }
                JoinAlgorithm::SymmetricHash => (
                    symmetric::symmetric_hash_join(
                        &lt,
                        &rt,
                        keys,
                        residual.as_ref(),
                        output.as_deref(),
                        schema,
                        ctx,
                    )?,
                    std::time::Duration::ZERO,
                ),
            };
            let elapsed = start.elapsed();
            ctx.record_parallel(OperatorKind::Join, elapsed, elapsed + extra_busy, out.num_rows());
            Ok(out)
        }
        LogicalPlan::Cross { left, right, schema } => {
            let lt = execute(left, ctx)?;
            let rt = execute(right, ctx)?;
            let start = Instant::now();
            let (ln, rn) = (lt.num_rows(), rt.num_rows());
            let mut l_idx = Vec::with_capacity(ln * rn);
            let mut r_idx = Vec::with_capacity(ln * rn);
            for i in 0..ln {
                if i % CHECK_STRIDE == 0 {
                    ctx.check()?;
                }
                for j in 0..rn {
                    l_idx.push(i);
                    r_idx.push(j);
                }
            }
            let out = glue_join(&lt, &l_idx, &rt, &r_idx, None, None, schema, ctx)?;
            ctx.record(OperatorKind::Join, start.elapsed(), out.num_rows());
            Ok(out)
        }
        LogicalPlan::JoinAggregate { left, right, keys, group, aggs, schema } => {
            let lt = execute(left, ctx)?;
            let rt = execute(right, ctx)?;
            let span_t0 = if ctx.span.is_some() { ctx.tracer.now_ns() } else { 0 };
            let start = Instant::now();
            let (out, m) = fused::join_aggregate(&lt, &rt, keys, group, aggs, schema, ctx)?;
            let elapsed = start.elapsed();
            // Build (serial argument/key evaluation + hash build) and
            // probe (morsel-parallel fold + emit) are distinct profiler
            // invocations: lumping them made busy/wall meaningless as an
            // effective-parallelism ratio, since the serial build diluted
            // the parallel probe's busy time.
            let probe = elapsed.saturating_sub(m.build);
            ctx.record_parallel(OperatorKind::JoinAggregate, m.build, m.build, 0);
            ctx.record_fused(
                OperatorKind::JoinAggregate,
                probe,
                probe + m.extra_busy,
                m.rows_in,
                out.num_rows(),
                m.bytes_not_materialized,
            );
            if ctx.span.is_some() {
                let build_end = span_t0 + m.build.as_nanos() as u64;
                ctx.tracer.add_complete(
                    ctx.span,
                    obs::SpanKind::Phase,
                    "build",
                    "serial: eval keys/args, hash build",
                    span_t0,
                    build_end,
                    u32::MAX,
                    0,
                );
                ctx.tracer.add_complete(
                    ctx.span,
                    obs::SpanKind::Phase,
                    "probe",
                    "fold probe + emit",
                    build_end,
                    ctx.tracer.now_ns(),
                    u32::MAX,
                    out.num_rows() as u64,
                );
            }
            Ok(out)
        }
        LogicalPlan::Aggregate { input, group, aggs, schema } => {
            let t = execute(input, ctx)?;
            let start = Instant::now();
            if parallel::active(ctx.config, t.num_rows()) {
                let (out, busy) = parallel::aggregate(&t, group, aggs, schema, ctx)?;
                ctx.record_parallel(OperatorKind::GroupBy, start.elapsed(), busy, out.num_rows());
                return Ok(out);
            }
            let out = aggregate(&t, group, aggs, schema, ctx)?;
            ctx.record(OperatorKind::GroupBy, start.elapsed(), out.num_rows());
            Ok(out)
        }
        LogicalPlan::Sort { input, keys } => {
            let t = execute(input, ctx)?;
            let start = Instant::now();
            let key_cols: Vec<(Column, bool)> = keys
                .iter()
                .map(|(e, asc)| Ok((e.eval(&t, &ctx.eval_ctx())?, *asc)))
                .collect::<Result<_>>()?;
            let mut idx: Vec<usize> = (0..t.num_rows()).collect();
            idx.sort_by(|&a, &b| {
                for (col, asc) in &key_cols {
                    let ord = col.value(a).total_cmp(&col.value(b));
                    let ord = if *asc { ord } else { ord.reverse() };
                    if !ord.is_eq() {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let out = t.take(&idx);
            ctx.record(OperatorKind::Sort, start.elapsed(), out.num_rows());
            Ok(out)
        }
        LogicalPlan::Limit { input, n } => {
            let t = execute(input, ctx)?;
            let start = Instant::now();
            let keep = (*n as usize).min(t.num_rows());
            let idx: Vec<usize> = (0..keep).collect();
            let out = t.take(&idx);
            ctx.record(OperatorKind::Limit, start.elapsed(), out.num_rows());
            Ok(out)
        }
    }
}

/// Coerces a column to the declared type where lossless (Int64 -> Float64
/// and integral Float64 -> Int64); errors otherwise.
fn coerce_column(col: Column, target: DataType) -> Result<Column> {
    if col.data_type() == target {
        return Ok(col);
    }
    match (&col, target) {
        (Column::Int64(v), DataType::Float64) => {
            Ok(Column::Float64(v.iter().map(|&x| x as f64).collect()))
        }
        (Column::Float64(v), DataType::Int64) if v.iter().all(|x| x.fract() == 0.0) => {
            Ok(Column::Int64(v.iter().map(|&x| x as i64).collect()))
        }
        _ => Err(Error::Type(format!("cannot coerce {} column to {}", col.data_type(), target))),
    }
}

#[allow(clippy::too_many_arguments)] // mirrors the Join node's fields
/// Combines matched row indices from both sides into the output table,
/// gathering only the columns in `output` (all when `None`), and applies
/// the residual predicate afterwards. A residual referencing a masked-out
/// column forces a full gather first.
pub(crate) fn glue_join(
    lt: &Table,
    l_idx: &[usize],
    rt: &Table,
    r_idx: &[usize],
    residual: Option<&BoundExpr>,
    output: Option<&[usize]>,
    schema: &Schema,
    ctx: &ExecContext<'_>,
) -> Result<Table> {
    let l_width = lt.num_columns();
    let gather = |col: usize| -> Column {
        if col < l_width {
            lt.column(col).take(l_idx)
        } else {
            rt.column(col - l_width).take(r_idx)
        }
    };
    match (output, residual) {
        (None, residual) => {
            let cols: Vec<Column> = (0..l_width + rt.num_columns()).map(gather).collect();
            let out = Table::new(schema.clone(), cols)?;
            apply_residual(out, residual, ctx)
        }
        (Some(mask), None) => {
            let cols: Vec<Column> = mask.iter().map(|&c| gather(c)).collect();
            Table::new(schema.clone(), cols)
        }
        (Some(mask), Some(res)) => {
            // Gather the masked columns plus whatever the residual needs,
            // filter, then drop the extras.
            let mut cols_needed: Vec<usize> = mask.to_vec();
            for c in res.referenced_columns() {
                if !cols_needed.contains(&c) {
                    cols_needed.push(c);
                }
            }
            let mut fields: Vec<crate::table::Field> = schema.fields().to_vec();
            let all_fields: Vec<crate::table::Field> =
                lt.schema().fields().iter().chain(rt.schema().fields()).cloned().collect();
            for &c in &cols_needed[mask.len()..] {
                fields.push(all_fields[c].clone());
            }
            let cols: Vec<Column> = cols_needed.iter().map(|&c| gather(c)).collect();
            let wide = Table::new(Schema::new(fields), cols)?;
            // Remap the residual onto the gathered layout.
            let mut remapped = res.clone();
            let mut map = vec![usize::MAX; l_width + rt.num_columns()];
            for (pos, &c) in cols_needed.iter().enumerate() {
                map[c] = pos;
            }
            remapped.remap_columns(&map);
            let filtered = apply_residual(wide, Some(&remapped), ctx)?;
            let cols: Vec<Column> = (0..mask.len()).map(|i| filtered.column(i).clone()).collect();
            Table::new(schema.clone(), cols)
        }
    }
}

/// Multi-key hash keys for a row set.
pub(crate) fn composite_keys(
    table: &Table,
    exprs: &[BoundExpr],
    ctx: &ExecContext<'_>,
) -> Result<Vec<Vec<Key>>> {
    let cols: Vec<Column> =
        exprs.iter().map(|e| e.eval(table, &ctx.eval_ctx())).collect::<Result<_>>()?;
    let n = table.num_rows();
    let mut out = Vec::with_capacity(n);
    for row in 0..n {
        out.push(cols.iter().map(|c| c.key_at(row)).collect());
    }
    Ok(out)
}

pub(crate) fn apply_residual(
    out: Table,
    residual: Option<&BoundExpr>,
    ctx: &ExecContext<'_>,
) -> Result<Table> {
    match residual {
        None => Ok(out),
        Some(pred) => {
            let mask_col = pred.eval(&out, &ctx.eval_ctx())?;
            let mask = mask_col.as_bool_slice()?;
            Ok(out.filter(mask))
        }
    }
}

/// Evaluated join-key columns with an allocation-free fast path: up to two
/// integer key columns pack into one `i128`.
enum JoinKeys {
    /// Packed integer keys (covers the DL2SQL workload's joins).
    Packed(Vec<i128>),
    /// At least one non-integer key column: the join recomputes general
    /// composite keys for both sides.
    General,
}

fn join_keys(table: &Table, exprs: &[BoundExpr], ctx: &ExecContext<'_>) -> Result<JoinKeys> {
    let cols: Vec<Column> =
        exprs.iter().map(|e| e.eval(table, &ctx.eval_ctx())).collect::<Result<_>>()?;
    let ints: Option<Vec<&Vec<i64>>> = cols
        .iter()
        .map(|c| match c {
            Column::Int64(v) => Some(v),
            _ => None,
        })
        .collect();
    if let Some(ints) = ints {
        if ints.len() == 1 {
            return Ok(JoinKeys::Packed(ints[0].iter().map(|&a| a as i128).collect()));
        }
        if ints.len() == 2 {
            let packed = ints[0]
                .iter()
                .zip(ints[1].iter())
                .map(|(&a, &b)| ((a as i128) << 64) | (b as u64 as i128))
                .collect();
            return Ok(JoinKeys::Packed(packed));
        }
    }
    Ok(JoinKeys::General)
}

/// Rough per-entry footprint of a hash build table charged against the
/// memory budget: key bytes plus bucket-vector overhead and one row index.
pub(crate) fn build_bytes(rows: usize, key_bytes: usize) -> u64 {
    (rows as u64) * (key_bytes as u64 + 40)
}

/// Rough footprint of a group-by state table: per group, the key slot
/// plus one accumulator per aggregate.
pub(crate) fn group_state_bytes(groups: usize, aggs: usize) -> u64 {
    (groups as u64) * (48 + 48 * aggs as u64)
}

/// Hash join: serial build on the smaller side, probe either serially or
/// morsel-parallel. Returns the joined table plus any worker busy time the
/// parallel probe accrued beyond its own wall time (zero when serial), so
/// the caller can report wall + extra to the profiler.
fn hash_join(
    lt: &Table,
    rt: &Table,
    keys: &[(BoundExpr, BoundExpr)],
    residual: Option<&BoundExpr>,
    output: Option<&[usize]>,
    schema: &Schema,
    ctx: &ExecContext<'_>,
) -> Result<(Table, std::time::Duration)> {
    let l_keys: Vec<BoundExpr> = keys.iter().map(|(l, _)| l.clone()).collect();
    let r_keys: Vec<BoundExpr> = keys.iter().map(|(_, r)| r.clone()).collect();
    let lk = join_keys(lt, &l_keys, ctx)?;
    let rk = join_keys(rt, &r_keys, ctx)?;

    // Build on the smaller side.
    let build_left = lt.num_rows() <= rt.num_rows();
    let mut extra_busy = std::time::Duration::ZERO;
    let (build_rows, probe_rows) = match (&lk, &rk) {
        (JoinKeys::Packed(l), JoinKeys::Packed(r)) => {
            let (build, probe) = if build_left { (l, r) } else { (r, l) };
            let _build_mem = ctx.reserve("join.build", build_bytes(build.len(), 16))?;
            let mut table: FxHashMap<i128, Vec<usize>> = fx_map_with_capacity(build.len());
            for (row, &k) in build.iter().enumerate() {
                if row % CHECK_STRIDE == 0 {
                    ctx.check()?;
                }
                table.entry(k).or_default().push(row);
            }
            if parallel::active(ctx.config, probe.len()) {
                let probe_start = Instant::now();
                let (b, p, busy) = parallel::probe(probe.len(), |row| table.get(&probe[row]), ctx)?;
                extra_busy = busy.saturating_sub(probe_start.elapsed());
                (b, p)
            } else {
                let mut b = Vec::new();
                let mut p = Vec::new();
                for (probe_row, k) in probe.iter().enumerate() {
                    if probe_row % CHECK_STRIDE == 0 {
                        ctx.check()?;
                    }
                    if let Some(matches) = table.get(k) {
                        for &build_row in matches {
                            b.push(build_row);
                            p.push(probe_row);
                        }
                    }
                }
                (b, p)
            }
        }
        _ => {
            // At least one side has non-integer keys: use general keys for
            // both (recomputed, so Int64↔Float64 equality unifies through
            // `Value::to_key`).
            let lg = composite_keys(lt, &l_keys, ctx)?;
            let rg = composite_keys(rt, &r_keys, ctx)?;
            let (build, probe) = if build_left { (&lg, &rg) } else { (&rg, &lg) };
            let _build_mem = ctx.reserve("join.build", build_bytes(build.len(), 32))?;
            let mut table: FxHashMap<&[Key], Vec<usize>> = fx_map_with_capacity(build.len());
            for (row, k) in build.iter().enumerate() {
                if row % CHECK_STRIDE == 0 {
                    ctx.check()?;
                }
                table.entry(k.as_slice()).or_default().push(row);
            }
            if parallel::active(ctx.config, probe.len()) {
                let probe_start = Instant::now();
                let (b, p, busy) =
                    parallel::probe(probe.len(), |row| table.get(probe[row].as_slice()), ctx)?;
                extra_busy = busy.saturating_sub(probe_start.elapsed());
                (b, p)
            } else {
                let mut b = Vec::new();
                let mut p = Vec::new();
                for (probe_row, k) in probe.iter().enumerate() {
                    if probe_row % CHECK_STRIDE == 0 {
                        ctx.check()?;
                    }
                    if let Some(matches) = table.get(k.as_slice()) {
                        for &build_row in matches {
                            b.push(build_row);
                            p.push(probe_row);
                        }
                    }
                }
                (b, p)
            }
        }
    };
    let (l_idx, r_idx) =
        if build_left { (build_rows, probe_rows) } else { (probe_rows, build_rows) };
    let out = glue_join(lt, &l_idx, rt, &r_idx, residual, output, schema, ctx)?;
    Ok((out, extra_busy))
}

// ---------------------------------------------------------------------------
// aggregation
// ---------------------------------------------------------------------------

enum Acc {
    Count(i64),
    CountDistinct(std::collections::HashSet<Key>),
    SumI(i64),
    SumF(f64),
    Avg {
        sum: f64,
        n: u64,
    },
    Min(Option<Value>),
    Max(Option<Value>),
    /// Welford accumulator for the sample standard deviation.
    Std {
        n: u64,
        mean: f64,
        m2: f64,
    },
}

impl Acc {
    fn new(agg: &AggExpr, arg_type: Option<DataType>) -> Acc {
        match agg.func {
            AggFunc::Count if agg.distinct => Acc::CountDistinct(Default::default()),
            AggFunc::Count => Acc::Count(0),
            AggFunc::Sum => {
                if arg_type == Some(DataType::Int64) {
                    Acc::SumI(0)
                } else {
                    Acc::SumF(0.0)
                }
            }
            AggFunc::Avg => Acc::Avg { sum: 0.0, n: 0 },
            AggFunc::Min => Acc::Min(None),
            AggFunc::Max => Acc::Max(None),
            AggFunc::StddevSamp => Acc::Std { n: 0, mean: 0.0, m2: 0.0 },
        }
    }

    fn update(&mut self, value: Option<&Value>) -> Result<()> {
        match self {
            Acc::Count(c) => {
                // COUNT(*) counts rows; COUNT(bool_expr) counts trues.
                let add = match value {
                    None => 1,
                    Some(Value::Bool(b)) => *b as i64,
                    Some(_) => 1,
                };
                *c += add;
            }
            Acc::CountDistinct(set) => {
                if let Some(v) = value {
                    set.insert(v.to_key());
                }
            }
            Acc::SumI(s) => *s += value.expect("SUM has an argument").as_i64()?,
            Acc::SumF(s) => *s += value.expect("SUM has an argument").as_f64()?,
            Acc::Avg { sum, n } => {
                *sum += value.expect("AVG has an argument").as_f64()?;
                *n += 1;
            }
            Acc::Min(cur) => {
                let v = value.expect("MIN has an argument");
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                    *cur = Some(v.clone());
                }
            }
            Acc::Max(cur) => {
                let v = value.expect("MAX has an argument");
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                    *cur = Some(v.clone());
                }
            }
            Acc::Std { n, mean, m2 } => {
                let x = value.expect("stddevSamp has an argument").as_f64()?;
                *n += 1;
                let delta = x - *mean;
                *mean += delta / *n as f64;
                *m2 += delta * (x - *mean);
            }
        }
        Ok(())
    }

    /// Folds another accumulator of the same shape into this one. The
    /// parallel group-by merges per-morsel partials in morsel order, so the
    /// combined state depends only on the morsel decomposition, not on
    /// worker scheduling.
    fn merge(&mut self, other: Acc) -> Result<()> {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::CountDistinct(a), Acc::CountDistinct(b)) => a.extend(b),
            (Acc::SumI(a), Acc::SumI(b)) => *a += b,
            (Acc::SumF(a), Acc::SumF(b)) => *a += b,
            (Acc::Avg { sum, n }, Acc::Avg { sum: sum2, n: n2 }) => {
                *sum += sum2;
                *n += n2;
            }
            (Acc::Min(cur), Acc::Min(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                        *cur = Some(v);
                    }
                }
            }
            (Acc::Max(cur), Acc::Max(other)) => {
                if let Some(v) = other {
                    if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                        *cur = Some(v);
                    }
                }
            }
            (Acc::Std { n, mean, m2 }, Acc::Std { n: n2, mean: mean2, m2: m2_2 }) => {
                // Chan et al. pairwise variance combination.
                if n2 > 0 {
                    if *n == 0 {
                        (*n, *mean, *m2) = (n2, mean2, m2_2);
                    } else {
                        let (na, nb) = (*n as f64, n2 as f64);
                        let delta = mean2 - *mean;
                        *mean += delta * nb / (na + nb);
                        *m2 += m2_2 + delta * delta * na * nb / (na + nb);
                        *n += n2;
                    }
                }
            }
            _ => {
                return Err(Error::Plan(
                    "mismatched accumulator shapes in parallel aggregate merge".into(),
                ))
            }
        }
        Ok(())
    }

    fn finish(&self, output_type: DataType) -> Value {
        match self {
            Acc::Count(c) => Value::Int64(*c),
            Acc::CountDistinct(set) => Value::Int64(set.len() as i64),
            Acc::SumI(s) => Value::Int64(*s),
            Acc::SumF(s) => Value::Float64(*s),
            Acc::Avg { sum, n } => Value::Float64(if *n == 0 { 0.0 } else { sum / *n as f64 }),
            Acc::Min(v) | Acc::Max(v) => v.clone().unwrap_or(zero_of(output_type)),
            Acc::Std { n, m2, .. } => {
                Value::Float64(if *n < 2 { 0.0 } else { (m2 / (*n as f64 - 1.0)).sqrt() })
            }
        }
    }
}

/// The zero value MIN/MAX return over empty input (ClickHouse-style; the
/// engine has no NULLs).
fn zero_of(dt: DataType) -> Value {
    match dt {
        DataType::Int64 => Value::Int64(0),
        DataType::Float64 => Value::Float64(0.0),
        DataType::Bool => Value::Bool(false),
        DataType::Utf8 => Value::Utf8(String::new()),
        DataType::Date => Value::Date(0),
        DataType::Blob => Value::Blob(std::sync::Arc::new(Vec::new())),
    }
}

/// Assigns a group id to every row from the evaluated key columns,
/// returning each group's first row (in first-occurrence order) and the
/// per-row group ids. Up to two `Int64` key columns take an
/// allocation-free packed path (the DL2SQL group-by shape); the general
/// path gathers composite keys columnar-wise via [`Column::key_at`].
pub(crate) fn group_rows(key_cols: &[Column], n: usize) -> (Vec<usize>, Vec<usize>) {
    let mut group_first_row: Vec<usize> = Vec::new();
    let mut row_group: Vec<usize> = Vec::with_capacity(n);
    let cap = (n / 4 + 16).min(1 << 16);

    let ints: Option<Vec<&[i64]>> = if key_cols.is_empty() || key_cols.len() > 2 {
        None
    } else {
        key_cols.iter().map(Column::as_i64_slice).collect()
    };
    if let Some(ints) = ints {
        let mut ids: FxHashMap<i128, usize> = fx_map_with_capacity(cap);
        for row in 0..n {
            let key = match ints.as_slice() {
                [c] => c[row] as i128,
                [a, b] => ((a[row] as i128) << 64) | (b[row] as u64 as i128),
                _ => unreachable!(),
            };
            let next = group_first_row.len();
            let id = *ids.entry(key).or_insert_with(|| {
                group_first_row.push(row);
                next
            });
            row_group.push(id);
        }
        return (group_first_row, row_group);
    }

    let key_vecs: Vec<Vec<Key>> = key_cols.iter().map(Column::keys).collect();
    let mut ids: FxHashMap<Vec<Key>, usize> = fx_map_with_capacity(cap);
    for row in 0..n {
        let key: Vec<Key> = key_vecs.iter().map(|kv| kv[row].clone()).collect();
        let next = group_first_row.len();
        let id = *ids.entry(key).or_insert_with(|| {
            group_first_row.push(row);
            next
        });
        row_group.push(id);
    }
    (group_first_row, row_group)
}

fn aggregate(
    t: &Table,
    group: &[BoundExpr],
    aggs: &[AggExpr],
    schema: &Schema,
    ctx: &ExecContext<'_>,
) -> Result<Table> {
    let n = t.num_rows();
    let key_cols: Vec<Column> =
        group.iter().map(|e| e.eval(t, &ctx.eval_ctx())).collect::<Result<_>>()?;
    let arg_cols: Vec<Option<Column>> = aggs
        .iter()
        .map(|a| a.arg.as_ref().map(|e| e.eval(t, &ctx.eval_ctx())).transpose())
        .collect::<Result<_>>()?;

    // Group id per row.
    let (group_first_row, row_group) = group_rows(&key_cols, n);
    // Global aggregate: exactly one group even with zero input rows.
    let n_groups =
        if group.is_empty() { 1.max(group_first_row.len()) } else { group_first_row.len() };
    let _group_mem = ctx.reserve("agg.groups", group_state_bytes(n_groups, aggs.len()))?;

    // Accumulate.
    let mut accs: Vec<Vec<Acc>> = (0..n_groups)
        .map(|_| {
            aggs.iter()
                .zip(&arg_cols)
                .map(|(a, c)| Acc::new(a, c.as_ref().map(Column::data_type)))
                .collect()
        })
        .collect();
    #[allow(clippy::needless_range_loop)] // row drives parallel column reads
    for row in 0..n {
        if row % CHECK_STRIDE == 0 {
            ctx.check()?;
        }
        let g = if group.is_empty() { 0 } else { row_group[row] };
        for (ai, col) in arg_cols.iter().enumerate() {
            let v = col.as_ref().map(|c| c.value(row));
            accs[g][ai].update(v.as_ref())?;
        }
    }

    // Emit.
    #[allow(clippy::needless_range_loop)]
    let mut cols: Vec<Column> =
        schema.fields().iter().map(|f| Column::empty(f.data_type)).collect();
    #[allow(clippy::needless_range_loop)] // g indexes accumulators and first-row table
    for g in 0..n_groups {
        for (ki, kc) in key_cols.iter().enumerate() {
            let row = *group_first_row.get(g).unwrap_or(&0);
            cols[ki].push(kc.value(row))?;
        }
        for (ai, acc) in accs[g].iter().enumerate() {
            let field = schema.field(group.len() + ai);
            cols[group.len() + ai].push(acc.finish(field.data_type))?;
        }
    }
    Table::new(schema.clone(), cols)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Field;

    fn ctx_parts() -> (Catalog, UdfRegistry, Profiler, ExecConfig) {
        (Catalog::new(), UdfRegistry::new(), Profiler::new(), ExecConfig::default())
    }

    fn sample_table() -> Table {
        Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Float64)]),
            vec![
                Column::Int64(vec![1, 2, 1, 2, 3]),
                Column::Float64(vec![10.0, 20.0, 30.0, 40.0, 50.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn filter_executes_mask() {
        let (catalog, udfs, profiler, config) = ctx_parts();
        catalog.create_table("t", sample_table(), false).unwrap();
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };
        let plan = LogicalPlan::Filter {
            input: Box::new(LogicalPlan::Scan {
                table: "t".into(),
                schema: sample_table().schema().clone(),
            }),
            predicate: BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op: crate::sql::ast::BinOp::Eq,
                right: Box::new(BoundExpr::Literal(Value::Int64(1))),
            },
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.num_rows(), 2);
        // Profiler saw a scan and a filter.
        let kinds: Vec<_> = profiler.snapshot().iter().map(|(k, _)| *k).collect();
        assert!(kinds.contains(&OperatorKind::Scan));
        assert!(kinds.contains(&OperatorKind::Filter));
    }

    #[test]
    fn hash_join_matches_pairs() {
        let (catalog, udfs, profiler, config) = ctx_parts();
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };
        let lt = sample_table();
        let rt = Table::new(
            Schema::new(vec![
                Field::new("k2", DataType::Int64),
                Field::new("name", DataType::Utf8),
            ]),
            vec![Column::Int64(vec![1, 3]), Column::Utf8(vec!["one".into(), "three".into()])],
        )
        .unwrap();
        let schema =
            Schema::new(lt.schema().fields().iter().chain(rt.schema().fields()).cloned().collect());
        let (out, _) = hash_join(
            &lt,
            &rt,
            &[(BoundExpr::Column(0), BoundExpr::Column(0))],
            None,
            None,
            &schema,
            &ctx,
        )
        .unwrap();
        // k=1 matches twice, k=3 once.
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn aggregate_group_by() {
        let (catalog, udfs, profiler, config) = ctx_parts();
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };
        let t = sample_table();
        let schema = Schema::new(vec![
            Field::new("k", DataType::Int64),
            Field::new("s", DataType::Float64),
            Field::new("c", DataType::Int64),
        ]);
        let out = aggregate(
            &t,
            &[BoundExpr::Column(0)],
            &[
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(BoundExpr::Column(1)),
                    distinct: false,
                    output_name: "s".into(),
                },
                AggExpr {
                    func: AggFunc::Count,
                    arg: None,
                    distinct: false,
                    output_name: "c".into(),
                },
            ],
            &schema,
            &ctx,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 3);
        // Group 1 -> 40.0 over 2 rows.
        let k = out.column(0);
        let s = out.column(1);
        let c = out.column(2);
        let pos = (0..3).find(|&i| k.i64_at(i) == 1).unwrap();
        assert_eq!(s.f64_at(pos), 40.0);
        assert_eq!(c.i64_at(pos), 2);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let (catalog, udfs, profiler, config) = ctx_parts();
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };
        let t = Table::empty(sample_table().schema().clone());
        let schema = Schema::new(vec![Field::new("c", DataType::Int64)]);
        let out = aggregate(
            &t,
            &[],
            &[AggExpr {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
                output_name: "c".into(),
            }],
            &schema,
            &ctx,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column(0).i64_at(0), 0);
    }

    #[test]
    fn count_of_boolean_counts_trues() {
        let (catalog, udfs, profiler, config) = ctx_parts();
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };
        let t = Table::new(
            Schema::new(vec![Field::new("b", DataType::Bool)]),
            vec![Column::Bool(vec![true, false, true, true])],
        )
        .unwrap();
        let schema = Schema::new(vec![Field::new("c", DataType::Int64)]);
        let out = aggregate(
            &t,
            &[],
            &[AggExpr {
                func: AggFunc::Count,
                arg: Some(BoundExpr::Column(0)),
                distinct: false,
                output_name: "c".into(),
            }],
            &schema,
            &ctx,
        )
        .unwrap();
        assert_eq!(out.column(0).i64_at(0), 3);
    }

    #[test]
    fn parallel_operators_match_serial() {
        // A table big enough to split into several morsels.
        let n = 1000i64;
        let big = Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Float64)]),
            vec![
                Column::Int64((0..n).map(|i| i % 37).collect()),
                Column::Float64((0..n).map(|i| i as f64 * 0.5).collect()),
            ],
        )
        .unwrap();

        let run = |parallelism: usize| -> (Table, Table, Table) {
            let (catalog, udfs, profiler, mut config) = ctx_parts();
            config.parallelism = parallelism;
            config.morsel_rows = 64;
            config.min_parallel_rows = 0;
            catalog.create_table("t", big.clone(), false).unwrap();
            let ctx = ExecContext {
                catalog: &catalog,
                udfs: &udfs,
                profiler: &profiler,
                config: &config,
                tracer: obs::disabled(),
                span: obs::SpanId::NONE,
                governor: govern::Governor::unrestricted(),
                budget: None,
            };
            let scan = LogicalPlan::Scan { table: "t".into(), schema: big.schema().clone() };
            let filtered = execute(
                &LogicalPlan::Filter {
                    input: Box::new(scan.clone()),
                    predicate: BoundExpr::Binary {
                        left: Box::new(BoundExpr::Column(0)),
                        op: crate::sql::ast::BinOp::Lt,
                        right: Box::new(BoundExpr::Literal(Value::Int64(20))),
                    },
                },
                &ctx,
            )
            .unwrap();
            let (joined, _) = hash_join(
                &big,
                &big,
                &[(BoundExpr::Column(0), BoundExpr::Column(0))],
                None,
                None,
                &Schema::new(
                    big.schema().fields().iter().chain(big.schema().fields()).cloned().collect(),
                ),
                &ctx,
            )
            .unwrap();
            let agg_schema = Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("c", DataType::Int64),
                Field::new("mn", DataType::Float64),
            ]);
            let grouped = if parallelism > 1 {
                parallel::aggregate(
                    &big,
                    &[BoundExpr::Column(0)],
                    &[
                        AggExpr {
                            func: AggFunc::Count,
                            arg: None,
                            distinct: false,
                            output_name: "c".into(),
                        },
                        AggExpr {
                            func: AggFunc::Min,
                            arg: Some(BoundExpr::Column(1)),
                            distinct: false,
                            output_name: "mn".into(),
                        },
                    ],
                    &agg_schema,
                    &ctx,
                )
                .unwrap()
                .0
            } else {
                aggregate(
                    &big,
                    &[BoundExpr::Column(0)],
                    &[
                        AggExpr {
                            func: AggFunc::Count,
                            arg: None,
                            distinct: false,
                            output_name: "c".into(),
                        },
                        AggExpr {
                            func: AggFunc::Min,
                            arg: Some(BoundExpr::Column(1)),
                            distinct: false,
                            output_name: "mn".into(),
                        },
                    ],
                    &agg_schema,
                    &ctx,
                )
                .unwrap()
            };
            (filtered, joined, grouped)
        };

        let (f1, j1, g1) = run(1);
        for p in [2, 8] {
            let (fp, jp, gp) = run(p);
            assert_eq!(f1, fp, "filter differs at parallelism={p}");
            assert_eq!(j1, jp, "join differs at parallelism={p}");
            assert_eq!(g1, gp, "group-by differs at parallelism={p}");
        }
    }

    #[test]
    fn acc_merge_combines_partials() {
        // Merging per-morsel partials must agree with a single pass for the
        // exactly-mergeable accumulators, and with the definition for Std.
        let agg = |func, distinct| AggExpr {
            func,
            arg: Some(BoundExpr::Column(0)),
            distinct,
            output_name: "x".into(),
        };
        let data: Vec<f64> = vec![1.0, 4.0, 2.0, 8.0, 5.0, 7.0];
        let (lo, hi) = data.split_at(3);

        let mut whole = Acc::new(&agg(AggFunc::StddevSamp, false), Some(DataType::Float64));
        for &x in &data {
            whole.update(Some(&Value::Float64(x))).unwrap();
        }
        let mut a = Acc::new(&agg(AggFunc::StddevSamp, false), Some(DataType::Float64));
        let mut b = Acc::new(&agg(AggFunc::StddevSamp, false), Some(DataType::Float64));
        for &x in lo {
            a.update(Some(&Value::Float64(x))).unwrap();
        }
        for &x in hi {
            b.update(Some(&Value::Float64(x))).unwrap();
        }
        a.merge(b).unwrap();
        let serial = whole.finish(DataType::Float64).as_f64().unwrap();
        let merged = a.finish(DataType::Float64).as_f64().unwrap();
        assert!((serial - merged).abs() < 1e-12, "std merge: {serial} vs {merged}");

        let mut ca = Acc::new(&agg(AggFunc::Count, true), Some(DataType::Float64));
        let mut cb = Acc::new(&agg(AggFunc::Count, true), Some(DataType::Float64));
        ca.update(Some(&Value::Float64(1.0))).unwrap();
        ca.update(Some(&Value::Float64(2.0))).unwrap();
        cb.update(Some(&Value::Float64(2.0))).unwrap();
        cb.update(Some(&Value::Float64(3.0))).unwrap();
        ca.merge(cb).unwrap();
        assert_eq!(ca.finish(DataType::Int64), Value::Int64(3));

        let mut ma = Acc::new(&agg(AggFunc::Max, false), Some(DataType::Float64));
        let mb = Acc::new(&agg(AggFunc::Max, false), Some(DataType::Float64));
        ma.update(Some(&Value::Float64(4.0))).unwrap();
        ma.merge(mb).unwrap(); // empty partial leaves the max unchanged
        assert_eq!(ma.finish(DataType::Float64), Value::Float64(4.0));
    }

    #[test]
    fn stddev_samp_matches_definition() {
        let (catalog, udfs, profiler, config) = ctx_parts();
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };
        let t = Table::new(
            Schema::new(vec![Field::new("v", DataType::Float64)]),
            vec![Column::Float64(vec![1.0, 2.0, 3.0])],
        )
        .unwrap();
        let schema = Schema::new(vec![Field::new("s", DataType::Float64)]);
        let out = aggregate(
            &t,
            &[],
            &[AggExpr {
                func: AggFunc::StddevSamp,
                arg: Some(BoundExpr::Column(0)),
                distinct: false,
                output_name: "s".into(),
            }],
            &schema,
            &ctx,
        )
        .unwrap();
        assert!((out.column(0).f64_at(0) - 1.0).abs() < 1e-9);
    }
}
