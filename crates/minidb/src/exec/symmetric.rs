//! Symmetric hash join with bucket-level LRU buffering.
//!
//! Paper Sec. IV-B, rule 3: when an nUDF appears in the join condition
//! (`T0.nUDF(x) = T1.y`), hash tables are maintained for *both* sides and
//! each incoming batch probes the opposite side. Because the nUDF is
//! evaluated "in a batch manner", the buffer is managed per hash *bucket*
//! with an LRU policy: touching a key loads its whole bucket, and when the
//! bucket budget is exceeded the least-recently-used bucket is evicted
//! (and counted — re-probes of an evicted bucket are bucket reloads).
//!
//! The implementation is result-equivalent to a classic hash join (both
//! inputs are fully consumed), while faithfully modelling the batched,
//! incremental build/probe structure and exposing eviction/reload counters
//! for analysis.

use crate::column::Key;
use crate::error::Result;
use crate::expr::BoundExpr;
use crate::hash::FxHashMap;
use crate::table::{Schema, Table};

use super::{composite_keys, glue_join, ExecContext};

/// Eviction/reload counters from one symmetric join run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SymmetricJoinMetrics {
    /// Batches consumed (both sides).
    pub batches: u64,
    /// Buckets loaded into memory.
    pub bucket_loads: u64,
    /// Buckets evicted by the LRU policy.
    pub bucket_evictions: u64,
}

struct SymmetricSide {
    /// key -> rows inserted so far
    table: FxHashMap<Vec<Key>, Vec<usize>>,
    /// LRU order of buckets (front = oldest). A bucket here counts toward
    /// the budget; an evicted bucket's rows remain joinable (they are
    /// "on disk") but re-touching them is a reload.
    lru: Vec<Vec<Key>>,
    resident: std::collections::HashSet<Vec<Key>>,
}

impl SymmetricSide {
    fn new() -> Self {
        SymmetricSide { table: FxHashMap::default(), lru: Vec::new(), resident: Default::default() }
    }

    fn touch(&mut self, key: &[Key], budget: usize, metrics: &mut SymmetricJoinMetrics) {
        if self.resident.contains(key) {
            // Move to the back of the LRU queue.
            if let Some(pos) = self.lru.iter().position(|k| k.as_slice() == key) {
                let k = self.lru.remove(pos);
                self.lru.push(k);
            }
            return;
        }
        metrics.bucket_loads += 1;
        self.resident.insert(key.to_vec());
        self.lru.push(key.to_vec());
        while self.resident.len() > budget {
            let victim = self.lru.remove(0);
            self.resident.remove(&victim);
            metrics.bucket_evictions += 1;
        }
    }

    fn insert(
        &mut self,
        key: Vec<Key>,
        row: usize,
        budget: usize,
        metrics: &mut SymmetricJoinMetrics,
    ) {
        self.touch(&key, budget, metrics);
        self.table.entry(key).or_default().push(row);
    }

    fn probe(
        &mut self,
        key: &[Key],
        budget: usize,
        metrics: &mut SymmetricJoinMetrics,
    ) -> &[usize] {
        if self.table.contains_key(key) {
            self.touch(key, budget, metrics);
        }
        self.table.get(key).map_or(&[], Vec::as_slice)
    }
}

/// Joins `lt` and `rt` symmetrically. Returns the joined table; metrics are
/// discarded (use [`symmetric_hash_join_with_metrics`] to observe them).
pub fn symmetric_hash_join(
    lt: &Table,
    rt: &Table,
    keys: &[(BoundExpr, BoundExpr)],
    residual: Option<&BoundExpr>,
    output: Option<&[usize]>,
    schema: &Schema,
    ctx: &ExecContext<'_>,
) -> Result<Table> {
    Ok(symmetric_hash_join_with_metrics(lt, rt, keys, residual, output, schema, ctx)?.0)
}

/// As [`symmetric_hash_join`], also returning the LRU metrics.
#[allow(clippy::too_many_arguments)]
pub fn symmetric_hash_join_with_metrics(
    lt: &Table,
    rt: &Table,
    keys: &[(BoundExpr, BoundExpr)],
    residual: Option<&BoundExpr>,
    output: Option<&[usize]>,
    schema: &Schema,
    ctx: &ExecContext<'_>,
) -> Result<(Table, SymmetricJoinMetrics)> {
    let l_exprs: Vec<BoundExpr> = keys.iter().map(|(l, _)| l.clone()).collect();
    let r_exprs: Vec<BoundExpr> = keys.iter().map(|(_, r)| r.clone()).collect();
    // The nUDF side is evaluated batch-by-batch conceptually; computing all
    // keys up front is equivalent because the UDF is pure.
    let lk = composite_keys(lt, &l_exprs, ctx)?;
    let rk = composite_keys(rt, &r_exprs, ctx)?;

    let batch = ctx.config.symmetric_batch_rows.max(1);
    let budget = ctx.config.symmetric_bucket_budget.max(1);
    let mut metrics = SymmetricJoinMetrics::default();

    let mut left_side = SymmetricSide::new();
    let mut right_side = SymmetricSide::new();
    let mut l_idx: Vec<usize> = Vec::new();
    let mut r_idx: Vec<usize> = Vec::new();

    // Both in-memory hash sides together hold every input row by the end.
    let _build_mem = ctx.reserve("symmetric.build", super::build_bytes(lk.len() + rk.len(), 32))?;

    let mut l_pos = 0usize;
    let mut r_pos = 0usize;
    while l_pos < lk.len() || r_pos < rk.len() {
        // Batch boundaries double as governance checkpoints.
        ctx.check()?;
        // Left batch: probe right, then insert into left.
        if l_pos < lk.len() {
            metrics.batches += 1;
            let end = (l_pos + batch).min(lk.len());
            #[allow(clippy::needless_range_loop)] // row is both key index and output row id
            for row in l_pos..end {
                let key = &lk[row];
                for &m in right_side.probe(key, budget, &mut metrics) {
                    l_idx.push(row);
                    r_idx.push(m);
                }
                left_side.insert(key.clone(), row, budget, &mut metrics);
            }
            l_pos = end;
        }
        // Right batch: probe left, then insert into right.
        if r_pos < rk.len() {
            metrics.batches += 1;
            let end = (r_pos + batch).min(rk.len());
            #[allow(clippy::needless_range_loop)] // row is both key index and output row id
            for row in r_pos..end {
                let key = &rk[row];
                for &m in left_side.probe(key, budget, &mut metrics) {
                    l_idx.push(m);
                    r_idx.push(row);
                }
                right_side.insert(key.clone(), row, budget, &mut metrics);
            }
            r_pos = end;
        }
    }

    let out = glue_join(lt, &l_idx, rt, &r_idx, residual, output, schema, ctx)?;
    Ok((out, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::column::Column;
    use crate::exec::ExecConfig;
    use crate::profile::Profiler;
    use crate::table::Field;
    use crate::udf::UdfRegistry;
    use crate::value::DataType;

    fn make(keys: Vec<i64>) -> Table {
        Table::new(Schema::new(vec![Field::new("k", DataType::Int64)]), vec![Column::Int64(keys)])
            .unwrap()
    }

    fn joined_schema(l: &Table, r: &Table) -> Schema {
        Schema::new(l.schema().fields().iter().chain(r.schema().fields()).cloned().collect())
    }

    #[test]
    fn produces_same_multiset_as_hash_join() {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let profiler = Profiler::new();
        let config = ExecConfig {
            symmetric_batch_rows: 2,
            symmetric_bucket_budget: 4,
            ..Default::default()
        };
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };

        let lt = make(vec![1, 2, 2, 3, 5]);
        let rt = make(vec![2, 2, 3, 4]);
        let schema = joined_schema(&lt, &rt);
        let keys = vec![(BoundExpr::Column(0), BoundExpr::Column(0))];
        let (out, metrics) =
            symmetric_hash_join_with_metrics(&lt, &rt, &keys, None, None, &schema, &ctx).unwrap();
        // 2x2 matches (2 left rows x 2 right rows) + 1 match for key 3.
        assert_eq!(out.num_rows(), 5);
        assert!(metrics.batches >= 4);
        assert!(metrics.bucket_loads > 0);
    }

    #[test]
    fn tiny_budget_forces_evictions_without_losing_rows() {
        let catalog = Catalog::new();
        let udfs = UdfRegistry::new();
        let profiler = Profiler::new();
        let config = ExecConfig {
            symmetric_batch_rows: 1,
            symmetric_bucket_budget: 1,
            ..Default::default()
        };
        let ctx = ExecContext {
            catalog: &catalog,
            udfs: &udfs,
            profiler: &profiler,
            config: &config,
            tracer: obs::disabled(),
            span: obs::SpanId::NONE,
            governor: govern::Governor::unrestricted(),
            budget: None,
        };

        let lt = make((0..20).collect());
        let rt = make((0..20).rev().collect());
        let schema = joined_schema(&lt, &rt);
        let keys = vec![(BoundExpr::Column(0), BoundExpr::Column(0))];
        let (out, metrics) =
            symmetric_hash_join_with_metrics(&lt, &rt, &keys, None, None, &schema, &ctx).unwrap();
        assert_eq!(out.num_rows(), 20, "every key matches exactly once");
        assert!(metrics.bucket_evictions > 0, "budget 1 must evict");
    }
}
