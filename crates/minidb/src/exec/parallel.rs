//! Morsel-driven parallel operator implementations.
//!
//! Each operator partitions its input into fixed-size row ranges
//! ("morsels", [`ExecConfig::morsel_rows`]) and fans them out over the
//! shared [`taskpool`] scoped worker pool. Per-morsel results are
//! concatenated in morsel order, so the output row order — and for the
//! hash join, the exact match emission order — is identical to the serial
//! path and independent of worker scheduling. GroupBy computes partial
//! aggregates per morsel and merges them in morsel order, so its result
//! depends only on the morsel decomposition, never on the worker count.
//!
//! These paths engage only when `parallelism > 1` and the input clears
//! [`ExecConfig::min_parallel_rows`]; `parallelism == 1` always takes the
//! untouched serial code, which is the bit-for-bit reference behavior.
//!
//! Every function returns the summed per-worker busy time next to its
//! result so the executor can feed [`Profiler::record_parallel`].

use std::time::{Duration, Instant};

use crate::column::{Column, Key};
use crate::error::Result;
use crate::expr::BoundExpr;
use crate::plan::logical::AggExpr;
use crate::table::{Schema, Table};
use crate::value::Value;

use super::{coerce_column, Acc, ExecConfig, ExecContext};

/// Records one morsel batch as a worker span under the operator's span
/// (no-op when untraced). `t0` is the tracer timestamp taken when the
/// morsel started; the executing pool worker tags the span.
pub(crate) fn note_morsel(
    ctx: &ExecContext<'_>,
    range: &std::ops::Range<usize>,
    t0: u64,
    rows_out: u64,
) {
    if ctx.span.is_none() {
        return;
    }
    ctx.tracer.add_complete(
        ctx.span,
        obs::SpanKind::Worker,
        "morsel",
        &format!("rows {}..{}", range.start, range.end),
        t0,
        ctx.tracer.now_ns(),
        taskpool::current_worker(),
        rows_out,
    );
}

/// Tracer timestamp for a morsel about to run, or 0 when untraced.
#[inline]
pub(crate) fn morsel_t0(ctx: &ExecContext<'_>) -> u64 {
    if ctx.span.is_some() {
        ctx.tracer.now_ns()
    } else {
        0
    }
}

/// Whether the morsel-parallel path should run for an input of `rows`.
pub(crate) fn active(config: &ExecConfig, rows: usize) -> bool {
    config.parallelism > 1 && rows > 0 && rows >= config.min_parallel_rows
}

fn morsels(config: &ExecConfig, rows: usize) -> Vec<std::ops::Range<usize>> {
    taskpool::split_ranges(rows, config.morsel_rows)
}

/// Governance prologue shared by every morsel closure: the cooperative
/// cancel/deadline check plus the `exec.morsel` failpoint (a no-op in
/// release builds). Injected panics unwind here on purpose — the pool's
/// `try_run_*` entry points catch them and return a typed error.
#[inline]
pub(crate) fn morsel_checkpoint(ctx: &ExecContext<'_>) -> Result<()> {
    ctx.check()?;
    govern::failpoints::fire("exec.morsel")
        .map_err(|f| crate::error::Error::Exec(format!("injected fault: {f:?}")))
}

/// Concatenates per-morsel tables in morsel order, summing busy time.
fn concat(parts: Vec<Result<(Table, Duration)>>, schema: &Schema) -> Result<(Table, Duration)> {
    let mut busy = Duration::ZERO;
    let mut out: Option<Table> = None;
    for part in parts {
        let (t, elapsed) = part?;
        busy += elapsed;
        match &mut out {
            None => out = Some(t),
            Some(acc) => acc.append(&t)?,
        }
    }
    Ok((out.unwrap_or_else(|| Table::empty(schema.clone())), busy))
}

/// Parallel `Filter`: evaluates the predicate per morsel and keeps rows in
/// morsel order.
pub(crate) fn filter(
    t: &Table,
    predicate: &BoundExpr,
    ctx: &ExecContext<'_>,
) -> Result<(Table, Duration)> {
    let ranges = morsels(ctx.config, t.num_rows());
    let parts = taskpool::try_run_ranges(ctx.config.parallelism, &ranges, |range| {
        morsel_checkpoint(ctx)?;
        let t0 = morsel_t0(ctx);
        let start = Instant::now();
        let morsel = t.slice(range.clone());
        let mask_col = predicate.eval(&morsel, &ctx.eval_ctx())?;
        let mask = mask_col.as_bool_slice()?;
        let out = morsel.filter(mask);
        let elapsed = start.elapsed();
        note_morsel(ctx, &range, t0, out.num_rows() as u64);
        Ok((out, elapsed))
    })?;
    concat(parts, t.schema())
}

/// Parallel `Project`: evaluates the expression list per morsel.
pub(crate) fn project(
    t: &Table,
    exprs: &[BoundExpr],
    schema: &Schema,
    ctx: &ExecContext<'_>,
) -> Result<(Table, Duration)> {
    let ranges = morsels(ctx.config, t.num_rows());
    let parts = taskpool::try_run_ranges(ctx.config.parallelism, &ranges, |range| {
        morsel_checkpoint(ctx)?;
        let t0 = morsel_t0(ctx);
        let start = Instant::now();
        let morsel = t.slice(range.clone());
        let cols: Vec<Column> = exprs
            .iter()
            .zip(schema.fields())
            .map(|(e, f)| coerce_column(e.eval(&morsel, &ctx.eval_ctx())?, f.data_type))
            .collect::<Result<_>>()?;
        let out = Table::new(schema.clone(), cols)?;
        let elapsed = start.elapsed();
        note_morsel(ctx, &range, t0, out.num_rows() as u64);
        Ok((out, elapsed))
    })?;
    concat(parts, schema)
}

/// Parallel hash-join probe over a pre-built (serial) hash table. Each
/// morsel of probe rows emits its matches locally; concatenating the
/// per-morsel vectors in morsel order reproduces the serial emission order
/// exactly (probe rows ascending, build rows in build insertion order).
pub(crate) fn probe<'a, F>(
    n_probe: usize,
    lookup: F,
    ctx: &ExecContext<'_>,
) -> Result<(Vec<usize>, Vec<usize>, Duration)>
where
    F: Fn(usize) -> Option<&'a Vec<usize>> + Sync,
{
    let ranges = morsels(ctx.config, n_probe);
    let parts = taskpool::try_run_ranges(ctx.config.parallelism, &ranges, |range| {
        morsel_checkpoint(ctx)?;
        let t0 = morsel_t0(ctx);
        let start = Instant::now();
        let mut build_rows = Vec::new();
        let mut probe_rows = Vec::new();
        for probe_row in range.clone() {
            if let Some(matches) = lookup(probe_row) {
                for &build_row in matches {
                    build_rows.push(build_row);
                    probe_rows.push(probe_row);
                }
            }
        }
        let elapsed = start.elapsed();
        note_morsel(ctx, &range, t0, probe_rows.len() as u64);
        Ok::<_, crate::error::Error>((build_rows, probe_rows, elapsed))
    })?;
    let mut build_rows = Vec::new();
    let mut probe_rows = Vec::new();
    let mut busy = Duration::ZERO;
    for part in parts {
        let (b, p, elapsed) = part?;
        build_rows.extend_from_slice(&b);
        probe_rows.extend_from_slice(&p);
        busy += elapsed;
    }
    Ok((build_rows, probe_rows, busy))
}

/// Per-morsel partial aggregation state: local groups in first-occurrence
/// order, each with its key, the key columns' values at its first row, and
/// one accumulator per aggregate.
struct MorselAgg {
    keys: Vec<Vec<Key>>,
    firsts: Vec<Vec<Value>>,
    accs: Vec<Vec<Acc>>,
}

/// Parallel `GroupBy`: partial aggregates per morsel, merged in morsel
/// order (so global group ids follow first occurrence across morsels,
/// matching the serial path's group order).
pub(crate) fn aggregate(
    t: &Table,
    group: &[BoundExpr],
    aggs: &[AggExpr],
    schema: &Schema,
    ctx: &ExecContext<'_>,
) -> Result<(Table, Duration)> {
    use crate::hash::{fx_map_with_capacity, FxHashMap};

    let ranges = morsels(ctx.config, t.num_rows());
    let parts = taskpool::try_run_ranges(ctx.config.parallelism, &ranges, |range| {
        morsel_checkpoint(ctx)?;
        let t0 = morsel_t0(ctx);
        let start = Instant::now();
        let morsel = t.slice(range.clone());
        let n = morsel.num_rows();
        let key_cols: Vec<Column> =
            group.iter().map(|e| e.eval(&morsel, &ctx.eval_ctx())).collect::<Result<_>>()?;
        let arg_cols: Vec<Option<Column>> = aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|e| e.eval(&morsel, &ctx.eval_ctx())).transpose())
            .collect::<Result<_>>()?;

        let mut ids: FxHashMap<Vec<Key>, usize> = fx_map_with_capacity(n / 4 + 16);
        let mut local = MorselAgg { keys: Vec::new(), firsts: Vec::new(), accs: Vec::new() };
        for row in 0..n {
            let key: Vec<Key> = key_cols.iter().map(|c| c.key_at(row)).collect();
            let next = local.keys.len();
            let id = *ids.entry(key.clone()).or_insert_with(|| {
                local.keys.push(key);
                local.firsts.push(key_cols.iter().map(|c| c.value(row)).collect());
                local.accs.push(
                    aggs.iter()
                        .zip(&arg_cols)
                        .map(|(a, c)| Acc::new(a, c.as_ref().map(Column::data_type)))
                        .collect(),
                );
                next
            });
            for (ai, col) in arg_cols.iter().enumerate() {
                let v = col.as_ref().map(|c| c.value(row));
                local.accs[id][ai].update(v.as_ref())?;
            }
        }
        let elapsed = start.elapsed();
        note_morsel(ctx, &range, t0, local.keys.len() as u64);
        Ok::<_, crate::error::Error>((local, elapsed))
    })?;

    // Merge partials in morsel order.
    let _group_mem = ctx.reserve(
        "agg.groups",
        super::group_state_bytes(
            parts.iter().map(|p| p.as_ref().map_or(0, |(local, _)| local.keys.len())).sum(),
            aggs.len(),
        ),
    )?;
    let mut busy = Duration::ZERO;
    let mut ids: FxHashMap<Vec<Key>, usize> = FxHashMap::default();
    let mut firsts: Vec<Vec<Value>> = Vec::new();
    let mut accs: Vec<Vec<Acc>> = Vec::new();
    for part in parts {
        let (local, elapsed) = part?;
        busy += elapsed;
        for ((key, first), local_accs) in local.keys.into_iter().zip(local.firsts).zip(local.accs) {
            match ids.get(&key) {
                Some(&gid) => {
                    for (acc, partial) in accs[gid].iter_mut().zip(local_accs) {
                        acc.merge(partial)?;
                    }
                }
                None => {
                    ids.insert(key, firsts.len());
                    firsts.push(first);
                    accs.push(local_accs);
                }
            }
        }
    }
    // Global aggregate over empty input: one group of empty accumulators
    // (argument types default from the aggregate's output field).
    if group.is_empty() && accs.is_empty() {
        firsts.push(Vec::new());
        accs.push(
            aggs.iter()
                .zip(schema.fields().iter().skip(group.len()))
                .map(|(a, f)| Acc::new(a, Some(f.data_type)))
                .collect(),
        );
    }

    // Emit, mirroring the serial path.
    let mut cols: Vec<Column> =
        schema.fields().iter().map(|f| Column::empty(f.data_type)).collect();
    for (g, first) in firsts.iter().enumerate() {
        for (ki, v) in first.iter().enumerate() {
            cols[ki].push(v.clone())?;
        }
        for (ai, acc) in accs[g].iter().enumerate() {
            let field = schema.field(group.len() + ai);
            cols[group.len() + ai].push(acc.finish(field.data_type))?;
        }
    }
    Ok((Table::new(schema.clone(), cols)?, busy))
}
