//! Table statistics for the cost models.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::catalog::Catalog;
use crate::table::Table;

/// Row count plus per-column distinct-value counts.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Number of rows.
    pub rows: u64,
    /// Distinct values per (lower-cased) column name.
    pub distinct: HashMap<String, u64>,
}

impl TableStats {
    /// Computes exact statistics by scanning the table.
    pub fn compute(table: &Table) -> TableStats {
        let mut distinct = HashMap::new();
        for (i, f) in table.schema().fields().iter().enumerate() {
            let col = table.column(i);
            let mut set = std::collections::HashSet::new();
            for row in 0..col.len() {
                set.insert(col.value(row).to_key());
            }
            distinct.insert(f.name.to_ascii_lowercase(), set.len() as u64);
        }
        TableStats { rows: table.num_rows() as u64, distinct }
    }

    /// Distinct count of a column, if known.
    pub fn ndv(&self, column: &str) -> Option<u64> {
        self.distinct.get(&column.to_ascii_lowercase()).copied()
    }
}

/// Cache of computed statistics, keyed by table name and invalidated via
/// the catalog's per-table epoch: any data replacement bumps the epoch, so
/// same-cardinality UPDATEs (which a row-count check would miss) correctly
/// force a recompute of min/max/NDV.
#[derive(Debug, Default)]
pub struct StatsCache {
    map: Mutex<HashMap<String, (u64, Arc<TableStats>)>>,
}

impl StatsCache {
    /// An empty cache.
    pub fn new() -> Self {
        StatsCache::default()
    }

    /// Statistics for a catalog table, computing and caching on demand.
    pub fn stats_for(&self, catalog: &Catalog, name: &str) -> Option<Arc<TableStats>> {
        // Read the epoch before the snapshot: if a writer lands in between,
        // we cache fresh data under an old epoch and merely recompute next
        // time — never the reverse.
        let epoch = catalog.table_epoch(name);
        let table = catalog.table(name)?;
        let key = name.to_ascii_lowercase();
        {
            let map = self.map.lock();
            if let Some((cached_epoch, stats)) = map.get(&key) {
                if *cached_epoch == epoch {
                    return Some(Arc::clone(stats));
                }
            }
        }
        let stats = Arc::new(TableStats::compute(&table));
        self.map.lock().insert(key, (epoch, Arc::clone(&stats)));
        Some(stats)
    }

    /// Drops all cached statistics.
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::{Field, Schema};
    use crate::value::DataType;

    fn t(vals: Vec<i64>) -> Table {
        Table::new(Schema::new(vec![Field::new("k", DataType::Int64)]), vec![Column::Int64(vals)])
            .unwrap()
    }

    #[test]
    fn computes_rows_and_ndv() {
        let s = TableStats::compute(&t(vec![1, 1, 2, 3, 3, 3]));
        assert_eq!(s.rows, 6);
        assert_eq!(s.ndv("k"), Some(3));
        assert_eq!(s.ndv("K"), Some(3));
        assert_eq!(s.ndv("missing"), None);
    }

    #[test]
    fn cache_invalidates_on_row_count_change() {
        let c = Catalog::new();
        c.create_table("t", t(vec![1, 2]), false).unwrap();
        let cache = StatsCache::new();
        let s1 = cache.stats_for(&c, "t").unwrap();
        assert_eq!(s1.rows, 2);
        c.replace_table("t", t(vec![1, 2, 3])).unwrap();
        let s2 = cache.stats_for(&c, "t").unwrap();
        assert_eq!(s2.rows, 3);
        assert!(cache.stats_for(&c, "nope").is_none());
    }

    #[test]
    fn cache_invalidates_on_same_cardinality_update() {
        // An UPDATE that keeps the row count but changes the values must
        // refresh NDV — the old row-count proxy silently kept stale stats.
        let c = Catalog::new();
        c.create_table("t", t(vec![1, 1, 1]), false).unwrap();
        let cache = StatsCache::new();
        assert_eq!(cache.stats_for(&c, "t").unwrap().ndv("k"), Some(1));
        c.replace_table("t", t(vec![1, 2, 3])).unwrap();
        assert_eq!(cache.stats_for(&c, "t").unwrap().ndv("k"), Some(3));
    }

    #[test]
    fn cache_hit_returns_same_snapshot() {
        let c = Catalog::new();
        c.create_table("t", t(vec![1, 2]), false).unwrap();
        let cache = StatsCache::new();
        let s1 = cache.stats_for(&c, "t").unwrap();
        let s2 = cache.stats_for(&c, "t").unwrap();
        assert!(Arc::ptr_eq(&s1, &s2), "unchanged table served from cache");
    }
}
