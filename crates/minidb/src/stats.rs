//! Table statistics for the cost models.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::catalog::Catalog;
use crate::table::Table;

/// Row count plus per-column distinct-value counts.
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Number of rows.
    pub rows: u64,
    /// Distinct values per (lower-cased) column name.
    pub distinct: HashMap<String, u64>,
}

impl TableStats {
    /// Computes exact statistics by scanning the table.
    pub fn compute(table: &Table) -> TableStats {
        let mut distinct = HashMap::new();
        for (i, f) in table.schema().fields().iter().enumerate() {
            let col = table.column(i);
            let mut set = std::collections::HashSet::new();
            for row in 0..col.len() {
                set.insert(col.value(row).to_key());
            }
            distinct.insert(f.name.to_ascii_lowercase(), set.len() as u64);
        }
        TableStats { rows: table.num_rows() as u64, distinct }
    }

    /// Distinct count of a column, if known.
    pub fn ndv(&self, column: &str) -> Option<u64> {
        self.distinct.get(&column.to_ascii_lowercase()).copied()
    }
}

/// Cache of computed statistics, keyed by table name and invalidated when
/// the table's row count changes (a pragmatic staleness proxy).
#[derive(Debug, Default)]
pub struct StatsCache {
    map: Mutex<HashMap<String, (usize, Arc<TableStats>)>>,
}

impl StatsCache {
    /// An empty cache.
    pub fn new() -> Self {
        StatsCache::default()
    }

    /// Statistics for a catalog table, computing and caching on demand.
    pub fn stats_for(&self, catalog: &Catalog, name: &str) -> Option<Arc<TableStats>> {
        let table = catalog.table(name)?;
        let key = name.to_ascii_lowercase();
        {
            let map = self.map.lock();
            if let Some((rows, stats)) = map.get(&key) {
                if *rows == table.num_rows() {
                    return Some(Arc::clone(stats));
                }
            }
        }
        let stats = Arc::new(TableStats::compute(&table));
        self.map.lock().insert(key, (table.num_rows(), Arc::clone(&stats)));
        Some(stats)
    }

    /// Drops all cached statistics.
    pub fn clear(&self) {
        self.map.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::{Field, Schema};
    use crate::value::DataType;

    fn t(vals: Vec<i64>) -> Table {
        Table::new(Schema::new(vec![Field::new("k", DataType::Int64)]), vec![Column::Int64(vals)])
            .unwrap()
    }

    #[test]
    fn computes_rows_and_ndv() {
        let s = TableStats::compute(&t(vec![1, 1, 2, 3, 3, 3]));
        assert_eq!(s.rows, 6);
        assert_eq!(s.ndv("k"), Some(3));
        assert_eq!(s.ndv("K"), Some(3));
        assert_eq!(s.ndv("missing"), None);
    }

    #[test]
    fn cache_invalidates_on_row_count_change() {
        let c = Catalog::new();
        c.create_table("t", t(vec![1, 2]), false).unwrap();
        let cache = StatsCache::new();
        let s1 = cache.stats_for(&c, "t").unwrap();
        assert_eq!(s1.rows, 2);
        c.replace_table("t", t(vec![1, 2, 3])).unwrap();
        let s2 = cache.stats_for(&c, "t").unwrap();
        assert_eq!(s2.rows, 3);
        assert!(cache.stats_for(&c, "nope").is_none());
    }
}
