//! Cost estimation with a pluggable model.
//!
//! The optimizer consults a [`CostModel`] for cardinality and cost
//! estimates. [`DefaultCostModel`] is a textbook Selinger-style estimator:
//! per-conjunct selectivity heuristics, `1/max(ndv)` equi-join selectivity
//! when base-table statistics are visible, and a fixed fallback otherwise.
//! It has no knowledge of the regular structure of DL2SQL's feature-map /
//! kernel tables, which is exactly why it over-estimates the conv joins
//! (the phenomenon paper Sec. IV opens with); the `dl2sql` crate installs
//! a customized model implementing the paper's Eq. 3–8 through this same
//! trait.

use crate::catalog::Catalog;
use crate::expr::BoundExpr;
use crate::plan::logical::{AggFunc, LogicalPlan};
use crate::sql::ast::BinOp;
use crate::stats::StatsCache;
use crate::udf::UdfRegistry;
use crate::value::Value;

/// Estimated output cardinality and cumulative cost (in abstract
/// "row-touch" units) for a plan subtree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Estimated output rows.
    pub rows: f64,
    /// Cumulative cost of producing them.
    pub cost: f64,
}

/// Everything a cost model may consult.
pub struct CostContext<'a> {
    pub catalog: &'a Catalog,
    pub udfs: &'a UdfRegistry,
    pub stats: &'a StatsCache,
    /// Executor parallelism the plan will run under (the
    /// `ExecConfig::parallelism` knob). `1` means serial execution and
    /// leaves every estimate untouched.
    pub parallelism: usize,
}

/// Cost multiplier for the morsel-parallel portion of an operator's work.
///
/// Amdahl-style with an 85% per-worker efficiency factor (morsel slicing
/// and result concatenation grow with the worker count), so the optimizer
/// never assumes perfect scaling. Exactly `1.0` at `parallelism == 1`,
/// keeping serial plan choices — including DL2SQL-OP's — bit-identical.
pub fn parallel_discount(ctx: &CostContext<'_>) -> f64 {
    let p = ctx.parallelism.max(1) as f64;
    1.0 / (1.0 + 0.85 * (p - 1.0))
}

/// A pluggable cost/cardinality model.
pub trait CostModel: Send + Sync {
    /// Estimates a plan subtree.
    fn estimate(&self, plan: &LogicalPlan, ctx: &CostContext<'_>) -> PlanCost;

    /// Human-readable model name (harness output).
    fn name(&self) -> &'static str {
        "cost-model"
    }
}

/// The built-in estimator.
#[derive(Debug, Clone)]
pub struct DefaultCostModel {
    /// Selectivity assumed for an equality whose sides' distinct counts
    /// are unknown.
    pub default_eq_selectivity: f64,
    /// Selectivity assumed for a range comparison.
    pub default_range_selectivity: f64,
    /// Join-key selectivity when neither side's distinct count is known.
    pub default_join_selectivity: f64,
    /// Whether predicates over UDFs may use the UDF's class histogram
    /// (off by default: a stock optimizer knows nothing about a UDF).
    pub use_udf_selectivity: bool,
    /// Whether per-column distinct counts may be consulted. ClickHouse —
    /// the paper's deployment target — keeps table row counts but no
    /// per-column NDV statistics, so its faithful stand-in runs with this
    /// off ([`DefaultCostModel::clickhouse_like`]); the engine default
    /// keeps it on.
    pub column_stats: bool,
}

impl Default for DefaultCostModel {
    fn default() -> Self {
        DefaultCostModel {
            default_eq_selectivity: 0.1,
            default_range_selectivity: 1.0 / 3.0,
            default_join_selectivity: 0.1,
            use_udf_selectivity: false,
            column_stats: true,
        }
    }
}

impl DefaultCostModel {
    /// A default model that *is* allowed to read UDF histograms — the
    /// configuration the hint rules (paper Sec. IV-B) run under.
    pub fn with_udf_hints() -> Self {
        DefaultCostModel { use_udf_selectivity: true, ..Default::default() }
    }

    /// The paper's "default database cost model": row counts but no
    /// per-column statistics, fixed heuristic selectivities. This is the
    /// baseline paper Figs. 12–13 compare the customized model against.
    pub fn clickhouse_like() -> Self {
        DefaultCostModel { column_stats: false, ..Default::default() }
    }
}

impl CostModel for DefaultCostModel {
    fn estimate(&self, plan: &LogicalPlan, ctx: &CostContext<'_>) -> PlanCost {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                let rows =
                    ctx.stats.stats_for(ctx.catalog, table).map_or(1000.0, |s| s.rows as f64);
                PlanCost { rows, cost: rows }
            }
            LogicalPlan::Values { table } => {
                let rows = table.num_rows() as f64;
                PlanCost { rows, cost: rows }
            }
            LogicalPlan::MultiJoin { inputs, predicates, .. } => {
                // Un-lowered n-way join: product cardinality damped by the
                // predicate pool. Only used before lowering.
                let children: Vec<PlanCost> =
                    inputs.iter().map(|i| self.estimate(i, ctx)).collect();
                let mut rows: f64 = children.iter().map(|c| c.rows).product();
                for p in predicates {
                    rows *= self.predicate_selectivity(p, plan, ctx);
                }
                let cost = children.iter().map(|c| c.cost).sum::<f64>() + rows;
                PlanCost { rows: rows.max(1.0), cost }
            }
            LogicalPlan::Filter { input, predicate } => {
                let child = self.estimate(input, ctx);
                let sel = self.predicate_selectivity(predicate, input, ctx);
                let per_row = 1.0 + udf_cost_of_expr(predicate, ctx);
                PlanCost {
                    rows: (child.rows * sel).max(0.0),
                    cost: child.cost + child.rows * per_row * parallel_discount(ctx),
                }
            }
            LogicalPlan::Project { input, exprs, .. } => {
                let child = self.estimate(input, ctx);
                let per_row: f64 =
                    1.0 + exprs.iter().map(|e| udf_cost_of_expr(e, ctx)).sum::<f64>();
                PlanCost {
                    rows: child.rows,
                    cost: child.cost + child.rows * per_row * parallel_discount(ctx),
                }
            }
            LogicalPlan::Join { left, right, keys, residual, .. } => {
                let l = self.estimate(left, ctx);
                let r = self.estimate(right, ctx);
                let mut sel = 1.0;
                for (lk, rk) in keys {
                    sel *= self.join_key_selectivity(lk, left, rk, right, ctx);
                }
                let mut rows = l.rows * r.rows * sel;
                if let Some(res) = residual {
                    rows *= self.predicate_selectivity(res, plan, ctx);
                }
                let rows = rows.max(1.0);
                let udf_keys: f64 = keys
                    .iter()
                    .map(|(lk, rk)| {
                        l.rows * udf_cost_of_expr(lk, ctx) + r.rows * udf_cost_of_expr(rk, ctx)
                    })
                    .sum();
                // The hash-table build stays serial; the probe (and its key
                // evaluation) runs morsel-parallel.
                let build = l.rows.min(r.rows);
                let own = l.rows + r.rows + rows + udf_keys;
                PlanCost {
                    rows,
                    cost: l.cost + r.cost + build + (own - build) * parallel_discount(ctx),
                }
            }
            LogicalPlan::Cross { left, right, .. } => {
                let l = self.estimate(left, ctx);
                let r = self.estimate(right, ctx);
                let rows = (l.rows * r.rows).max(1.0);
                PlanCost { rows, cost: l.cost + r.cost + rows }
            }
            LogicalPlan::Aggregate { input, group, aggs, .. } => {
                let child = self.estimate(input, ctx);
                let rows = if group.is_empty() {
                    1.0
                } else {
                    // Product of group-key distinct counts when derivable,
                    // capped by input rows.
                    let mut ndv_product = 1.0;
                    let mut all_known = true;
                    for g in group {
                        match self.expr_ndv(g, input, ctx) {
                            Some(n) => ndv_product *= n,
                            None => {
                                all_known = false;
                                break;
                            }
                        }
                    }
                    if all_known {
                        ndv_product.min(child.rows).max(1.0)
                    } else {
                        (child.rows * 0.1).max(1.0)
                    }
                };
                let udf: f64 = aggs
                    .iter()
                    .filter_map(|a| a.arg.as_ref())
                    .map(|e| udf_cost_of_expr(e, ctx))
                    .sum();
                PlanCost {
                    rows,
                    cost: child.cost + child.rows * (1.0 + udf) * parallel_discount(ctx),
                }
            }
            LogicalPlan::JoinAggregate { left, right, keys, group, aggs, .. } => {
                let l = self.estimate(left, ctx);
                let r = self.estimate(right, ctx);
                let mut sel = 1.0;
                for (lk, rk) in keys {
                    sel *= self.join_key_selectivity(lk, left, rk, right, ctx);
                }
                let join_rows = (l.rows * r.rows * sel).max(1.0);
                let rows = if group.is_empty() {
                    1.0
                } else {
                    let n_left = left.schema().len();
                    let mut ndv_product = 1.0;
                    let mut all_known = true;
                    for g in group {
                        let ndv = match g {
                            BoundExpr::Column(i) if *i < n_left => self.column_ndv(left, *i, ctx),
                            BoundExpr::Column(i) => self.column_ndv(right, *i - n_left, ctx),
                            _ => None,
                        };
                        match ndv {
                            Some(n) => ndv_product *= n,
                            None => {
                                all_known = false;
                                break;
                            }
                        }
                    }
                    if all_known {
                        ndv_product.min(join_rows).max(1.0)
                    } else {
                        (join_rows * 0.1).max(1.0)
                    }
                };
                let udf_keys: f64 = keys
                    .iter()
                    .map(|(lk, rk)| {
                        l.rows * udf_cost_of_expr(lk, ctx) + r.rows * udf_cost_of_expr(rk, ctx)
                    })
                    .sum();
                let udf_aggs: f64 = aggs
                    .iter()
                    .filter_map(|a| a.arg.as_ref())
                    .map(|e| udf_cost_of_expr(e, ctx))
                    .sum();
                // Serial build on the smaller side; the probe folds each
                // matched pair once and never materializes the join output,
                // so the unfused plan's extra aggregation pass over
                // `join_rows` disappears.
                let build = l.rows.min(r.rows);
                let own = l.rows + r.rows + join_rows * (1.0 + udf_aggs) + udf_keys;
                PlanCost {
                    rows,
                    cost: l.cost + r.cost + build + (own - build) * parallel_discount(ctx),
                }
            }
            LogicalPlan::Sort { input, .. } => {
                let child = self.estimate(input, ctx);
                let n = child.rows.max(2.0);
                PlanCost { rows: child.rows, cost: child.cost + n * n.log2() }
            }
            LogicalPlan::Limit { input, n } => {
                let child = self.estimate(input, ctx);
                PlanCost { rows: child.rows.min(*n as f64), cost: child.cost }
            }
        }
    }

    fn name(&self) -> &'static str {
        "default"
    }
}

impl DefaultCostModel {
    /// Selectivity of a predicate over the given input plan.
    pub fn predicate_selectivity(
        &self,
        pred: &BoundExpr,
        input: &LogicalPlan,
        ctx: &CostContext<'_>,
    ) -> f64 {
        match pred {
            BoundExpr::Literal(Value::Bool(b)) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            BoundExpr::Binary { left, op, right } => match op {
                BinOp::And => {
                    self.predicate_selectivity(left, input, ctx)
                        * self.predicate_selectivity(right, input, ctx)
                }
                BinOp::Or => {
                    let a = self.predicate_selectivity(left, input, ctx);
                    let b = self.predicate_selectivity(right, input, ctx);
                    (a + b - a * b).clamp(0.0, 1.0)
                }
                BinOp::Eq => {
                    // UDF(x) = literal: use the class histogram if allowed.
                    if self.use_udf_selectivity {
                        if let Some(sel) = self.udf_eq_selectivity(left, right, ctx) {
                            return sel;
                        }
                    }
                    if let BoundExpr::Column(i) = left.as_ref() {
                        if let Some(ndv) = self.column_ndv(input, *i, ctx) {
                            return (1.0 / ndv).min(1.0);
                        }
                    }
                    self.default_eq_selectivity
                }
                BinOp::NotEq => {
                    if self.use_udf_selectivity {
                        if let Some(sel) = self.udf_eq_selectivity(left, right, ctx) {
                            return 1.0 - sel;
                        }
                    }
                    1.0 - self.default_eq_selectivity
                }
                BinOp::Lt | BinOp::LtEq | BinOp::Gt | BinOp::GtEq => self.default_range_selectivity,
                _ => 0.5,
            },
            BoundExpr::Unary { op: crate::sql::ast::UnaryOp::Not, expr } => {
                1.0 - self.predicate_selectivity(expr, input, ctx)
            }
            // A bare boolean column or boolean UDF.
            _ => 0.5,
        }
    }

    /// Selectivity of `udf(args) = literal` via the UDF's class histogram.
    fn udf_eq_selectivity(
        &self,
        left: &BoundExpr,
        right: &BoundExpr,
        ctx: &CostContext<'_>,
    ) -> Option<f64> {
        let (udf_name, lit) = match (left, right) {
            (BoundExpr::Udf { name, .. }, BoundExpr::Literal(v)) => (name, v),
            (BoundExpr::Literal(v), BoundExpr::Udf { name, .. }) => (name, v),
            _ => return None,
        };
        ctx.udfs.get(udf_name)?.selectivity_eq(lit)
    }

    /// Equi-join key selectivity: `1/max(ndv)` where ndv is visible,
    /// else the configured default.
    pub fn join_key_selectivity(
        &self,
        lk: &BoundExpr,
        left: &LogicalPlan,
        rk: &BoundExpr,
        right: &LogicalPlan,
        ctx: &CostContext<'_>,
    ) -> f64 {
        let l_ndv = self.expr_ndv(lk, left, ctx);
        let r_ndv = self.expr_ndv(rk, right, ctx);
        match (l_ndv, r_ndv) {
            (Some(a), Some(b)) => 1.0 / a.max(b).max(1.0),
            (Some(a), None) | (None, Some(a)) => 1.0 / a.max(1.0),
            (None, None) => self.default_join_selectivity,
        }
    }

    fn expr_ndv(
        &self,
        expr: &BoundExpr,
        input: &LogicalPlan,
        ctx: &CostContext<'_>,
    ) -> Option<f64> {
        if let BoundExpr::Column(i) = expr {
            self.column_ndv(input, *i, ctx)
        } else {
            None
        }
    }

    /// Distinct-value count of output column `idx`, traced back through
    /// transparent operators to a base-table column. Disabled entirely
    /// when the model runs without column statistics.
    pub fn column_ndv(&self, plan: &LogicalPlan, idx: usize, ctx: &CostContext<'_>) -> Option<f64> {
        if !self.column_stats {
            return None;
        }
        match plan {
            LogicalPlan::Scan { table, schema } => {
                let stats = ctx.stats.stats_for(ctx.catalog, table)?;
                stats.ndv(&schema.field(idx).name).map(|n| n as f64)
            }
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => self.column_ndv(input, idx, ctx),
            LogicalPlan::Project { input, exprs, .. } => match exprs.get(idx)? {
                BoundExpr::Column(j) => self.column_ndv(input, *j, ctx),
                _ => None,
            },
            LogicalPlan::Join { left, right, output, .. } => {
                let full = match output {
                    Some(mask) => *mask.get(idx)?,
                    None => idx,
                };
                let n_left = left.schema().len();
                if full < n_left {
                    self.column_ndv(left, full, ctx)
                } else {
                    self.column_ndv(right, full - n_left, ctx)
                }
            }
            LogicalPlan::Cross { left, right, .. } => {
                let n_left = left.schema().len();
                if idx < n_left {
                    self.column_ndv(left, idx, ctx)
                } else {
                    self.column_ndv(right, idx - n_left, ctx)
                }
            }
            LogicalPlan::MultiJoin { inputs, .. } => {
                let mut offset = 0;
                for i in inputs {
                    let n = i.schema().len();
                    if idx < offset + n {
                        return self.column_ndv(i, idx - offset, ctx);
                    }
                    offset += n;
                }
                None
            }
            LogicalPlan::Aggregate { input, group, .. } => match group.get(idx)? {
                BoundExpr::Column(j) => self.column_ndv(input, *j, ctx),
                _ => None,
            },
            LogicalPlan::JoinAggregate { left, right, group, .. } => match group.get(idx)? {
                BoundExpr::Column(j) => {
                    let n_left = left.schema().len();
                    if *j < n_left {
                        self.column_ndv(left, *j, ctx)
                    } else {
                        self.column_ndv(right, *j - n_left, ctx)
                    }
                }
                _ => None,
            },
            LogicalPlan::Values { .. } => None,
        }
    }
}

/// Summed per-row cost of all UDF invocations inside an expression.
pub fn udf_cost_of_expr(expr: &BoundExpr, ctx: &CostContext<'_>) -> f64 {
    match expr {
        BoundExpr::Udf { name, args } => {
            let own = ctx.udfs.get(name).map_or(1.0, |u| u.cost_per_row);
            own + args.iter().map(|a| udf_cost_of_expr(a, ctx)).sum::<f64>()
        }
        BoundExpr::Unary { expr, .. } => udf_cost_of_expr(expr, ctx),
        BoundExpr::Binary { left, right, .. } => {
            udf_cost_of_expr(left, ctx) + udf_cost_of_expr(right, ctx)
        }
        BoundExpr::ScalarFn { args, .. } => args.iter().map(|a| udf_cost_of_expr(a, ctx)).sum(),
        BoundExpr::Column(_) | BoundExpr::Literal(_) => 0.0,
    }
}

/// Convenience used by tests and the aggregate estimator.
pub fn is_count_star(agg: &AggFunc, arg: &Option<BoundExpr>) -> bool {
    *agg == AggFunc::Count && arg.is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::table::{Field, Schema, Table};
    use crate::value::DataType;

    fn setup() -> (Catalog, UdfRegistry, StatsCache) {
        let catalog = Catalog::new();
        let t = Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Float64)]),
            vec![
                Column::Int64((0..100).map(|i| i % 10).collect()),
                Column::Float64((0..100).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        catalog.create_table("t", t, false).unwrap();
        (catalog, UdfRegistry::new(), StatsCache::new())
    }

    fn scan(catalog: &Catalog, name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: name.into(),
            schema: catalog.table(name).unwrap().schema().clone(),
        }
    }

    #[test]
    fn scan_rows_come_from_stats() {
        let (catalog, udfs, stats) = setup();
        let ctx = CostContext { catalog: &catalog, udfs: &udfs, stats: &stats, parallelism: 1 };
        let m = DefaultCostModel::default();
        let est = m.estimate(&scan(&catalog, "t"), &ctx);
        assert_eq!(est.rows, 100.0);
    }

    #[test]
    fn equality_filter_uses_ndv() {
        let (catalog, udfs, stats) = setup();
        let ctx = CostContext { catalog: &catalog, udfs: &udfs, stats: &stats, parallelism: 1 };
        let m = DefaultCostModel::default();
        let plan = LogicalPlan::Filter {
            input: Box::new(scan(&catalog, "t")),
            predicate: BoundExpr::Binary {
                left: Box::new(BoundExpr::Column(0)),
                op: BinOp::Eq,
                right: Box::new(BoundExpr::Literal(Value::Int64(3))),
            },
        };
        let est = m.estimate(&plan, &ctx);
        // ndv(k)=10 -> 100 * 1/10.
        assert!((est.rows - 10.0).abs() < 1e-9);
    }

    #[test]
    fn join_selectivity_uses_max_ndv() {
        let (catalog, udfs, stats) = setup();
        let ctx = CostContext { catalog: &catalog, udfs: &udfs, stats: &stats, parallelism: 1 };
        let m = DefaultCostModel::default();
        let left = scan(&catalog, "t");
        let right = scan(&catalog, "t");
        let schema = Schema::new(
            left.schema().fields().iter().chain(right.schema().fields()).cloned().collect(),
        );
        let plan = LogicalPlan::Join {
            left: Box::new(left),
            right: Box::new(right),
            keys: vec![(BoundExpr::Column(0), BoundExpr::Column(0))],
            residual: None,
            algorithm: Default::default(),
            output: None,
            schema,
        };
        let est = m.estimate(&plan, &ctx);
        // 100*100/10 = 1000.
        assert!((est.rows - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn udf_histogram_changes_selectivity_only_when_enabled() {
        let (catalog, udfs, stats) = setup();
        udfs.register(
            crate::udf::ScalarUdf::new("classify", vec![DataType::Float64], DataType::Utf8, |_| {
                Ok(Value::Utf8("a".into()))
            })
            .with_cost(500.0)
            .with_class_probabilities(vec![(Value::Utf8("a".into()), 0.02)]),
        );
        let ctx = CostContext { catalog: &catalog, udfs: &udfs, stats: &stats, parallelism: 1 };
        let pred = BoundExpr::Binary {
            left: Box::new(BoundExpr::Udf {
                name: "classify".into(),
                args: vec![BoundExpr::Column(1)],
            }),
            op: BinOp::Eq,
            right: Box::new(BoundExpr::Literal(Value::Utf8("a".into()))),
        };
        let input = scan(&catalog, "t");
        let plain = DefaultCostModel::default();
        let hinted = DefaultCostModel::with_udf_hints();
        assert_eq!(plain.predicate_selectivity(&pred, &input, &ctx), plain.default_eq_selectivity);
        assert!((hinted.predicate_selectivity(&pred, &input, &ctx) - 0.02).abs() < 1e-12);
        // And the UDF's cost is visible to filters.
        assert!(udf_cost_of_expr(&pred, &ctx) >= 500.0);
    }

    #[test]
    fn aggregate_groups_capped_by_input() {
        let (catalog, udfs, stats) = setup();
        let ctx = CostContext { catalog: &catalog, udfs: &udfs, stats: &stats, parallelism: 1 };
        let m = DefaultCostModel::default();
        let plan = LogicalPlan::Aggregate {
            input: Box::new(scan(&catalog, "t")),
            group: vec![BoundExpr::Column(0)],
            aggs: vec![],
            schema: Schema::new(vec![Field::new("k", DataType::Int64)]),
        };
        let est = m.estimate(&plan, &ctx);
        assert_eq!(est.rows, 10.0);
    }
}
