//! Per-operator execution timing.
//!
//! Paper Fig. 10 breaks a DL2SQL run down by relational clause (Join,
//! GroupBy, Filter, ...). The executor feeds a [`Profiler`] with one timing
//! record per operator invocation; harnesses snapshot it per layer/run.

use std::collections::HashMap;
use std::time::Duration;

use parking_lot::Mutex;

/// The operator categories reported by paper Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OperatorKind {
    Scan,
    Filter,
    Project,
    Join,
    GroupBy,
    /// Fused join + group-by: the probe folds aggregate partials directly,
    /// so its time belongs to neither `Join` nor `GroupBy` alone.
    JoinAggregate,
    Sort,
    Limit,
    Update,
    Insert,
    CreateTable,
    UdfEval,
}

impl OperatorKind {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            OperatorKind::Scan => "Scan",
            OperatorKind::Filter => "Filter",
            OperatorKind::Project => "Project",
            OperatorKind::Join => "Join",
            OperatorKind::GroupBy => "GroupBy",
            OperatorKind::JoinAggregate => "JoinAggregate",
            OperatorKind::Sort => "Sort",
            OperatorKind::Limit => "Limit",
            OperatorKind::Update => "Update",
            OperatorKind::Insert => "Insert",
            OperatorKind::CreateTable => "CreateTable",
            OperatorKind::UdfEval => "UdfEval",
        }
    }
}

/// Accumulated time and invocation count for one operator kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OperatorStats {
    /// Wall-clock time across invocations (children excluded).
    pub total: Duration,
    pub invocations: u64,
    pub rows_out: u64,
    /// Summed per-worker busy time. Equal to `total` for serial
    /// invocations; larger when morsels ran on several workers (the
    /// busy/total ratio is the operator's effective parallelism).
    pub busy: Duration,
    /// Input rows consumed (recorded by operators that report it; the
    /// fused join–aggregate counts both join inputs here).
    pub rows_in: u64,
    /// Bytes of intermediate output the operator *avoided* materializing
    /// (the fused join–aggregate's (pixel × weight) table).
    pub bytes_not_materialized: u64,
}

/// Thread-safe timing accumulator.
#[derive(Debug, Default)]
pub struct Profiler {
    map: Mutex<HashMap<OperatorKind, OperatorStats>>,
    plan_cache: cachekit::CacheStats,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Profiler::default()
    }

    /// Records one (serial) operator invocation.
    pub fn record(&self, kind: OperatorKind, elapsed: Duration, rows_out: usize) {
        self.record_parallel(kind, elapsed, elapsed, rows_out);
    }

    /// Records one operator invocation that fanned out over a worker pool:
    /// `elapsed` is the wall time, `busy` the per-worker timers' sum.
    pub fn record_parallel(
        &self,
        kind: OperatorKind,
        elapsed: Duration,
        busy: Duration,
        rows_out: usize,
    ) {
        let mut map = self.map.lock();
        let e = map.entry(kind).or_default();
        e.total += elapsed;
        e.invocations += 1;
        e.rows_out += rows_out as u64;
        e.busy += busy;
    }

    /// As [`record_parallel`](Self::record_parallel), also accumulating the
    /// rows-in and bytes-not-materialized counters (fused operators).
    #[allow(clippy::too_many_arguments)]
    pub fn record_fused(
        &self,
        kind: OperatorKind,
        elapsed: Duration,
        busy: Duration,
        rows_in: usize,
        rows_out: usize,
        bytes_not_materialized: u64,
    ) {
        let mut map = self.map.lock();
        let e = map.entry(kind).or_default();
        e.total += elapsed;
        e.invocations += 1;
        e.rows_in += rows_in as u64;
        e.rows_out += rows_out as u64;
        e.busy += busy;
        e.bytes_not_materialized += bytes_not_materialized;
    }

    /// Accumulated stats for one operator kind, if it ran.
    pub fn stats(&self, kind: OperatorKind) -> Option<OperatorStats> {
        self.map.lock().get(&kind).copied()
    }

    /// Accumulated output rows for one operator kind (0 when unseen).
    pub fn rows_out(&self, kind: OperatorKind) -> u64 {
        self.map.lock().get(&kind).map_or(0, |s| s.rows_out)
    }

    /// A snapshot of all accumulated stats, sorted by kind.
    pub fn snapshot(&self) -> Vec<(OperatorKind, OperatorStats)> {
        let map = self.map.lock();
        let mut out: Vec<_> = map.iter().map(|(k, v)| (*k, *v)).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Total time across all operators.
    pub fn total(&self) -> Duration {
        self.map.lock().values().map(|s| s.total).sum()
    }

    /// Records one plan-cache lookup for a SELECT going through
    /// `Database::execute` (DDL/DML statements are not counted).
    pub fn record_plan_cache(&self, hit: bool) {
        if hit {
            self.plan_cache.record_hit();
        } else {
            self.plan_cache.record_miss();
        }
    }

    /// Plan-cache hit/miss counters since the last reset.
    pub fn plan_cache_stats(&self) -> cachekit::StatsSnapshot {
        self.plan_cache.snapshot()
    }

    /// Clears all accumulated stats.
    pub fn reset(&self) {
        self.map.lock().clear();
        self.plan_cache.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_per_kind() {
        let p = Profiler::new();
        p.record(OperatorKind::Join, Duration::from_millis(5), 100);
        p.record(OperatorKind::Join, Duration::from_millis(7), 50);
        p.record(OperatorKind::Scan, Duration::from_millis(1), 10);
        let snap = p.snapshot();
        let join = snap.iter().find(|(k, _)| *k == OperatorKind::Join).unwrap().1;
        assert_eq!(join.invocations, 2);
        assert_eq!(join.rows_out, 150);
        assert_eq!(join.total, Duration::from_millis(12));
        assert_eq!(p.total(), Duration::from_millis(13));
    }

    #[test]
    fn reset_clears() {
        let p = Profiler::new();
        p.record(OperatorKind::Sort, Duration::from_millis(1), 0);
        p.reset();
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn plan_cache_counters_accumulate_and_reset() {
        let p = Profiler::new();
        p.record_plan_cache(false);
        p.record_plan_cache(true);
        p.record_plan_cache(true);
        let s = p.plan_cache_stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        p.reset();
        assert_eq!(p.plan_cache_stats().hits, 0);
    }

    #[test]
    fn labels_cover_all_kinds() {
        assert_eq!(OperatorKind::GroupBy.label(), "GroupBy");
        assert_eq!(OperatorKind::JoinAggregate.label(), "JoinAggregate");
        assert_eq!(OperatorKind::UdfEval.label(), "UdfEval");
    }

    #[test]
    fn fused_records_carry_extra_counters() {
        let p = Profiler::new();
        p.record_fused(
            OperatorKind::JoinAggregate,
            Duration::from_millis(2),
            Duration::from_millis(4),
            1000,
            10,
            8192,
        );
        p.record_fused(
            OperatorKind::JoinAggregate,
            Duration::from_millis(1),
            Duration::from_millis(1),
            500,
            10,
            4096,
        );
        let s = p.stats(OperatorKind::JoinAggregate).unwrap();
        assert_eq!(s.rows_in, 1500);
        assert_eq!(s.rows_out, 20);
        assert_eq!(s.bytes_not_materialized, 12288);
        assert_eq!(s.invocations, 2);
    }
}
