//! `cachekit` — the shared caching machinery of the repository's
//! multi-level cache subsystem.
//!
//! Three cache layers sit on top of this crate:
//!
//! * `minidb`'s **plan cache** (normalized SQL text → optimized plan,
//!   validated against the catalog [`Epoch`]),
//! * `collab`'s **nUDF inference memoization** (model generation +
//!   keyframe bytes → prediction, a [`ShardedLru`]),
//! * `dl2sql`'s **compiled-artifact cache** (model + pre-join strategy →
//!   `CompiledModel`/`Runner`).
//!
//! The crate provides the pieces they share: a monotonically increasing
//! epoch counter for cheap bulk invalidation, an O(log n)
//! capacity-bounded LRU map with hit/miss/eviction accounting, and a
//! sharded wrapper that spreads lock contention across independent LRUs.

use std::borrow::Borrow;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

// ---------------------------------------------------------------------------
// epochs
// ---------------------------------------------------------------------------

/// A monotonically increasing version counter.
///
/// Writers [`bump`](Epoch::bump) it whenever they change state that cached
/// values depend on; caches stamp each entry with [`current`](Epoch::current)
/// at fill time and treat any entry with a stale stamp as a miss. This
/// turns "invalidate everything derived from X" into a single atomic
/// increment.
#[derive(Debug, Default)]
pub struct Epoch(AtomicU64);

impl Epoch {
    /// A fresh counter at 0.
    pub fn new() -> Self {
        Epoch::default()
    }

    /// The current value.
    pub fn current(&self) -> u64 {
        self.0.load(Ordering::Acquire)
    }

    /// Increments and returns the new value.
    pub fn bump(&self) -> u64 {
        self.0.fetch_add(1, Ordering::AcqRel) + 1
    }
}

// ---------------------------------------------------------------------------
// statistics
// ---------------------------------------------------------------------------

/// Lock-free hit/miss/eviction counters, shared by every cache level.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Records a lookup that was served from the cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a lookup that had to be recomputed.
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a capacity eviction.
    pub fn record_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Zeroes all counters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl StatsSnapshot {
    /// Lookups served from the cache over all lookups (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Sums two snapshots (aggregating shards).
    pub fn merge(self, other: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            hits: self.hits + other.hits,
            misses: self.misses + other.misses,
            evictions: self.evictions + other.evictions,
        }
    }
}

// ---------------------------------------------------------------------------
// LRU
// ---------------------------------------------------------------------------

struct LruInner<K, V> {
    /// key → (value, recency tick of the last touch).
    map: HashMap<K, (V, u64)>,
    /// recency tick → key, ordered oldest-first for O(log n) eviction.
    recency: BTreeMap<u64, K>,
    tick: u64,
}

/// A thread-safe, capacity-bounded least-recently-used map.
///
/// `get` refreshes recency; `insert` evicts the coldest entry once the
/// capacity is exceeded. A capacity of 0 disables the cache: every lookup
/// misses and inserts are dropped, so call sites need no separate
/// "enabled" flag.
pub struct LruCache<K, V> {
    inner: Mutex<LruInner<K, V>>,
    capacity: AtomicU64,
    stats: CacheStats,
}

impl<K: Hash + Eq + Clone, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            inner: Mutex::new(LruInner { map: HashMap::new(), recency: BTreeMap::new(), tick: 0 }),
            capacity: AtomicU64::new(capacity as u64),
            stats: CacheStats::default(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed) as usize
    }

    /// Changes the capacity, evicting cold entries if the cache shrank.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity as u64, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        while inner.map.len() > capacity {
            evict_coldest(&mut inner, &self.stats);
        }
    }

    /// Looks up a key, refreshing its recency. Records a hit or miss.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some((value, last)) => {
                let old = std::mem::replace(last, tick);
                let value = value.clone();
                let key = inner.recency.remove(&old).expect("recency entry tracks map entry");
                inner.recency.insert(tick, key);
                self.stats.record_hit();
                Some(value)
            }
            None => {
                self.stats.record_miss();
                None
            }
        }
    }

    /// Checks for a key without refreshing recency or touching counters.
    pub fn peek<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.inner.lock().map.get(key).map(|(v, _)| v.clone())
    }

    /// Inserts (or replaces) an entry, evicting the coldest entries while
    /// over capacity. A no-op when the capacity is 0.
    pub fn insert(&self, key: K, value: V) {
        let capacity = self.capacity();
        if capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((_, old)) = inner.map.insert(key.clone(), (value, tick)) {
            inner.recency.remove(&old);
        }
        inner.recency.insert(tick, key);
        while inner.map.len() > capacity {
            evict_coldest(&mut inner, &self.stats);
        }
    }

    /// Removes an entry, returning its value.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let mut inner = self.inner.lock();
        let (value, last) = inner.map.remove(key)?;
        inner.recency.remove(&last);
        Some(value)
    }

    /// Removes every entry for which `pred` returns true (targeted
    /// invalidation), returning how many were removed.
    pub fn retain(&self, mut pred: impl FnMut(&K, &V) -> bool) -> usize {
        let mut inner = self.inner.lock();
        let doomed: Vec<(K, u64)> = inner
            .map
            .iter()
            .filter(|(k, (v, _))| !pred(k, v))
            .map(|(k, (_, t))| (k.clone(), *t))
            .collect();
        for (k, t) in &doomed {
            inner.map.remove(k);
            inner.recency.remove(t);
        }
        doomed.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry (counters are kept).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.recency.clear();
    }

    /// The cache's hit/miss/eviction counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Zeroes the counters (entries are kept).
    pub fn reset_stats(&self) {
        self.stats.reset();
    }
}

fn evict_coldest<K: Hash + Eq, V>(inner: &mut LruInner<K, V>, stats: &CacheStats) {
    if let Some((&tick, _)) = inner.recency.iter().next() {
        let key = inner.recency.remove(&tick).expect("just observed");
        inner.map.remove(&key);
        stats.record_eviction();
    }
}

// ---------------------------------------------------------------------------
// sharding
// ---------------------------------------------------------------------------

/// An [`LruCache`] split into independently locked shards selected by key
/// hash, so concurrent workers (the morsel executor's UDF evaluation, the
/// taskpool's batch inference) rarely contend on one mutex. The total
/// capacity is divided evenly across shards.
pub struct ShardedLru<K, V> {
    shards: Vec<LruCache<K, V>>,
}

impl<K: Hash + Eq + Clone, V: Clone> ShardedLru<K, V> {
    /// A cache of `total_capacity` entries across `shards` shards (shard
    /// count is clamped to at least 1 and rounded so every shard gets the
    /// same capacity).
    pub fn new(total_capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = total_capacity.div_ceil(shards);
        ShardedLru { shards: (0..shards).map(|_| LruCache::new(per_shard)).collect() }
    }

    fn shard<Q>(&self, key: &Q) -> &LruCache<K, V>
    where
        Q: Hash + ?Sized,
    {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Total configured capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.capacity()).sum()
    }

    /// Redistributes a new total capacity across the existing shards
    /// (shrinking shards evict their coldest entries; counters are kept).
    pub fn set_capacity(&self, total_capacity: usize) {
        let per_shard = total_capacity.div_ceil(self.shards.len());
        for s in &self.shards {
            s.set_capacity(if total_capacity == 0 { 0 } else { per_shard });
        }
    }

    /// Looks up a key in its shard.
    pub fn get<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard(key).get(key)
    }

    /// Inserts into the key's shard.
    pub fn insert(&self, key: K, value: V) {
        self.shard(&key).insert(key, value);
    }

    /// Removes from the key's shard.
    pub fn remove<Q>(&self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.shard(key).remove(key)
    }

    /// Removes entries failing `pred` across all shards.
    pub fn retain(&self, mut pred: impl FnMut(&K, &V) -> bool) -> usize {
        self.shards.iter().map(|s| s.retain(&mut pred)).sum()
    }

    /// Live entries across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears every shard.
    pub fn clear(&self) {
        for s in &self.shards {
            s.clear();
        }
    }

    /// Aggregated counters across shards.
    pub fn stats(&self) -> StatsSnapshot {
        self.shards.iter().fold(StatsSnapshot::default(), |acc, s| acc.merge(s.stats()))
    }

    /// Zeroes every shard's counters.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            s.reset_stats();
        }
    }
}

// ---------------------------------------------------------------------------
// content hashing
// ---------------------------------------------------------------------------

/// FNV-1a over a byte slice — a cheap, dependency-free content hash for
/// keyframe blobs and normalized SQL. Collisions only affect shard
/// selection / HashMap bucketing, never correctness: cache keys compare
/// full contents.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_bumps_monotonically() {
        let e = Epoch::new();
        assert_eq!(e.current(), 0);
        assert_eq!(e.bump(), 1);
        assert_eq!(e.bump(), 2);
        assert_eq!(e.current(), 2);
    }

    #[test]
    fn lru_hit_miss_accounting() {
        let c: LruCache<String, i64> = LruCache::new(4);
        assert_eq!(c.get("a"), None);
        c.insert("a".into(), 1);
        assert_eq!(c.get("a"), Some(1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_coldest_under_tiny_capacity() {
        let c: LruCache<i64, i64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(2, 20);
        // Touch 1 so 2 is the coldest.
        assert_eq!(c.get(&1), Some(10));
        c.insert(3, 30);
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&2), None, "coldest entry evicted");
        assert_eq!(c.peek(&1), Some(10));
        assert_eq!(c.peek(&3), Some(30));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let c: LruCache<i64, i64> = LruCache::new(0);
        c.insert(1, 10);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
    }

    #[test]
    fn set_capacity_shrinks_and_grows() {
        let c: LruCache<i64, i64> = LruCache::new(8);
        for i in 0..8 {
            c.insert(i, i);
        }
        c.set_capacity(3);
        assert_eq!(c.len(), 3);
        c.set_capacity(8);
        for i in 10..15 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 8);
    }

    #[test]
    fn replace_does_not_leak_recency() {
        let c: LruCache<i64, i64> = LruCache::new(2);
        c.insert(1, 10);
        c.insert(1, 11);
        c.insert(2, 20);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn retain_removes_matching_entries() {
        let c: LruCache<i64, i64> = LruCache::new(8);
        for i in 0..6 {
            c.insert(i, i * 10);
        }
        let removed = c.retain(|k, _| k % 2 == 0);
        assert_eq!(removed, 3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.peek(&1), None);
        assert_eq!(c.peek(&2), Some(20));
    }

    #[test]
    fn sharded_lru_spreads_and_aggregates() {
        // Generous capacity: per-shard budgets mean a perfectly full cache
        // would need perfectly uniform key hashing.
        let c: ShardedLru<i64, i64> = ShardedLru::new(512, 8);
        for i in 0..64 {
            c.insert(i, i);
        }
        for i in 0..64 {
            assert_eq!(c.get(&i), Some(i), "key {i}");
        }
        assert_eq!(c.len(), 64);
        let s = c.stats();
        assert_eq!(s.hits, 64);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn sharded_lru_is_thread_safe() {
        let c: std::sync::Arc<ShardedLru<i64, i64>> = std::sync::Arc::new(ShardedLru::new(256, 8));
        let mut handles = Vec::new();
        for t in 0..4i64 {
            let c = std::sync::Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for i in 0..200 {
                    let k = (t * 50 + i) % 100;
                    c.insert(k, k * 2);
                    if let Some(v) = c.get(&k) {
                        assert_eq!(v, k * 2);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn fnv1a_distinguishes_contents() {
        assert_ne!(fnv1a(b"abc"), fnv1a(b"abd"));
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
    }
}
