//! Device profiles and simulated-time accounting.
//!
//! The paper evaluates on an ARM edge device and on a Xeon + Quadro P6000
//! server. Only one host is available to this reproduction, so
//! cross-hardware experiments (paper Fig. 8) are reproduced with a
//! deterministic cost model: every operator charges its floating-point work
//! (and, for the GPU, its host↔device transfer bytes) to a [`SimClock`]
//! whose [`DeviceProfile`] converts work into simulated seconds. The
//! profiles are calibrated so that the server-CPU profile roughly matches
//! real wall time on a laptop-class machine; the edge and GPU profiles keep
//! the paper's relative throughput ratios.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which physical device a profile models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// The paper's ARM V8 edge device (no accelerator).
    EdgeCpu,
    /// The Alibaba Cloud server's Xeon CPU.
    ServerCpu,
    /// The server's Quadro P6000 GPU.
    ServerGpu,
}

/// Throughput characteristics of a device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Which device this profile models.
    pub kind: DeviceKind,
    /// Sustained floating-point throughput, in FLOP/s.
    pub flops_per_sec: f64,
    /// Bytes/s for moving data onto the device (PCIe for the GPU; memory
    /// bandwidth otherwise).
    pub transfer_bytes_per_sec: f64,
    /// Fixed per-dispatch latency in seconds (kernel-launch cost on the
    /// GPU, negligible on CPUs).
    pub dispatch_latency_sec: f64,
    /// Synchronous host↔device round-trip latency per inference call
    /// (copy-in + launch + copy-out for an unbatched call). Zero on CPUs.
    pub round_trip_sec: f64,
}

impl DeviceProfile {
    /// The ARM V8 edge CPU.
    pub fn edge_cpu() -> Self {
        DeviceProfile {
            kind: DeviceKind::EdgeCpu,
            flops_per_sec: 2.0e9,
            transfer_bytes_per_sec: 4.0e9,
            dispatch_latency_sec: 0.0,
            round_trip_sec: 0.0,
        }
    }

    /// The server Xeon CPU.
    pub fn server_cpu() -> Self {
        DeviceProfile {
            kind: DeviceKind::ServerCpu,
            flops_per_sec: 4.0e10,
            transfer_bytes_per_sec: 2.0e10,
            dispatch_latency_sec: 0.0,
            round_trip_sec: 0.0,
        }
    }

    /// The Quadro P6000 GPU: vastly faster compute, but every tensor must
    /// cross PCIe and each kernel launch pays a fixed latency — which is
    /// exactly why the paper's Fig. 8 shows GPU *loading* cost growing while
    /// inference cost shrinks.
    pub fn server_gpu() -> Self {
        DeviceProfile {
            kind: DeviceKind::ServerGpu,
            flops_per_sec: 1.0e13,
            transfer_bytes_per_sec: 8.0e9,
            dispatch_latency_sec: 20.0e-6,
            // A synchronous, unbatched inference call pays copy-in +
            // launch + copy-out every time; calibrated so that row-at-a-
            // time UDF inference cannot exploit the GPU (the paper's
            // observation for DB-UDF).
            round_trip_sec: 1.5e-3,
        }
    }
}

/// A ledger of simulated work. Thread-safe; cheap atomic adds on the hot
/// path, conversion to seconds only when read.
#[derive(Debug, Default)]
pub struct SimClock {
    flops: AtomicU64,
    transfer_bytes: AtomicU64,
    dispatches: AtomicU64,
    round_trips: AtomicU64,
}

impl SimClock {
    /// A fresh, empty ledger.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Records floating-point work.
    pub fn charge_flops(&self, flops: u64) {
        self.flops.fetch_add(flops, Ordering::Relaxed);
        self.dispatches.fetch_add(1, Ordering::Relaxed);
    }

    /// Records bytes moved onto the device.
    pub fn charge_transfer(&self, bytes: u64) {
        self.transfer_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records one synchronous host↔device round trip (an unbatched
    /// inference call).
    pub fn charge_round_trip(&self) {
        self.round_trips.fetch_add(1, Ordering::Relaxed);
    }

    /// Total round trips recorded.
    pub fn round_trips(&self) -> u64 {
        self.round_trips.load(Ordering::Relaxed)
    }

    /// Total floating-point operations recorded.
    pub fn flops(&self) -> u64 {
        self.flops.load(Ordering::Relaxed)
    }

    /// Total bytes recorded as transferred.
    pub fn transfer_bytes(&self) -> u64 {
        self.transfer_bytes.load(Ordering::Relaxed)
    }

    /// Number of operator dispatches recorded.
    pub fn dispatches(&self) -> u64 {
        self.dispatches.load(Ordering::Relaxed)
    }

    /// Converts the ledger into simulated seconds under `profile`.
    pub fn simulated_seconds(&self, profile: &DeviceProfile) -> f64 {
        let compute = self.flops() as f64 / profile.flops_per_sec;
        let transfer = self.transfer_bytes() as f64 / profile.transfer_bytes_per_sec;
        let dispatch = self.dispatches() as f64 * profile.dispatch_latency_sec;
        let trips = self.round_trips() as f64 * profile.round_trip_sec;
        compute + transfer + dispatch + trips
    }

    /// Resets the ledger to zero.
    pub fn reset(&self) {
        self.flops.store(0, Ordering::Relaxed);
        self.transfer_bytes.store(0, Ordering::Relaxed);
        self.dispatches.store(0, Ordering::Relaxed);
        self.round_trips.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_accumulates() {
        let c = SimClock::new();
        c.charge_flops(100);
        c.charge_flops(50);
        c.charge_transfer(1_000);
        assert_eq!(c.flops(), 150);
        assert_eq!(c.transfer_bytes(), 1_000);
        assert_eq!(c.dispatches(), 2);
    }

    #[test]
    fn faster_device_simulates_less_time() {
        let c = SimClock::new();
        c.charge_flops(2_000_000_000);
        let edge = c.simulated_seconds(&DeviceProfile::edge_cpu());
        let server = c.simulated_seconds(&DeviceProfile::server_cpu());
        assert!(edge > server);
        // 2 GFLOP on a 2 GFLOP/s edge CPU is about a second.
        assert!((edge - 1.0).abs() < 0.01);
    }

    #[test]
    fn gpu_pays_transfer_and_dispatch() {
        let c = SimClock::new();
        c.charge_flops(1_000); // trivially cheap compute
        c.charge_transfer(80_000_000); // 80 MB over 8 GB/s = 10 ms
        let gpu = c.simulated_seconds(&DeviceProfile::server_gpu());
        assert!(gpu > 0.009, "transfer should dominate: {gpu}");
    }

    #[test]
    fn round_trips_penalize_unbatched_gpu_calls() {
        let c = SimClock::new();
        for _ in 0..1000 {
            c.charge_round_trip();
        }
        let gpu = c.simulated_seconds(&DeviceProfile::server_gpu());
        let cpu = c.simulated_seconds(&DeviceProfile::server_cpu());
        assert!(gpu > 1.0, "1000 synchronous calls cost seconds on a GPU: {gpu}");
        assert_eq!(cpu, 0.0, "CPUs have no round-trip latency");
    }

    #[test]
    fn reset_clears_everything() {
        let c = SimClock::new();
        c.charge_flops(5);
        c.charge_transfer(5);
        c.charge_round_trip();
        c.reset();
        assert_eq!(c.flops(), 0);
        assert_eq!(c.transfer_bytes(), 0);
        assert_eq!(c.dispatches(), 0);
        assert_eq!(c.round_trips(), 0);
    }
}
