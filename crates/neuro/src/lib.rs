//! `neuro` — a small, self-contained tensor and CNN inference engine.
//!
//! This crate is the stand-in for PyTorch / LibTorch in the reproduction of
//! *"A Comparative Study of in-Database Inference Approaches"* (ICDE 2022).
//! It provides exactly the operator inventory the paper's Table II lists:
//!
//! * convolution and deconvolution ([`ops::conv`]),
//! * average / max pooling ([`ops::pool`]),
//! * ReLU and Sigmoid activations ([`ops::activation`]),
//! * batch and instance normalization ([`ops::norm`]),
//! * full connection ([`mod@ops::linear`]),
//! * basic attention ([`ops::attention`]),
//! * residual / identity / dense blocks ([`graph`]),
//! * softmax classification heads ([`mod@ops::softmax`]).
//!
//! LSTM / GRU and self-attention are intentionally absent — the paper marks
//! them *Unsupported* as well.
//!
//! Beyond the kernels themselves the crate provides:
//!
//! * [`model::Model`] — a runnable network (layer graph + weights) with a
//!   single-image and a batched forward pass,
//! * [`serialize`] — a binary model format standing in for TorchScript
//!   (`save` / `load`), plus the stripped "compiled UDF" form the paper's
//!   loose-integration strategy links into the database kernel,
//! * [`device`] — device profiles (edge CPU / server CPU / server GPU) and a
//!   deterministic simulated-time ledger used to reproduce the paper's
//!   cross-hardware comparisons on a single host,
//! * [`zoo`] — builders for the paper's model family: the distilled 3-block
//!   student CNN and ResNet-style networks of depth 5–40.

pub mod device;
pub mod error;
pub mod graph;
pub mod model;
pub mod ops;
pub mod serialize;
pub mod tensor;
pub mod zoo;

pub use device::{DeviceKind, DeviceProfile, SimClock};
pub use error::{Error, Result};
pub use graph::{Block, Layer};
pub use model::Model;
pub use tensor::Tensor;
