//! Max / average pooling.
//!
//! DL2SQL realizes pooling as a group-by aggregate over the feature-map
//! table (paper query Q3); these direct implementations are the reference.

use crate::error::Result;
use crate::ops::conv::conv_output_dim;
use crate::tensor::Tensor;

/// Shared sliding-window reducer. `init` seeds the accumulator, `fold`
/// combines it with each window element, and `finish` maps the accumulator
/// plus window size to the pooled value.
fn pool2d<F, G>(
    input: &Tensor,
    kernel: usize,
    stride: usize,
    init: f32,
    fold: F,
    finish: G,
) -> Result<Tensor>
where
    F: Fn(f32, f32) -> f32,
    G: Fn(f32, usize) -> f32,
{
    let (c, h, w) = input.as_chw()?;
    let out_h = conv_output_dim(h, kernel, stride, 0)?;
    let out_w = conv_output_dim(w, kernel, stride, 0)?;
    let mut out = Tensor::zeros(vec![c, out_h, out_w]);
    for ch in 0..c {
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = init;
                for ky in 0..kernel {
                    for kx in 0..kernel {
                        acc = fold(acc, input.at(ch, oy * stride + ky, ox * stride + kx));
                    }
                }
                *out.at_mut(ch, oy, ox) = finish(acc, kernel * kernel);
            }
        }
    }
    Ok(out)
}

/// Max pooling with a square `kernel` and `stride` (no padding).
pub fn max_pool2d(input: &Tensor, kernel: usize, stride: usize) -> Result<Tensor> {
    pool2d(input, kernel, stride, f32::NEG_INFINITY, f32::max, |acc, _| acc)
}

/// Average pooling with a square `kernel` and `stride` (no padding).
pub fn avg_pool2d(input: &Tensor, kernel: usize, stride: usize) -> Result<Tensor> {
    pool2d(input, kernel, stride, 0.0, |a, b| a + b, |acc, n| acc / n as f32)
}

/// Global average pooling: collapses each channel of a `[C, H, W]` map to a
/// single value, producing a `[C]` vector. Standard classification-head prep
/// for the ResNet family.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (c, h, w) = input.as_chw()?;
    let area = (h * w) as f32;
    let mut out = vec![0.0f32; c];
    for (ch, slot) in out.iter_mut().enumerate() {
        let mut sum = 0.0;
        for y in 0..h {
            for x in 0..w {
                sum += input.at(ch, y, x);
            }
        }
        *slot = sum / area;
    }
    Tensor::new(vec![c], out)
}

/// Floating-point work of a pooling pass: one op per window element.
pub fn pool_flops(c: usize, out_h: usize, out_w: usize, kernel: usize) -> u64 {
    (c * out_h * out_w * kernel * kernel) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::new(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn max_pool_picks_window_maxima() {
        let input = t(
            &[1, 4, 4],
            &[
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        );
        let out = max_pool2d(&input, 2, 2).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn avg_pool_averages_windows() {
        let input = t(&[1, 2, 2], &[1., 3., 5., 7.]);
        let out = avg_pool2d(&input, 2, 2).unwrap();
        assert_eq!(out.data(), &[4.0]);
    }

    #[test]
    fn overlapping_stride_one_windows() {
        let input = t(&[1, 3, 3], &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let out = max_pool2d(&input, 2, 1).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[5., 6., 8., 9.]);
    }

    #[test]
    fn pooling_is_per_channel() {
        let input = t(&[2, 2, 2], &[1., 2., 3., 4., 10., 20., 30., 40.]);
        let out = max_pool2d(&input, 2, 2).unwrap();
        assert_eq!(out.shape(), &[2, 1, 1]);
        assert_eq!(out.data(), &[4., 40.]);
    }

    #[test]
    fn max_pool_handles_negative_values() {
        let input = t(&[1, 2, 2], &[-4., -3., -2., -1.]);
        let out = max_pool2d(&input, 2, 2).unwrap();
        assert_eq!(out.data(), &[-1.0]);
    }

    #[test]
    fn global_avg_pool_collapses_spatial_dims() {
        let input = t(&[2, 2, 2], &[1., 1., 1., 1., 2., 4., 6., 8.]);
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.shape(), &[2]);
        assert_eq!(out.data(), &[1.0, 5.0]);
    }

    #[test]
    fn kernel_larger_than_input_is_rejected() {
        let input = t(&[1, 2, 2], &[0.0; 4]);
        assert!(max_pool2d(&input, 3, 1).is_err());
    }
}
