//! 2-D convolution and deconvolution (transposed convolution).
//!
//! These are the operators the paper spends its Section III-C1 on: DL2SQL
//! stores the same kernels in a relational `Kernel` table and performs the
//! same sliding-window dot products as a join + group-by. The direct
//! implementations here are the reference the SQL execution is
//! cross-checked against.

use crate::error::{Error, Result};
use crate::tensor::Tensor;

/// Below this much floating-point work a kernel runs inline even when the
/// process-wide [`taskpool::default_parallelism`] is above one.
pub(crate) const MIN_PARALLEL_FLOPS: u64 = 32_768;

/// Output spatial dimension of a convolution:
/// `(in + 2*padding - kernel) / stride + 1` (paper Eq. 3).
///
/// Returns an error when the kernel does not fit the padded input or the
/// stride does not evenly walk the input (the paper assumes it does).
pub fn conv_output_dim(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<usize> {
    if stride == 0 {
        return Err(Error::InvalidConfig("stride must be positive".into()));
    }
    let padded = input + 2 * padding;
    if kernel == 0 || kernel > padded {
        return Err(Error::InvalidConfig(format!(
            "kernel {kernel} does not fit padded input {padded}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Validates a convolution weight tensor of shape `[out_c, in_c, kh, kw]`
/// against the input's channel count and returns `(out_c, in_c, kh, kw)`.
fn check_weight(weight: &Tensor, in_c: usize) -> Result<(usize, usize, usize, usize)> {
    match weight.shape() {
        [oc, ic, kh, kw] if *ic == in_c => Ok((*oc, *ic, *kh, *kw)),
        _ => Err(Error::ShapeMismatch {
            expected: format!("[out_c, {in_c}, kh, kw]"),
            got: weight.shape().to_vec(),
        }),
    }
}

/// 2-D convolution over a `[C, H, W]` input with a `[out_c, C, kh, kw]`
/// weight tensor and optional per-output-channel bias.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    let (in_c, in_h, in_w) = input.as_chw()?;
    let (out_c, _, kh, kw) = check_weight(weight, in_c)?;
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(Error::ShapeMismatch {
                expected: format!("[{out_c}] bias"),
                got: vec![b.len()],
            });
        }
    }
    let out_h = conv_output_dim(in_h, kh, stride, padding)?;
    let out_w = conv_output_dim(in_w, kw, stride, padding)?;

    let w = weight.data();
    let plane = out_h * out_w;
    // Output channels are independent (each writes its own plane), so the
    // per-channel results are bit-identical at any worker count. Tiny
    // kernels stay inline: thread spawn would dominate the arithmetic.
    let workers = if conv2d_flops(in_c, out_c, out_h, out_w, kh, kw) >= MIN_PARALLEL_FLOPS {
        taskpool::default_parallelism()
    } else {
        1
    };
    let planes = taskpool::run_indexed(workers, out_c, |oc| {
        let bias_v = bias.map_or(0.0, |b| b[oc]);
        let mut out = vec![0.0f32; plane];
        for oy in 0..out_h {
            for ox in 0..out_w {
                let mut acc = bias_v;
                for ic in 0..in_c {
                    for ky in 0..kh {
                        // Signed arithmetic handles the padded border.
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            let wv = w[((oc * in_c + ic) * kh + ky) * kw + kx];
                            acc += wv * input.at(ic, iy as usize, ix as usize);
                        }
                    }
                }
                out[oy * out_w + ox] = acc;
            }
        }
        out
    });
    let mut data = Vec::with_capacity(out_c * plane);
    for p in planes {
        data.extend_from_slice(&p);
    }
    Tensor::new(vec![out_c, out_h, out_w], data)
}

/// Floating-point operations performed by [`conv2d`]: two per
/// multiply-accumulate across the full output volume.
pub fn conv2d_flops(
    in_c: usize,
    out_c: usize,
    out_h: usize,
    out_w: usize,
    kh: usize,
    kw: usize,
) -> u64 {
    2 * (out_c * out_h * out_w * in_c * kh * kw) as u64
}

/// Transposed convolution ("deconvolution") over a `[C, H, W]` input with a
/// `[in_c, out_c, kh, kw]` weight tensor.
///
/// Output size is `(in - 1) * stride + kernel - 2 * padding`, the inverse of
/// [`conv_output_dim`].
pub fn deconv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&[f32]>,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    let (in_c, in_h, in_w) = input.as_chw()?;
    let (out_c, kh, kw) = match weight.shape() {
        [ic, oc, kh, kw] if *ic == in_c => (*oc, *kh, *kw),
        _ => {
            return Err(Error::ShapeMismatch {
                expected: format!("[{in_c}, out_c, kh, kw]"),
                got: weight.shape().to_vec(),
            })
        }
    };
    if stride == 0 {
        return Err(Error::InvalidConfig("stride must be positive".into()));
    }
    let full_h = (in_h - 1) * stride + kh;
    let full_w = (in_w - 1) * stride + kw;
    if 2 * padding >= full_h || 2 * padding >= full_w {
        return Err(Error::InvalidConfig(format!(
            "padding {padding} consumes the whole {full_h}x{full_w} deconv output"
        )));
    }
    let out_h = full_h - 2 * padding;
    let out_w = full_w - 2 * padding;

    let w = weight.data();
    let mut out = Tensor::zeros(vec![out_c, out_h, out_w]);
    // Scatter each input element into the output through the kernel.
    for ic in 0..in_c {
        for iy in 0..in_h {
            for ix in 0..in_w {
                let v = input.at(ic, iy, ix);
                for oc in 0..out_c {
                    for ky in 0..kh {
                        let oy = (iy * stride + ky) as isize - padding as isize;
                        if oy < 0 || oy >= out_h as isize {
                            continue;
                        }
                        for kx in 0..kw {
                            let ox = (ix * stride + kx) as isize - padding as isize;
                            if ox < 0 || ox >= out_w as isize {
                                continue;
                            }
                            let wv = w[((ic * out_c + oc) * kh + ky) * kw + kx];
                            *out.at_mut(oc, oy as usize, ox as usize) += v * wv;
                        }
                    }
                }
            }
        }
    }
    if let Some(b) = bias {
        if b.len() != out_c {
            return Err(Error::ShapeMismatch {
                expected: format!("[{out_c}] bias"),
                got: vec![b.len()],
            });
        }
        #[allow(clippy::needless_range_loop)] // oc indexes both bias and output
        for oc in 0..out_c {
            for oy in 0..out_h {
                for ox in 0..out_w {
                    *out.at_mut(oc, oy, ox) += b[oc];
                }
            }
        }
    }
    Ok(out)
}

/// Floating-point operations performed by [`deconv2d`].
pub fn deconv2d_flops(
    in_c: usize,
    out_c: usize,
    in_h: usize,
    in_w: usize,
    kh: usize,
    kw: usize,
) -> u64 {
    2 * (in_c * in_h * in_w * out_c * kh * kw) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::new(shape.to_vec(), data.to_vec()).unwrap()
    }

    #[test]
    fn output_dim_matches_paper_eq3() {
        // 5x5 input, 3x3 kernel, stride 2, no padding -> 2x2 (paper Fig. 3).
        assert_eq!(conv_output_dim(5, 3, 2, 0).unwrap(), 2);
        assert_eq!(conv_output_dim(7, 3, 1, 1).unwrap(), 7);
        assert!(conv_output_dim(2, 5, 1, 0).is_err());
        assert!(conv_output_dim(5, 3, 0, 0).is_err());
    }

    #[test]
    fn identity_kernel_passes_input_through() {
        let input = t(&[1, 3, 3], &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let weight = t(&[1, 1, 1, 1], &[1.0]);
        let out = conv2d(&input, &weight, None, 1, 0).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn sum_kernel_matches_hand_computation() {
        // 3x3 all-ones kernel over a 3x3 input sums everything.
        let input = t(&[1, 3, 3], &[1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let weight = t(&[1, 1, 3, 3], &[1.0; 9]);
        let out = conv2d(&input, &weight, None, 1, 0).unwrap();
        assert_eq!(out.shape(), &[1, 1, 1]);
        assert_eq!(out.data()[0], 45.0);
    }

    #[test]
    fn paper_figure3_example() {
        // The 5x5 input and 3x3 kernel of paper Fig. 3/4, stride 2: the first
        // window is rows 0..3 x cols 0..3.
        let input = t(
            &[1, 5, 5],
            &[
                2., 1., 3., 0., 1., //
                0., 4., 2., 1., 0., //
                1., 0., 1., 2., 3., //
                2., 1., 0., 1., 2., //
                0., 3., 2., 1., 0.,
            ],
        );
        let weight = t(&[1, 1, 3, 3], &[3., 0., 1., 0., 1., 0., 1., 0., 2.]);
        let out = conv2d(&input, &weight, None, 2, 0).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        // Hand-computed window (0,0): 3*2 + 1*3 + 1*4 + 1*1 + 2*1 = 16.
        assert_eq!(out.at(0, 0, 0), 16.0);
    }

    #[test]
    fn stride_and_padding_change_geometry() {
        let input = t(&[1, 4, 4], &[1.0; 16]);
        let weight = t(&[1, 1, 3, 3], &[1.0; 9]);
        let out = conv2d(&input, &weight, None, 1, 1).unwrap();
        assert_eq!(out.shape(), &[1, 4, 4]);
        // Corner sees only a 2x2 patch of ones.
        assert_eq!(out.at(0, 0, 0), 4.0);
        // Center sees the full 3x3 patch.
        assert_eq!(out.at(0, 1, 1), 9.0);
    }

    #[test]
    fn multi_channel_accumulates_across_input_channels() {
        let input = t(&[2, 2, 2], &[1., 1., 1., 1., 2., 2., 2., 2.]);
        let weight = t(&[1, 2, 2, 2], &[1.0; 8]);
        let out = conv2d(&input, &weight, None, 1, 0).unwrap();
        assert_eq!(out.data(), &[4.0 + 8.0]);
    }

    #[test]
    fn bias_added_per_output_channel() {
        let input = t(&[1, 1, 1], &[2.0]);
        let weight = t(&[2, 1, 1, 1], &[3.0, 5.0]);
        let out = conv2d(&input, &weight, Some(&[10.0, 20.0]), 1, 0).unwrap();
        assert_eq!(out.data(), &[16.0, 30.0]);
    }

    #[test]
    fn conv_rejects_wrong_channel_count() {
        let input = t(&[2, 3, 3], &[0.0; 18]);
        let weight = t(&[1, 1, 3, 3], &[0.0; 9]);
        assert!(conv2d(&input, &weight, None, 1, 0).is_err());
    }

    #[test]
    fn deconv_inverts_geometry_of_conv() {
        // conv(6, k=3, s=1, p=0) -> 4; deconv(4, k=3, s=1, p=0) -> 6.
        let input = t(&[1, 4, 4], &[1.0; 16]);
        let weight = t(&[1, 1, 3, 3], &[1.0; 9]);
        let out = deconv2d(&input, &weight, None, 1, 0).unwrap();
        assert_eq!(out.shape(), &[1, 6, 6]);
    }

    #[test]
    fn deconv_scatter_matches_hand_computation() {
        // Single input pixel scatters the kernel.
        let input = t(&[1, 1, 1], &[2.0]);
        let weight = t(&[1, 1, 2, 2], &[1., 2., 3., 4.]);
        let out = deconv2d(&input, &weight, None, 1, 0).unwrap();
        assert_eq!(out.shape(), &[1, 2, 2]);
        assert_eq!(out.data(), &[2., 4., 6., 8.]);
    }

    #[test]
    fn deconv_stride_spreads_inputs() {
        let input = t(&[1, 2, 2], &[1., 2., 3., 4.]);
        let weight = t(&[1, 1, 1, 1], &[1.0]);
        let out = deconv2d(&input, &weight, None, 2, 0).unwrap();
        assert_eq!(out.shape(), &[1, 3, 3]);
        assert_eq!(out.at(0, 0, 0), 1.0);
        assert_eq!(out.at(0, 0, 2), 2.0);
        assert_eq!(out.at(0, 2, 2), 4.0);
        assert_eq!(out.at(0, 1, 1), 0.0);
    }

    #[test]
    fn parallel_conv_is_bit_identical_to_serial() {
        // Big enough to clear MIN_PARALLEL_FLOPS so the pool actually runs.
        let in_c = 4;
        let out_c = 8;
        let input = Tensor::new(
            vec![in_c, 16, 16],
            (0..in_c * 16 * 16).map(|i| (i % 13) as f32 * 0.25 - 1.0).collect(),
        )
        .unwrap();
        let weight = Tensor::new(
            vec![out_c, in_c, 3, 3],
            (0..out_c * in_c * 9).map(|i| (i % 7) as f32 * 0.5 - 1.5).collect(),
        )
        .unwrap();
        let bias: Vec<f32> = (0..out_c).map(|o| o as f32 * 0.1).collect();

        let serial = conv2d(&input, &weight, Some(&bias), 1, 1).unwrap();
        taskpool::set_default_parallelism(4);
        let parallel = conv2d(&input, &weight, Some(&bias), 1, 1).unwrap();
        taskpool::set_default_parallelism(1);
        assert_eq!(serial, parallel, "output channels are independent; results must match exactly");
    }

    #[test]
    fn flop_counts_are_positive_and_scale() {
        let small = conv2d_flops(1, 1, 2, 2, 3, 3);
        let big = conv2d_flops(2, 4, 8, 8, 3, 3);
        assert!(small > 0 && big > small);
        assert!(deconv2d_flops(1, 1, 2, 2, 3, 3) > 0);
    }
}
