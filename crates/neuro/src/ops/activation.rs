//! Element-wise activations: ReLU and Sigmoid (paper Table II).
//!
//! DL2SQL implements ReLU as `UPDATE t SET Value = 0 WHERE Value < 0`
//! (paper query Q5); these are the direct counterparts.

use crate::tensor::Tensor;

/// Rectified linear unit: `max(0, x)` element-wise (paper Eq. 2).
pub fn relu(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    for v in out.data_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
    out
}

/// Logistic sigmoid: `1 / (1 + e^-x)` element-wise.
pub fn sigmoid(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    for v in out.data_mut() {
        *v = 1.0 / (1.0 + (-*v).exp());
    }
    out
}

/// Floating-point work of a ReLU pass (one comparison per element).
pub fn relu_flops(elements: usize) -> u64 {
    elements as u64
}

/// Floating-point work of a sigmoid pass (exp + add + div per element).
pub fn sigmoid_flops(elements: usize) -> u64 {
    4 * elements as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_zeroes_negatives_only() {
        let t = Tensor::vector(&[-2.0, -0.0, 0.0, 3.5]);
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 0.0, 3.5]);
    }

    #[test]
    fn relu_is_idempotent() {
        let t = Tensor::vector(&[-1.0, 2.0]);
        let once = relu(&t);
        let twice = relu(&once);
        assert_eq!(once, twice);
    }

    #[test]
    fn sigmoid_maps_into_unit_interval() {
        let t = Tensor::vector(&[-100.0, 0.0, 100.0]);
        let s = sigmoid(&t);
        assert!(s.data()[0] < 1e-6);
        assert!((s.data()[1] - 0.5).abs() < 1e-6);
        assert!(s.data()[2] > 1.0 - 1e-6);
    }

    #[test]
    fn sigmoid_is_monotone() {
        let t = Tensor::vector(&[-1.0, 0.0, 1.0]);
        let s = sigmoid(&t);
        assert!(s.data()[0] < s.data()[1] && s.data()[1] < s.data()[2]);
    }
}
