//! Batch and instance normalization.
//!
//! The paper's SQL implementation (query Q4) normalizes each feature-map
//! table with `(Value - AVG(Value)) / (stddevSamp(Value) + eps)` computed
//! over the *current* activations — with per-query batches of one image,
//! batch statistics coincide with per-channel statistics of that image. The
//! implementations here use the same convention so the SQL execution and
//! this engine produce bit-comparable activations:
//!
//! * [`batch_norm`] — statistics pooled over **all** channels of the map
//!   (the SQL keeps one feature-map table per channel only when channels
//!   are stored separately; the distilled student model in the paper stores
//!   one table per channel, so per-channel statistics — see
//!   [`instance_norm`] — are what its generated SQL computes), then an
//!   optional affine transform.
//! * [`instance_norm`] — statistics per channel.
//!
//! Note the paper (and therefore this reproduction) uses the *sample*
//! standard deviation (`stddevSamp`) and adds `eps` to the denominator
//! rather than under the square root.

use crate::error::Result;
use crate::tensor::Tensor;

/// Default epsilon, matching the `0.00005` literal in the paper's Q4.
pub const DEFAULT_EPS: f32 = 5e-5;

/// Mean and sample standard deviation of a slice. An empty or length-1
/// slice yields a zero standard deviation.
fn mean_stddev_samp(values: &[f32]) -> (f32, f32) {
    let n = values.len();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f32>() / n as f32;
    if n == 1 {
        return (mean, 0.0);
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / (n - 1) as f32;
    (mean, var.sqrt())
}

/// Batch normalization over the whole tensor: `(x - mean) / (stddev + eps)`,
/// optionally followed by `gamma * x + beta`.
pub fn batch_norm(input: &Tensor, eps: f32, affine: Option<(&[f32], &[f32])>) -> Result<Tensor> {
    let (mean, std) = mean_stddev_samp(input.data());
    let denom = std + eps;
    let mut out = input.clone();
    match input.as_chw() {
        Ok((c, h, w)) => {
            // Per-channel affine for feature maps.
            if let Some((gamma, beta)) = affine {
                for ch in 0..c {
                    let (g, b) = (gamma[ch % gamma.len()], beta[ch % beta.len()]);
                    for y in 0..h {
                        for x in 0..w {
                            let v = (input.at(ch, y, x) - mean) / denom;
                            *out.at_mut(ch, y, x) = g * v + b;
                        }
                    }
                }
            } else {
                for v in out.data_mut() {
                    *v = (*v - mean) / denom;
                }
            }
        }
        Err(_) => {
            // Vector input: affine is element-wise if provided.
            for (i, v) in out.data_mut().iter_mut().enumerate() {
                let normed = (*v - mean) / denom;
                *v = match affine {
                    Some((gamma, beta)) => gamma[i % gamma.len()] * normed + beta[i % beta.len()],
                    None => normed,
                };
            }
        }
    }
    Ok(out)
}

/// Instance normalization: each channel of a `[C, H, W]` map is normalized
/// with its own statistics.
pub fn instance_norm(input: &Tensor, eps: f32) -> Result<Tensor> {
    let (c, h, w) = input.as_chw()?;
    let mut out = input.clone();
    let plane = h * w;
    for ch in 0..c {
        let slice = &input.data()[ch * plane..(ch + 1) * plane];
        let (mean, std) = mean_stddev_samp(slice);
        let denom = std + eps;
        for v in &mut out.data_mut()[ch * plane..(ch + 1) * plane] {
            *v = (*v - mean) / denom;
        }
    }
    Ok(out)
}

/// Floating-point work of a normalization pass: two reduction passes plus
/// one normalization pass over the data.
pub fn norm_flops(elements: usize) -> u64 {
    5 * elements as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_norm_centres_data() {
        let t = Tensor::vector(&[1.0, 2.0, 3.0]);
        let out = batch_norm(&t, 0.0, None).unwrap();
        let sum: f32 = out.data().iter().sum();
        assert!(sum.abs() < 1e-6);
        // stddevSamp([1,2,3]) = 1, so normalized values are -1, 0, 1.
        assert!((out.data()[0] + 1.0).abs() < 1e-6);
        assert!((out.data()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn eps_is_added_to_denominator_not_under_sqrt() {
        // Constant input: std = 0, so output is 0/eps = 0 everywhere rather
        // than a division by zero.
        let t = Tensor::vector(&[4.0, 4.0, 4.0]);
        let out = batch_norm(&t, DEFAULT_EPS, None).unwrap();
        assert!(out.data().iter().all(|v| v.is_finite() && *v == 0.0));
    }

    #[test]
    fn affine_scales_and_shifts() {
        let t = Tensor::vector(&[1.0, 3.0]);
        let out = batch_norm(&t, 0.0, Some((&[2.0], &[10.0]))).unwrap();
        // normalized = [-1/sqrt(2), 1/sqrt(2)] (sample std of [1,3] = sqrt(2)).
        let s = 2.0f32.sqrt();
        assert!((out.data()[0] - (2.0 * (-1.0 / s) + 10.0)).abs() < 1e-5);
        assert!((out.data()[1] - (2.0 * (1.0 / s) + 10.0)).abs() < 1e-5);
    }

    #[test]
    fn instance_norm_isolates_channels() {
        // Channel 0 is constant, channel 1 varies; their statistics must not mix.
        let t = Tensor::new(vec![2, 1, 2], vec![5.0, 5.0, 0.0, 10.0]).unwrap();
        let out = instance_norm(&t, DEFAULT_EPS).unwrap();
        assert_eq!(out.data()[0], 0.0);
        assert_eq!(out.data()[1], 0.0);
        assert!(out.data()[2] < 0.0 && out.data()[3] > 0.0);
    }

    #[test]
    fn single_element_has_zero_stddev() {
        let (mean, std) = mean_stddev_samp(&[7.0]);
        assert_eq!((mean, std), (7.0, 0.0));
    }
}
