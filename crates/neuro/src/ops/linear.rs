//! Full connection (dense) layers.
//!
//! The paper treats a full connection as "a specific CNN operator with
//! kernel size 1 and no striding"; the DL2SQL compiler exploits exactly
//! that equivalence. The direct implementation here is a plain
//! matrix-vector product.

use crate::error::{Error, Result};
use crate::tensor::Tensor;

/// `y = W x + b` where `weight` has shape `[out, in]`, `input` is `[in]`
/// (or any shape with `in` total elements, which is implicitly flattened),
/// and `bias` is optional `[out]`.
pub fn linear(input: &Tensor, weight: &Tensor, bias: Option<&[f32]>) -> Result<Tensor> {
    let (out_dim, in_dim) = match weight.shape() {
        [o, i] => (*o, *i),
        _ => {
            return Err(Error::ShapeMismatch {
                expected: "[out, in] weight".into(),
                got: weight.shape().to_vec(),
            })
        }
    };
    if input.len() != in_dim {
        return Err(Error::ShapeMismatch {
            expected: format!("[{in_dim}] input"),
            got: input.shape().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.len() != out_dim {
            return Err(Error::ShapeMismatch {
                expected: format!("[{out_dim}] bias"),
                got: vec![b.len()],
            });
        }
    }
    let w = weight.data();
    let x = input.data();
    // Each output element is an independent row-vector dot product, so the
    // result is bit-identical at any worker count. Small layers stay
    // inline: thread spawn would dominate the arithmetic.
    let workers = if linear_flops(in_dim, out_dim) >= crate::ops::conv::MIN_PARALLEL_FLOPS {
        taskpool::default_parallelism()
    } else {
        1
    };
    let out = taskpool::run_indexed(workers, out_dim, |o| {
        let row = &w[o * in_dim..(o + 1) * in_dim];
        let mut acc = bias.map_or(0.0, |b| b[o]);
        for (wv, xv) in row.iter().zip(x.iter()) {
            acc += wv * xv;
        }
        acc
    });
    Tensor::new(vec![out_dim], out)
}

/// Floating-point work of a dense layer: two ops per weight.
pub fn linear_flops(in_dim: usize, out_dim: usize) -> u64 {
    2 * (in_dim * out_dim) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_vector_product() {
        let w = Tensor::new(vec![2, 3], vec![1., 0., 0., 0., 1., 1.]).unwrap();
        let x = Tensor::vector(&[2.0, 3.0, 4.0]);
        let y = linear(&x, &w, None).unwrap();
        assert_eq!(y.data(), &[2.0, 7.0]);
    }

    #[test]
    fn bias_is_added() {
        let w = Tensor::new(vec![1, 1], vec![2.0]).unwrap();
        let x = Tensor::vector(&[3.0]);
        let y = linear(&x, &w, Some(&[0.5])).unwrap();
        assert_eq!(y.data(), &[6.5]);
    }

    #[test]
    fn feature_map_input_is_flattened() {
        let w = Tensor::new(vec![1, 4], vec![1.0; 4]).unwrap();
        let x = Tensor::new(vec![1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let y = linear(&x, &w, None).unwrap();
        assert_eq!(y.data(), &[10.0]);
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let w = Tensor::new(vec![2, 3], vec![0.0; 6]).unwrap();
        let x = Tensor::vector(&[1.0, 2.0]);
        assert!(linear(&x, &w, None).is_err());
        let x3 = Tensor::vector(&[1.0, 2.0, 3.0]);
        assert!(linear(&x3, &w, Some(&[0.0])).is_err());
    }

    #[test]
    fn parallel_linear_is_bit_identical_to_serial() {
        // 256x128 clears MIN_PARALLEL_FLOPS so the pool actually runs.
        let (out_dim, in_dim) = (256, 128);
        let w = Tensor::new(
            vec![out_dim, in_dim],
            (0..out_dim * in_dim).map(|i| (i % 11) as f32 * 0.3 - 1.2).collect(),
        )
        .unwrap();
        let x =
            Tensor::new(vec![in_dim], (0..in_dim).map(|i| (i % 5) as f32 - 2.0).collect()).unwrap();
        let b: Vec<f32> = (0..out_dim).map(|o| o as f32 * 0.01).collect();

        let serial = linear(&x, &w, Some(&b)).unwrap();
        taskpool::set_default_parallelism(4);
        let parallel = linear(&x, &w, Some(&b)).unwrap();
        taskpool::set_default_parallelism(1);
        assert_eq!(
            serial, parallel,
            "row dot products are independent; results must match exactly"
        );
    }

    #[test]
    fn equivalent_to_1x1_conv() {
        // The paper's claim: FC == conv with kernel 1 and no striding when
        // the input is a [C,1,1] map.
        use crate::ops::conv::conv2d;
        let x = Tensor::new(vec![3, 1, 1], vec![1.0, 2.0, 3.0]).unwrap();
        let w_fc = Tensor::new(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let w_conv = Tensor::new(vec![2, 3, 1, 1], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let fc = linear(&x, &w_fc, None).unwrap();
        let conv = conv2d(&x, &w_conv, None, 1, 0).unwrap();
        assert_eq!(fc.data(), conv.data());
    }
}
