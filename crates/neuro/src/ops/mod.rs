//! Operator kernels.
//!
//! Each operator is a free function over [`crate::tensor::Tensor`]s plus a
//! `*_flops` companion that reports the floating-point work the call
//! performs. The flop counts feed [`crate::device::SimClock`], which is how
//! the reproduction models the paper's edge-CPU / server-CPU / server-GPU
//! hardware matrix on a single host.

pub mod activation;
pub mod attention;
pub mod conv;
pub mod linear;
pub mod norm;
pub mod pool;
pub mod softmax;

pub use activation::{relu, relu_flops, sigmoid, sigmoid_flops};
pub use attention::{basic_attention, basic_attention_flops};
pub use conv::{conv2d, conv2d_flops, conv_output_dim, deconv2d, deconv2d_flops};
pub use linear::{linear, linear_flops};
pub use norm::{batch_norm, instance_norm, norm_flops};
pub use pool::{avg_pool2d, global_avg_pool, max_pool2d, pool_flops};
pub use softmax::{softmax, softmax_flops};
