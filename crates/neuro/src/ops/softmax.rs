//! Numerically-stable softmax — the classification head ("Classification"
//! bar in paper Fig. 9).

use crate::tensor::Tensor;

/// Softmax over all elements, computed with the max-subtraction trick so
/// large logits do not overflow.
pub fn softmax(input: &Tensor) -> Tensor {
    let max = input.data().iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut out = input.clone();
    let mut sum = 0.0f32;
    for v in out.data_mut() {
        *v = (*v - max).exp();
        sum += *v;
    }
    if sum > 0.0 {
        for v in out.data_mut() {
            *v /= sum;
        }
    }
    out
}

/// Floating-point work of a softmax pass.
pub fn softmax_flops(elements: usize) -> u64 {
    4 * elements as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_to_one() {
        let s = softmax(&Tensor::vector(&[1.0, 2.0, 3.0]));
        let sum: f32 = s.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    #[test]
    fn preserves_ordering() {
        let s = softmax(&Tensor::vector(&[0.5, 2.0, -1.0]));
        assert_eq!(s.argmax(), 1);
        assert!(s.data()[0] > s.data()[2]);
    }

    #[test]
    fn stable_for_large_logits() {
        let s = softmax(&Tensor::vector(&[1000.0, 1001.0]));
        assert!(s.data().iter().all(|v| v.is_finite()));
        assert!((s.data()[1] - 1.0 / (1.0 + (-1.0f32).exp())).abs() < 1e-5);
    }

    #[test]
    fn uniform_logits_give_uniform_distribution() {
        let s = softmax(&Tensor::vector(&[3.0; 4]));
        assert!(s.data().iter().all(|v| (v - 0.25).abs() < 1e-6));
    }
}
