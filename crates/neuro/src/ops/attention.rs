//! Basic attention.
//!
//! Paper Table II supports *basic* attention (described as "a variant of
//! full connection") and explicitly does **not** support self-attention.
//! Basic attention here is additive attention over a flattened input: a
//! learned scoring vector produces softmax weights that gate the input
//! before a dense projection.

use crate::error::{Error, Result};
use crate::ops::linear::linear;
use crate::ops::softmax::softmax;
use crate::tensor::Tensor;

/// Basic (non-self) attention.
///
/// * `score_weight`: `[in, in]` matrix producing one score per position,
/// * `proj_weight`: `[out, in]` output projection.
///
/// Computation: `scores = score_weight · x`, `alpha = softmax(scores)`,
/// `gated = alpha ⊙ x`, `y = proj_weight · gated`.
pub fn basic_attention(
    input: &Tensor,
    score_weight: &Tensor,
    proj_weight: &Tensor,
) -> Result<Tensor> {
    let n = input.len();
    match score_weight.shape() {
        [r, c] if *r == n && *c == n => {}
        _ => {
            return Err(Error::ShapeMismatch {
                expected: format!("[{n}, {n}] score weight"),
                got: score_weight.shape().to_vec(),
            })
        }
    }
    let flat = input.clone().reshape(vec![n])?;
    let scores = linear(&flat, score_weight, None)?;
    let alpha = softmax(&scores);
    let gated: Vec<f32> = alpha.data().iter().zip(flat.data().iter()).map(|(a, x)| a * x).collect();
    linear(&Tensor::vector(&gated), proj_weight, None)
}

/// Floating-point work of a basic-attention pass.
pub fn basic_attention_flops(in_dim: usize, out_dim: usize) -> u64 {
    // score matvec + softmax + gating + projection matvec
    2 * (in_dim * in_dim) as u64 + 4 * in_dim as u64 + in_dim as u64 + 2 * (in_dim * out_dim) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_scores_average_gate() {
        // Zero score weight -> uniform attention -> gated = x / n.
        let x = Tensor::vector(&[2.0, 4.0]);
        let sw = Tensor::new(vec![2, 2], vec![0.0; 4]).unwrap();
        let pw = Tensor::new(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = basic_attention(&x, &sw, &pw).unwrap();
        assert!((y.data()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn strong_score_selects_one_position() {
        // Score row that massively favors position 1.
        let x = Tensor::vector(&[1.0, 10.0]);
        let sw = Tensor::new(vec![2, 2], vec![0.0, 0.0, 0.0, 100.0]).unwrap();
        let pw = Tensor::new(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = basic_attention(&x, &sw, &pw).unwrap();
        // alpha ~ (0, 1): output ~ x[1] = 10.
        assert!((y.data()[0] - 10.0).abs() < 1e-3);
    }

    #[test]
    fn shape_checks() {
        let x = Tensor::vector(&[1.0, 2.0]);
        let bad_sw = Tensor::new(vec![1, 2], vec![0.0; 2]).unwrap();
        let pw = Tensor::new(vec![1, 2], vec![0.0; 2]).unwrap();
        assert!(basic_attention(&x, &bad_sw, &pw).is_err());
    }
}
