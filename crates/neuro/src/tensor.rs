//! Dense row-major `f32` tensors.
//!
//! Feature maps use the `[channels, height, width]` layout throughout the
//! crate; vectors (FC activations, logits) use `[len]`. Batches are handled
//! at the [`crate::model::Model`] level by iterating over samples, which
//! matches how the paper's edge deployment feeds keyframes one query row at
//! a time.

use crate::error::{Error, Result};

/// A dense, row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a shape and matching flat data.
    pub fn new(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != data.len() {
            return Err(Error::ShapeMismatch {
                expected: format!("{expected} elements for shape {shape:?}"),
                got: vec![data.len()],
            });
        }
        Ok(Tensor { shape, data })
    }

    /// A tensor filled with zeros.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let n: usize = shape.iter().product();
        Tensor { shape, data: vec![0.0; n] }
    }

    /// A tensor filled with a constant.
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor { shape, data: vec![value; n] }
    }

    /// A 1-D tensor borrowing from a slice.
    pub fn vector(values: &[f32]) -> Self {
        Tensor { shape: vec![values.len()], data: values.to_vec() }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(Error::ShapeMismatch {
                expected: format!("{expected} elements for shape {shape:?}"),
                got: self.shape.clone(),
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Interprets the tensor as a `[C, H, W]` feature map.
    pub fn as_chw(&self) -> Result<(usize, usize, usize)> {
        match self.shape.as_slice() {
            [c, h, w] => Ok((*c, *h, *w)),
            _ => Err(Error::ShapeMismatch { expected: "[C,H,W]".into(), got: self.shape.clone() }),
        }
    }

    /// Element at `(c, y, x)` of a `[C, H, W]` feature map. Panics on
    /// out-of-bounds access; callers validate shapes up front.
    #[inline]
    pub fn at(&self, c: usize, y: usize, x: usize) -> f32 {
        let (_, h, w) = (self.shape[0], self.shape[1], self.shape[2]);
        self.data[(c * h + y) * w + x]
    }

    /// Mutable element at `(c, y, x)` of a `[C, H, W]` feature map.
    #[inline]
    pub fn at_mut(&mut self, c: usize, y: usize, x: usize) -> &mut f32 {
        let (h, w) = (self.shape[1], self.shape[2]);
        &mut self.data[(c * h + y) * w + x]
    }

    /// Element-wise addition; shapes must match exactly.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(Error::ShapeMismatch {
                expected: format!("{:?}", self.shape),
                got: other.shape.clone(),
            });
        }
        let data = self.data.iter().zip(other.data.iter()).map(|(a, b)| a + b).collect();
        Ok(Tensor { shape: self.shape.clone(), data })
    }

    /// Concatenates feature maps along the channel axis (used by dense
    /// blocks). All inputs must share `H` and `W`.
    pub fn concat_channels(parts: &[Tensor]) -> Result<Tensor> {
        let (_, h, w) = parts
            .first()
            .ok_or_else(|| Error::InvalidConfig("concat of zero tensors".into()))?
            .as_chw()?;
        let mut total_c = 0;
        let mut data = Vec::new();
        for p in parts {
            let (c, ph, pw) = p.as_chw()?;
            if (ph, pw) != (h, w) {
                return Err(Error::ShapeMismatch {
                    expected: format!("[*, {h}, {w}]"),
                    got: p.shape.clone(),
                });
            }
            total_c += c;
            data.extend_from_slice(&p.data);
        }
        Ok(Tensor { shape: vec![total_c, h, w], data })
    }

    /// Maximum absolute difference between two equally-shaped tensors.
    /// Used by cross-checking tests that compare the SQL execution of a
    /// network with this engine's execution.
    pub fn max_abs_diff(&self, other: &Tensor) -> Result<f32> {
        if self.shape != other.shape {
            return Err(Error::ShapeMismatch {
                expected: format!("{:?}", self.shape),
                got: other.shape.clone(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max))
    }

    /// Index of the maximum element (ties broken toward the lower index).
    /// This is the classification decision of a softmax head.
    pub fn argmax(&self) -> usize {
        let mut best = 0;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_checks_element_count() {
        assert!(Tensor::new(vec![2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::new(vec![2, 2], vec![1.0; 5]).is_err());
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(vec![3, 2]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let f = Tensor::full(vec![2], 7.5);
        assert_eq!(f.data(), &[7.5, 7.5]);
    }

    #[test]
    fn chw_indexing_is_row_major() {
        let t = Tensor::new(vec![1, 2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(t.at(0, 0, 0), 0.0);
        assert_eq!(t.at(0, 0, 2), 2.0);
        assert_eq!(t.at(0, 1, 0), 3.0);
        assert_eq!(t.at(0, 1, 2), 5.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::vector(&[1.0, 2.0, 3.0, 4.0]);
        let r = t.reshape(vec![2, 2]).unwrap();
        assert_eq!(r.shape(), &[2, 2]);
        assert!(Tensor::vector(&[1.0]).reshape(vec![2]).is_err());
    }

    #[test]
    fn add_requires_matching_shapes() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[3.0, 4.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 6.0]);
        let c = Tensor::vector(&[1.0]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn concat_channels_stacks() {
        let a = Tensor::new(vec![1, 2, 2], vec![1.0; 4]).unwrap();
        let b = Tensor::new(vec![2, 2, 2], vec![2.0; 8]).unwrap();
        let c = Tensor::concat_channels(&[a, b]).unwrap();
        assert_eq!(c.shape(), &[3, 2, 2]);
        assert_eq!(c.data()[0], 1.0);
        assert_eq!(c.data()[4], 2.0);
    }

    #[test]
    fn argmax_breaks_ties_low() {
        assert_eq!(Tensor::vector(&[1.0, 3.0, 3.0]).argmax(), 1);
        assert_eq!(Tensor::vector(&[-1.0, -2.0]).argmax(), 0);
    }

    #[test]
    fn max_abs_diff_measures_divergence() {
        let a = Tensor::vector(&[1.0, 2.0]);
        let b = Tensor::vector(&[1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b).unwrap(), 1.0);
    }
}
