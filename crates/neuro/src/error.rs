//! Error type shared across the inference engine.

use std::fmt;

/// Errors produced by tensor operations, model execution and (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A tensor had a different shape than the operation required.
    ShapeMismatch {
        /// What the operation expected (free-form, e.g. `"[C,H,W]"`).
        expected: String,
        /// The shape that was actually provided.
        got: Vec<usize>,
    },
    /// An operator was configured with parameters that can never be valid
    /// (e.g. a zero-sized kernel or stride).
    InvalidConfig(String),
    /// The requested operator exists in the paper's taxonomy but is
    /// unsupported (LSTM, GRU, self-attention).
    Unsupported(&'static str),
    /// A serialized model was malformed.
    Corrupt(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { expected, got } => {
                write!(f, "shape mismatch: expected {expected}, got {got:?}")
            }
            Error::InvalidConfig(msg) => write!(f, "invalid operator configuration: {msg}"),
            Error::Unsupported(what) => write!(f, "unsupported operator: {what}"),
            Error::Corrupt(msg) => write!(f, "corrupt model data: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
