//! A runnable model: named layer stack plus forward passes.

use crate::device::SimClock;
use crate::error::{Error, Result};
use crate::graph::Layer;
use crate::tensor::Tensor;

/// A network ready for inference.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    /// Human-readable name ("student", "resnet20", ...).
    pub name: String,
    /// Expected input shape (`[C, H, W]` for image models).
    pub input_shape: Vec<usize>,
    /// Number of output classes (length of the softmax output).
    pub num_classes: usize,
    /// The layer stack, executed front to back.
    pub layers: Vec<Layer>,
}

impl Model {
    /// Builds a model, validating nothing beyond basic invariants; shape
    /// errors surface at forward time with precise context.
    pub fn new(
        name: impl Into<String>,
        input_shape: Vec<usize>,
        num_classes: usize,
        layers: Vec<Layer>,
    ) -> Self {
        Model { name: name.into(), input_shape, num_classes, layers }
    }

    /// Total learned parameters (paper Table VI's "Parameters" row).
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(Layer::param_count).sum()
    }

    /// Single-sample forward pass. Returns the final activation (class
    /// probabilities when the model ends in softmax).
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        self.forward_with_clock(input, None)
    }

    /// Forward pass that charges simulated work to `clock`.
    pub fn forward_with_clock(&self, input: &Tensor, clock: Option<&SimClock>) -> Result<Tensor> {
        if input.shape() != self.input_shape.as_slice() {
            return Err(Error::ShapeMismatch {
                expected: format!("{:?}", self.input_shape),
                got: input.shape().to_vec(),
            });
        }
        let mut x = input.clone();
        for layer in &self.layers {
            x = layer.apply(&x, clock)?;
        }
        Ok(x)
    }

    /// Forward pass returning per-layer outputs, for layer-by-layer
    /// cross-checking against the DL2SQL execution.
    pub fn forward_trace(&self, input: &Tensor) -> Result<Vec<Tensor>> {
        let mut x = input.clone();
        let mut trace = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            x = layer.apply(&x, None)?;
            trace.push(x.clone());
        }
        Ok(trace)
    }

    /// Classifies a single sample: forward pass + argmax.
    pub fn predict(&self, input: &Tensor) -> Result<usize> {
        Ok(self.forward(input)?.argmax())
    }

    /// Classifies a batch of samples (the paper's nUDFs run "in a batch
    /// manner"; the DL-serving and UDF strategies both use this entry
    /// point).
    pub fn predict_batch(&self, inputs: &[Tensor], clock: Option<&SimClock>) -> Result<Vec<usize>> {
        inputs.iter().map(|t| Ok(self.forward_with_clock(t, clock)?.argmax())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Layer;

    fn tiny_classifier() -> Model {
        // 1x2x2 input -> flatten -> FC to 2 logits -> softmax.
        Model::new(
            "tiny",
            vec![1, 2, 2],
            2,
            vec![
                Layer::Flatten,
                Layer::Linear {
                    weight: Tensor::new(vec![2, 4], vec![1., 1., 1., 1., -1., -1., -1., -1.])
                        .unwrap(),
                    bias: None,
                },
                Layer::Softmax,
            ],
        )
    }

    #[test]
    fn forward_checks_input_shape() {
        let m = tiny_classifier();
        assert!(m.forward(&Tensor::zeros(vec![1, 3, 3])).is_err());
        assert!(m.forward(&Tensor::zeros(vec![1, 2, 2])).is_ok());
    }

    #[test]
    fn prediction_follows_sign_of_input_sum() {
        let m = tiny_classifier();
        let pos = Tensor::new(vec![1, 2, 2], vec![1.0; 4]).unwrap();
        let neg = Tensor::new(vec![1, 2, 2], vec![-1.0; 4]).unwrap();
        assert_eq!(m.predict(&pos).unwrap(), 0);
        assert_eq!(m.predict(&neg).unwrap(), 1);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let m = tiny_classifier();
        let out = m.forward(&Tensor::zeros(vec![1, 2, 2])).unwrap();
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn trace_yields_one_output_per_layer() {
        let m = tiny_classifier();
        let trace = m.forward_trace(&Tensor::zeros(vec![1, 2, 2])).unwrap();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace[0].shape(), &[4]);
        assert_eq!(trace[2].shape(), &[2]);
    }

    #[test]
    fn batch_prediction_matches_single() {
        let m = tiny_classifier();
        let a = Tensor::new(vec![1, 2, 2], vec![1.0; 4]).unwrap();
        let b = Tensor::new(vec![1, 2, 2], vec![-1.0; 4]).unwrap();
        let batch = m.predict_batch(&[a.clone(), b.clone()], None).unwrap();
        assert_eq!(batch, vec![m.predict(&a).unwrap(), m.predict(&b).unwrap()]);
    }

    #[test]
    fn clock_records_work() {
        let m = tiny_classifier();
        let clock = SimClock::new();
        m.forward_with_clock(&Tensor::zeros(vec![1, 2, 2]), Some(&clock)).unwrap();
        assert!(clock.flops() > 0);
    }
}
