//! Binary model formats.
//!
//! Two on-disk forms mirror the paper's loose-integration pipeline:
//!
//! * **Script format** ([`save_model`] / [`load_model`]) — the stand-in for
//!   a serialized TorchScript module: carries the model name, per-layer
//!   structural metadata, per-tensor names, shapes and checksums. This is
//!   what the *independent* (DB-PyTorch) strategy stores on disk.
//! * **Compiled UDF binary** ([`compile_udf_binary`] /
//!   [`load_udf_binary`]) — the stripped artifact the paper links into the
//!   database kernel: tags and raw weights only, no names, no checksums.
//!   This is what the *loose integration* (DB-UDF) strategy stores.
//!
//! Both formats round-trip exactly. Their size difference (script carries
//! metadata the compiled binary drops) reproduces the storage ordering of
//! paper Table IV, where DB-PyTorch artifacts are consistently larger than
//! DB-UDF ones.

use crate::error::{Error, Result};
use crate::graph::{Block, Layer};
use crate::model::Model;
use crate::tensor::Tensor;

const SCRIPT_MAGIC: &[u8; 8] = b"NEUROSCR";
const UDF_MAGIC: &[u8; 8] = b"NEUROUDF";
const VERSION: u32 = 1;

/// Whether a byte buffer carries rich per-tensor metadata (script) or is a
/// stripped compiled binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// TorchScript stand-in with metadata.
    Script,
    /// Stripped "compiled into the kernel" binary.
    Udf,
}

// ---------------------------------------------------------------------------
// low-level byte helpers
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
    format: Format,
}

impl Writer {
    fn new(format: Format) -> Self {
        Writer { buf: Vec::new(), format }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn shape(&mut self, s: &[usize]) {
        self.u32(s.len() as u32);
        for d in s {
            self.u32(*d as u32);
        }
    }
    /// Writes a tensor. The script format prefixes a field name, shape and a
    /// checksum; the compiled binary stores shape + raw data only.
    fn tensor(&mut self, name: &str, t: &Tensor) {
        if self.format == Format::Script {
            self.str(name);
        }
        self.shape(t.shape());
        if self.format == Format::Script {
            self.u64(checksum(t.data()));
        }
        for v in t.data() {
            self.f32(*v);
        }
    }
    fn opt_bias(&mut self, name: &str, b: &Option<Vec<f32>>) {
        match b {
            Some(vals) => {
                self.u8(1);
                self.tensor(name, &Tensor::vector(vals));
            }
            None => self.u8(0),
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
    format: Format,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(Error::Corrupt(format!(
                "unexpected end of model data at offset {} (wanted {n} more bytes)",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn str(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::Corrupt("non-UTF8 string".into()))
    }
    fn shape(&mut self) -> Result<Vec<usize>> {
        let n = self.u32()? as usize;
        if n > 8 {
            return Err(Error::Corrupt(format!("implausible tensor rank {n}")));
        }
        (0..n).map(|_| Ok(self.u32()? as usize)).collect()
    }
    fn tensor(&mut self) -> Result<Tensor> {
        if self.format == Format::Script {
            let _name = self.str()?;
        }
        let shape = self.shape()?;
        let expect = if self.format == Format::Script { Some(self.u64()?) } else { None };
        let n: usize = shape.iter().product();
        if n > 1 << 28 {
            return Err(Error::Corrupt(format!("implausible tensor size {n}")));
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(self.f32()?);
        }
        if let Some(sum) = expect {
            if checksum(&data) != sum {
                return Err(Error::Corrupt("tensor checksum mismatch".into()));
            }
        }
        Tensor::new(shape, data)
    }
    fn opt_bias(&mut self) -> Result<Option<Vec<f32>>> {
        if self.u8()? == 0 {
            Ok(None)
        } else {
            Ok(Some(self.tensor()?.into_data()))
        }
    }
}

/// FNV-1a over the raw bit patterns; cheap and deterministic.
fn checksum(data: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in data {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

// ---------------------------------------------------------------------------
// layer encoding
// ---------------------------------------------------------------------------

const TAG_CONV: u8 = 1;
const TAG_DECONV: u8 = 2;
const TAG_MAXPOOL: u8 = 3;
const TAG_AVGPOOL: u8 = 4;
const TAG_GAP: u8 = 5;
const TAG_RELU: u8 = 6;
const TAG_SIGMOID: u8 = 7;
const TAG_BN: u8 = 8;
const TAG_IN: u8 = 9;
const TAG_LINEAR: u8 = 10;
const TAG_ATTENTION: u8 = 11;
const TAG_FLATTEN: u8 = 12;
const TAG_SOFTMAX: u8 = 13;
const TAG_RESIDUAL: u8 = 14;
const TAG_DENSE: u8 = 15;

fn write_layer(w: &mut Writer, layer: &Layer) {
    match layer {
        Layer::Conv2d { weight, bias, stride, padding } => {
            w.u8(TAG_CONV);
            w.u32(*stride as u32);
            w.u32(*padding as u32);
            w.tensor("conv.weight", weight);
            w.opt_bias("conv.bias", bias);
        }
        Layer::Deconv2d { weight, bias, stride, padding } => {
            w.u8(TAG_DECONV);
            w.u32(*stride as u32);
            w.u32(*padding as u32);
            w.tensor("deconv.weight", weight);
            w.opt_bias("deconv.bias", bias);
        }
        Layer::MaxPool2d { kernel, stride } => {
            w.u8(TAG_MAXPOOL);
            w.u32(*kernel as u32);
            w.u32(*stride as u32);
        }
        Layer::AvgPool2d { kernel, stride } => {
            w.u8(TAG_AVGPOOL);
            w.u32(*kernel as u32);
            w.u32(*stride as u32);
        }
        Layer::GlobalAvgPool => w.u8(TAG_GAP),
        Layer::Relu => w.u8(TAG_RELU),
        Layer::Sigmoid => w.u8(TAG_SIGMOID),
        Layer::BatchNorm { eps } => {
            w.u8(TAG_BN);
            w.f32(*eps);
        }
        Layer::InstanceNorm { eps } => {
            w.u8(TAG_IN);
            w.f32(*eps);
        }
        Layer::Linear { weight, bias } => {
            w.u8(TAG_LINEAR);
            w.tensor("linear.weight", weight);
            w.opt_bias("linear.bias", bias);
        }
        Layer::BasicAttention { score, proj } => {
            w.u8(TAG_ATTENTION);
            w.tensor("attention.score", score);
            w.tensor("attention.proj", proj);
        }
        Layer::Flatten => w.u8(TAG_FLATTEN),
        Layer::Softmax => w.u8(TAG_SOFTMAX),
        Layer::Block(Block::Residual { body, shortcut }) => {
            w.u8(TAG_RESIDUAL);
            write_layers(w, body);
            write_layers(w, shortcut);
        }
        Layer::Block(Block::Dense { branches }) => {
            w.u8(TAG_DENSE);
            w.u32(branches.len() as u32);
            for b in branches {
                write_layers(w, b);
            }
        }
    }
}

fn write_layers(w: &mut Writer, layers: &[Layer]) {
    w.u32(layers.len() as u32);
    for l in layers {
        write_layer(w, l);
    }
}

fn read_layer(r: &mut Reader<'_>) -> Result<Layer> {
    let tag = r.u8()?;
    Ok(match tag {
        TAG_CONV => {
            let stride = r.u32()? as usize;
            let padding = r.u32()? as usize;
            let weight = r.tensor()?;
            let bias = r.opt_bias()?;
            Layer::Conv2d { weight, bias, stride, padding }
        }
        TAG_DECONV => {
            let stride = r.u32()? as usize;
            let padding = r.u32()? as usize;
            let weight = r.tensor()?;
            let bias = r.opt_bias()?;
            Layer::Deconv2d { weight, bias, stride, padding }
        }
        TAG_MAXPOOL => Layer::MaxPool2d { kernel: r.u32()? as usize, stride: r.u32()? as usize },
        TAG_AVGPOOL => Layer::AvgPool2d { kernel: r.u32()? as usize, stride: r.u32()? as usize },
        TAG_GAP => Layer::GlobalAvgPool,
        TAG_RELU => Layer::Relu,
        TAG_SIGMOID => Layer::Sigmoid,
        TAG_BN => Layer::BatchNorm { eps: r.f32()? },
        TAG_IN => Layer::InstanceNorm { eps: r.f32()? },
        TAG_LINEAR => {
            let weight = r.tensor()?;
            let bias = r.opt_bias()?;
            Layer::Linear { weight, bias }
        }
        TAG_ATTENTION => {
            let score = r.tensor()?;
            let proj = r.tensor()?;
            Layer::BasicAttention { score, proj }
        }
        TAG_FLATTEN => Layer::Flatten,
        TAG_SOFTMAX => Layer::Softmax,
        TAG_RESIDUAL => {
            let body = read_layers(r)?;
            let shortcut = read_layers(r)?;
            Layer::Block(Block::Residual { body, shortcut })
        }
        TAG_DENSE => {
            let n = r.u32()? as usize;
            if n > 1 << 16 {
                return Err(Error::Corrupt(format!("implausible dense branch count {n}")));
            }
            let branches = (0..n).map(|_| read_layers(r)).collect::<Result<_>>()?;
            Layer::Block(Block::Dense { branches })
        }
        other => return Err(Error::Corrupt(format!("unknown layer tag {other}"))),
    })
}

fn read_layers(r: &mut Reader<'_>) -> Result<Vec<Layer>> {
    let n = r.u32()? as usize;
    if n > 1 << 20 {
        return Err(Error::Corrupt(format!("implausible layer count {n}")));
    }
    (0..n).map(|_| read_layer(r)).collect()
}

// ---------------------------------------------------------------------------
// public API
// ---------------------------------------------------------------------------

fn save(model: &Model, format: Format) -> Vec<u8> {
    let mut w = Writer::new(format);
    w.buf.extend_from_slice(match format {
        Format::Script => SCRIPT_MAGIC,
        Format::Udf => UDF_MAGIC,
    });
    w.u32(VERSION);
    if format == Format::Script {
        w.str(&model.name);
        // Provenance metadata a script container would carry.
        w.str("producer=neuro; opset=table-ii; origin=dl2sql-repro");
    }
    w.shape(&model.input_shape);
    w.u32(model.num_classes as u32);
    write_layers(&mut w, &model.layers);
    w.buf
}

fn load(bytes: &[u8], format: Format) -> Result<Model> {
    let magic: &[u8; 8] = match format {
        Format::Script => SCRIPT_MAGIC,
        Format::Udf => UDF_MAGIC,
    };
    if bytes.len() < 8 || &bytes[..8] != magic {
        return Err(Error::Corrupt("bad magic".into()));
    }
    let mut r = Reader { buf: bytes, pos: 8, format };
    let version = r.u32()?;
    if version != VERSION {
        return Err(Error::Corrupt(format!("unsupported version {version}")));
    }
    let name = if format == Format::Script {
        let n = r.str()?;
        let _provenance = r.str()?;
        n
    } else {
        "compiled-udf".to_string()
    };
    let input_shape = r.shape()?;
    let num_classes = r.u32()? as usize;
    let layers = read_layers(&mut r)?;
    if r.pos != bytes.len() {
        return Err(Error::Corrupt(format!("{} trailing bytes", bytes.len() - r.pos)));
    }
    Ok(Model { name, input_shape, num_classes, layers })
}

/// Serializes a model in the metadata-rich script format.
pub fn save_model(model: &Model) -> Vec<u8> {
    save(model, Format::Script)
}

/// Loads a script-format model.
pub fn load_model(bytes: &[u8]) -> Result<Model> {
    load(bytes, Format::Script)
}

/// "Compiles" a model into the stripped binary the loose-integration
/// strategy links into the database kernel.
pub fn compile_udf_binary(model: &Model) -> Vec<u8> {
    save(model, Format::Udf)
}

/// Loads a compiled UDF binary.
pub fn load_udf_binary(bytes: &[u8]) -> Result<Model> {
    load(bytes, Format::Udf)
}

/// Serializes a tensor for transport (keyframe blobs in the database,
/// cross-system messages in the independent strategy): rank, dims, raw
/// little-endian f32 data.
pub fn tensor_to_bytes(t: &Tensor) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 * t.shape().len() + 4 * t.len());
    out.extend_from_slice(&(t.shape().len() as u32).to_le_bytes());
    for d in t.shape() {
        out.extend_from_slice(&(*d as u32).to_le_bytes());
    }
    for v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Inverse of [`tensor_to_bytes`].
pub fn tensor_from_bytes(bytes: &[u8]) -> Result<Tensor> {
    let mut r = Reader { buf: bytes, pos: 0, format: Format::Udf };
    let rank = r.u32()? as usize;
    if rank > 8 {
        return Err(Error::Corrupt(format!("implausible tensor rank {rank}")));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.u32()? as usize);
    }
    let n: usize = shape.iter().product();
    if n > 1 << 28 {
        return Err(Error::Corrupt(format!("implausible tensor size {n}")));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(r.f32()?);
    }
    if r.pos != bytes.len() {
        return Err(Error::Corrupt("trailing bytes after tensor".into()));
    }
    Tensor::new(shape, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    fn sample_model() -> Model {
        zoo::student(vec![1, 8, 8], 4, 42)
    }

    #[test]
    fn every_layer_kind_roundtrips() {
        use crate::graph::{Block, Layer};
        use crate::Tensor;
        let t = |shape: Vec<usize>| Tensor::full(shape.clone(), 0.5);
        let layers = vec![
            Layer::Conv2d {
                weight: t(vec![2, 1, 3, 3]),
                bias: Some(vec![0.1, 0.2]),
                stride: 1,
                padding: 1,
            },
            Layer::Deconv2d { weight: t(vec![2, 1, 2, 2]), bias: None, stride: 2, padding: 0 },
            Layer::MaxPool2d { kernel: 2, stride: 2 },
            Layer::AvgPool2d { kernel: 3, stride: 1 },
            Layer::GlobalAvgPool,
            Layer::Relu,
            Layer::Sigmoid,
            Layer::BatchNorm { eps: 1e-4 },
            Layer::InstanceNorm { eps: 1e-5 },
            Layer::Linear { weight: t(vec![3, 4]), bias: Some(vec![0.0; 3]) },
            Layer::BasicAttention { score: t(vec![3, 3]), proj: t(vec![2, 3]) },
            Layer::Flatten,
            Layer::Softmax,
            Layer::Block(Block::Residual {
                body: vec![Layer::Relu],
                shortcut: vec![Layer::Sigmoid],
            }),
            Layer::Block(Block::Dense { branches: vec![vec![Layer::Relu], vec![Layer::Sigmoid]] }),
        ];
        let m = Model::new("inventory", vec![1, 4, 4], 3, layers);
        assert_eq!(load_model(&save_model(&m)).unwrap(), m);
        assert_eq!(load_udf_binary(&compile_udf_binary(&m)).unwrap().layers, m.layers);
    }

    #[test]
    fn script_roundtrip_is_exact() {
        let m = sample_model();
        let bytes = save_model(&m);
        let back = load_model(&bytes).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn udf_roundtrip_preserves_weights_and_structure() {
        let m = sample_model();
        let bytes = compile_udf_binary(&m);
        let back = load_udf_binary(&bytes).unwrap();
        assert_eq!(back.layers, m.layers);
        assert_eq!(back.input_shape, m.input_shape);
        assert_eq!(back.num_classes, m.num_classes);
        // The compiled binary drops the name.
        assert_eq!(back.name, "compiled-udf");
    }

    #[test]
    fn udf_binary_is_smaller_than_script() {
        // Paper Table IV: DB-UDF artifacts < DB-PyTorch artifacts.
        let m = sample_model();
        assert!(compile_udf_binary(&m).len() < save_model(&m).len());
    }

    #[test]
    fn corrupt_magic_is_rejected() {
        let mut bytes = save_model(&sample_model());
        bytes[0] ^= 0xff;
        assert!(load_model(&bytes).is_err());
    }

    #[test]
    fn truncated_data_is_rejected() {
        let bytes = save_model(&sample_model());
        assert!(load_model(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn bit_flip_in_weights_fails_checksum() {
        let m = sample_model();
        let mut bytes = save_model(&m);
        // Flip a bit near the end (inside the last tensor's data).
        let idx = bytes.len() - 16;
        bytes[idx] ^= 0x01;
        assert!(matches!(load_model(&bytes), Err(Error::Corrupt(_))));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = save_model(&sample_model());
        bytes.extend_from_slice(&[0u8; 7]);
        assert!(load_model(&bytes).is_err());
    }

    #[test]
    fn tensor_bytes_roundtrip() {
        let t = crate::Tensor::new(vec![2, 3], vec![1.0, -2.5, 3.25, 0.0, 9.5, -7.0]).unwrap();
        let bytes = tensor_to_bytes(&t);
        let back = tensor_from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
        assert!(tensor_from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(tensor_from_bytes(&extra).is_err());
    }

    #[test]
    fn formats_are_not_interchangeable() {
        let m = sample_model();
        assert!(load_udf_binary(&save_model(&m)).is_err());
        assert!(load_model(&compile_udf_binary(&m)).is_err());
    }
}
