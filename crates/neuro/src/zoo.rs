//! Model builders for the paper's model family.
//!
//! * [`student`] — the distilled model the paper uses for its headline
//!   experiments: three Conv+BN+ReLU blocks followed by a pooled
//!   classification head ("the prediction accuracy is 87% compared to the
//!   93% of the ResNet34").
//! * [`resnet`] — the ResNet-style family (depth 5–40) of paper Tables IV
//!   and VI: a convolutional stem plus stacked residual blocks, global
//!   average pooling and a dense softmax head.
//!
//! Weights are He-uniform initialized from a caller-supplied seed; the
//! experiments measure *runtime*, which is weight-independent, but
//! deterministic weights keep every strategy's predictions identical so the
//! comparison tests can assert exact agreement.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::graph::{Block, Layer};
use crate::model::Model;
use crate::tensor::Tensor;

/// Default channel width for the scaled-down ResNet family. The paper's
/// models use server-scale widths (≈256); this reproduction defaults to 12
/// so the SQL execution path stays laptop-friendly. Width is a free
/// parameter of [`resnet_with_width`].
pub const DEFAULT_WIDTH: usize = 12;

fn he_uniform(rng: &mut StdRng, fan_in: usize, n: usize) -> Vec<f32> {
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    (0..n).map(|_| rng.random_range(-bound..bound)).collect()
}

/// A 3×3 (or `k`×`k`) convolution layer with He-uniform weights.
pub fn conv_layer(
    rng: &mut StdRng,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    padding: usize,
) -> Layer {
    let fan_in = in_c * k * k;
    let weight =
        Tensor::new(vec![out_c, in_c, k, k], he_uniform(rng, fan_in, out_c * in_c * k * k))
            .expect("weight shape/data constructed consistently");
    Layer::Conv2d { weight, bias: None, stride, padding }
}

/// A dense layer with He-uniform weights and zero bias.
pub fn linear_layer(rng: &mut StdRng, in_dim: usize, out_dim: usize) -> Layer {
    let weight = Tensor::new(vec![out_dim, in_dim], he_uniform(rng, in_dim, out_dim * in_dim))
        .expect("weight shape/data constructed consistently");
    Layer::Linear { weight, bias: Some(vec![0.0; out_dim]) }
}

/// The distilled student CNN: three Conv+BN+ReLU blocks, max pooling,
/// global average pooling, a dense head and softmax.
///
/// `input_shape` must be `[C, H, W]`. Channel plan is `C → 8 → 12 → 16`.
pub fn student(input_shape: Vec<usize>, num_classes: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let in_c = input_shape[0];
    let plan = [8usize, 12, 16];
    let mut layers = Vec::new();
    let mut c = in_c;
    for out_c in plan {
        layers.push(conv_layer(&mut rng, c, out_c, 3, 1, 0));
        layers.push(Layer::BatchNorm { eps: crate::ops::norm::DEFAULT_EPS });
        layers.push(Layer::Relu);
        c = out_c;
    }
    layers.push(Layer::MaxPool2d { kernel: 2, stride: 2 });
    layers.push(Layer::GlobalAvgPool);
    layers.push(linear_layer(&mut rng, c, num_classes));
    layers.push(Layer::Softmax);
    Model::new("student", input_shape, num_classes, layers)
}

/// `resnet(depth, ...)` with [`DEFAULT_WIDTH`] channels.
pub fn resnet(depth: usize, input_shape: Vec<usize>, num_classes: usize, seed: u64) -> Model {
    resnet_with_width(depth, DEFAULT_WIDTH, input_shape, num_classes, seed)
}

/// A ResNet-style network with roughly `depth` convolutional layers:
/// a stem conv, then `(depth - 1) / 2` two-conv residual blocks with
/// identity shortcuts, then GAP + FC + softmax.
///
/// Parameter count grows linearly with depth, matching the shape of paper
/// Table VI's "Parameters" row.
pub fn resnet_with_width(
    depth: usize,
    width: usize,
    input_shape: Vec<usize>,
    num_classes: usize,
    seed: u64,
) -> Model {
    assert!(depth >= 2, "resnet needs at least a stem and a head");
    let mut rng = StdRng::seed_from_u64(seed);
    let in_c = input_shape[0];
    let mut layers = vec![
        conv_layer(&mut rng, in_c, width, 3, 1, 1),
        Layer::BatchNorm { eps: crate::ops::norm::DEFAULT_EPS },
        Layer::Relu,
    ];
    let blocks = (depth - 1) / 2;
    for _ in 0..blocks {
        let body = vec![
            conv_layer(&mut rng, width, width, 3, 1, 1),
            Layer::BatchNorm { eps: crate::ops::norm::DEFAULT_EPS },
            Layer::Relu,
            conv_layer(&mut rng, width, width, 3, 1, 1),
            Layer::BatchNorm { eps: crate::ops::norm::DEFAULT_EPS },
        ];
        layers.push(Layer::Block(Block::Residual { body, shortcut: vec![] }));
    }
    layers.push(Layer::GlobalAvgPool);
    layers.push(linear_layer(&mut rng, width, num_classes));
    layers.push(Layer::Softmax);
    Model::new(format!("resnet{depth}"), input_shape, num_classes, layers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn student_runs_end_to_end() {
        let m = student(vec![1, 12, 12], 5, 7);
        let out = m.forward(&Tensor::zeros(vec![1, 12, 12])).unwrap();
        assert_eq!(out.len(), 5);
        let sum: f32 = out.data().iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }

    #[test]
    fn student_is_deterministic_per_seed() {
        let a = student(vec![1, 10, 10], 3, 1);
        let b = student(vec![1, 10, 10], 3, 1);
        let c = student(vec![1, 10, 10], 3, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn resnet_param_count_grows_linearly_with_depth() {
        let shape = vec![1, 8, 8];
        let p5 = resnet(5, shape.clone(), 4, 0).param_count();
        let p15 = resnet(15, shape.clone(), 4, 0).param_count();
        let p25 = resnet(25, shape, 4, 0).param_count();
        assert!(p5 < p15 && p15 < p25);
        // Linear growth: equal increments for equal depth steps.
        assert_eq!(p15 - p5, p25 - p15);
    }

    #[test]
    fn resnet_forward_produces_class_distribution() {
        let m = resnet(5, vec![1, 8, 8], 4, 3);
        let out = m.forward(&Tensor::full(vec![1, 8, 8], 0.5)).unwrap();
        assert_eq!(out.len(), 4);
        assert!(out.data().iter().all(|v| *v >= 0.0 && *v <= 1.0));
    }

    #[test]
    fn resnet_depth_40_builds_and_runs() {
        let m = resnet(40, vec![1, 8, 8], 4, 3);
        assert!(m.param_count() > resnet(5, vec![1, 8, 8], 4, 3).param_count());
        assert!(m.forward(&Tensor::zeros(vec![1, 8, 8])).is_ok());
    }

    #[test]
    fn multi_channel_input_is_supported() {
        let m = student(vec![3, 12, 12], 4, 9);
        assert!(m.forward(&Tensor::zeros(vec![3, 12, 12])).is_ok());
    }
}
