//! Network structure: layers and composite blocks.
//!
//! The paper's Table II inventory maps onto [`Layer`]; residual, identity
//! and dense blocks are composite variants holding sub-layer sequences.
//! A network is simply a `Vec<Layer>` executed front to back by
//! [`crate::model::Model`].

use crate::device::SimClock;
use crate::error::{Error, Result};
use crate::ops;
use crate::tensor::Tensor;

/// One layer of a network.
///
/// Normalization note: DL2SQL maintains one feature-map table per channel
/// (paper footnote 4) and normalizes each table with its own
/// `AVG`/`stddevSamp` (query Q4). With per-query batches of one image that
/// is exactly per-channel (instance) statistics, so [`Layer::BatchNorm`]
/// over a `[C,H,W]` input computes per-channel statistics too — keeping the
/// SQL execution and this engine bit-comparable. Over a vector input it
/// normalizes across the whole vector.
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// 2-D convolution. `weight` is `[out_c, in_c, kh, kw]`.
    Conv2d { weight: Tensor, bias: Option<Vec<f32>>, stride: usize, padding: usize },
    /// Transposed convolution. `weight` is `[in_c, out_c, kh, kw]`.
    Deconv2d { weight: Tensor, bias: Option<Vec<f32>>, stride: usize, padding: usize },
    /// Max pooling with a square kernel.
    MaxPool2d { kernel: usize, stride: usize },
    /// Average pooling with a square kernel.
    AvgPool2d { kernel: usize, stride: usize },
    /// Global average pooling: `[C,H,W]` → `[C]`.
    GlobalAvgPool,
    /// ReLU activation.
    Relu,
    /// Sigmoid activation.
    Sigmoid,
    /// Batch normalization (see the type-level note on statistics scope).
    BatchNorm { eps: f32 },
    /// Instance normalization (always per-channel statistics).
    InstanceNorm { eps: f32 },
    /// Full connection. `weight` is `[out, in]`.
    Linear { weight: Tensor, bias: Option<Vec<f32>> },
    /// Basic (non-self) attention; see [`ops::attention`].
    BasicAttention { score: Tensor, proj: Tensor },
    /// Flattens any input to a 1-D vector.
    Flatten,
    /// Softmax over all elements.
    Softmax,
    /// A composite block.
    Block(Block),
}

/// Composite blocks from paper Table II.
#[derive(Debug, Clone, PartialEq)]
pub enum Block {
    /// Residual block: `relu(body(x) + shortcut(x))`. An empty shortcut is
    /// the identity, making this the paper's *identity block*.
    Residual { body: Vec<Layer>, shortcut: Vec<Layer> },
    /// Dense block: runs each branch on the concatenation of the input and
    /// all previous branch outputs, DenseNet-style, and returns the final
    /// concatenation.
    Dense { branches: Vec<Vec<Layer>> },
}

impl Layer {
    /// Applies the layer to `input`, charging the floating-point work to
    /// `clock` if one is provided.
    pub fn apply(&self, input: &Tensor, clock: Option<&SimClock>) -> Result<Tensor> {
        match self {
            Layer::Conv2d { weight, bias, stride, padding } => {
                let out = ops::conv2d(input, weight, bias.as_deref(), *stride, *padding)?;
                if let Some(c) = clock {
                    let (in_c, _, _) = input.as_chw()?;
                    let s = out.shape();
                    let w = weight.shape();
                    c.charge_flops(ops::conv2d_flops(in_c, s[0], s[1], s[2], w[2], w[3]));
                }
                Ok(out)
            }
            Layer::Deconv2d { weight, bias, stride, padding } => {
                let (in_c, in_h, in_w) = input.as_chw()?;
                let out = ops::deconv2d(input, weight, bias.as_deref(), *stride, *padding)?;
                if let Some(c) = clock {
                    let w = weight.shape();
                    c.charge_flops(ops::deconv2d_flops(in_c, w[1], in_h, in_w, w[2], w[3]));
                }
                Ok(out)
            }
            Layer::MaxPool2d { kernel, stride } => {
                let out = ops::max_pool2d(input, *kernel, *stride)?;
                if let Some(c) = clock {
                    let s = out.shape();
                    c.charge_flops(ops::pool_flops(s[0], s[1], s[2], *kernel));
                }
                Ok(out)
            }
            Layer::AvgPool2d { kernel, stride } => {
                let out = ops::avg_pool2d(input, *kernel, *stride)?;
                if let Some(c) = clock {
                    let s = out.shape();
                    c.charge_flops(ops::pool_flops(s[0], s[1], s[2], *kernel));
                }
                Ok(out)
            }
            Layer::GlobalAvgPool => {
                let out = ops::global_avg_pool(input)?;
                if let Some(c) = clock {
                    c.charge_flops(input.len() as u64);
                }
                Ok(out)
            }
            Layer::Relu => {
                if let Some(c) = clock {
                    c.charge_flops(ops::relu_flops(input.len()));
                }
                Ok(ops::relu(input))
            }
            Layer::Sigmoid => {
                if let Some(c) = clock {
                    c.charge_flops(ops::sigmoid_flops(input.len()));
                }
                Ok(ops::sigmoid(input))
            }
            Layer::BatchNorm { eps } => {
                if let Some(c) = clock {
                    c.charge_flops(ops::norm_flops(input.len()));
                }
                if input.as_chw().is_ok() {
                    ops::instance_norm(input, *eps)
                } else {
                    ops::batch_norm(input, *eps, None)
                }
            }
            Layer::InstanceNorm { eps } => {
                if let Some(c) = clock {
                    c.charge_flops(ops::norm_flops(input.len()));
                }
                ops::instance_norm(input, *eps)
            }
            Layer::Linear { weight, bias } => {
                if let Some(c) = clock {
                    let s = weight.shape();
                    c.charge_flops(ops::linear_flops(s[1], s[0]));
                }
                ops::linear(input, weight, bias.as_deref())
            }
            Layer::BasicAttention { score, proj } => {
                if let Some(c) = clock {
                    let (out_dim, in_dim) = (proj.shape()[0], proj.shape()[1]);
                    c.charge_flops(ops::basic_attention_flops(in_dim, out_dim));
                }
                ops::basic_attention(input, score, proj)
            }
            Layer::Flatten => input.clone().reshape(vec![input.len()]),
            Layer::Softmax => {
                if let Some(c) = clock {
                    c.charge_flops(ops::softmax_flops(input.len()));
                }
                Ok(ops::softmax(input))
            }
            Layer::Block(block) => block.apply(input, clock),
        }
    }

    /// Number of learned parameters in the layer.
    pub fn param_count(&self) -> u64 {
        match self {
            Layer::Conv2d { weight, bias, .. } | Layer::Deconv2d { weight, bias, .. } => {
                weight.len() as u64 + bias.as_ref().map_or(0, |b| b.len() as u64)
            }
            Layer::Linear { weight, bias } => {
                weight.len() as u64 + bias.as_ref().map_or(0, |b| b.len() as u64)
            }
            Layer::BasicAttention { score, proj } => (score.len() + proj.len()) as u64,
            Layer::Block(b) => b.param_count(),
            _ => 0,
        }
    }

    /// Short display name used by profiling output (paper Fig. 9 labels).
    pub fn op_name(&self) -> &'static str {
        match self {
            Layer::Conv2d { .. } => "Conv",
            Layer::Deconv2d { .. } => "Deconv",
            Layer::MaxPool2d { .. } => "MaxPool",
            Layer::AvgPool2d { .. } => "AvgPool",
            Layer::GlobalAvgPool => "GlobalAvgPool",
            Layer::Relu => "ReLU",
            Layer::Sigmoid => "Sigmoid",
            Layer::BatchNorm { .. } => "BN",
            Layer::InstanceNorm { .. } => "IN",
            Layer::Linear { .. } => "FC",
            Layer::BasicAttention { .. } => "Attention",
            Layer::Flatten => "Flatten",
            Layer::Softmax => "Softmax",
            Layer::Block(Block::Residual { shortcut, .. }) => {
                if shortcut.is_empty() {
                    "IdentityBlock"
                } else {
                    "ResidualBlock"
                }
            }
            Layer::Block(Block::Dense { .. }) => "DenseBlock",
        }
    }
}

impl Block {
    /// Runs the block.
    pub fn apply(&self, input: &Tensor, clock: Option<&SimClock>) -> Result<Tensor> {
        match self {
            Block::Residual { body, shortcut } => {
                let mut main = input.clone();
                for l in body {
                    main = l.apply(&main, clock)?;
                }
                let mut side = input.clone();
                for l in shortcut {
                    side = l.apply(&side, clock)?;
                }
                let sum = main.add(&side).map_err(|_| Error::ShapeMismatch {
                    expected: format!("shortcut output {:?}", main.shape()),
                    got: side.shape().to_vec(),
                })?;
                if let Some(c) = clock {
                    c.charge_flops(sum.len() as u64 + ops::relu_flops(sum.len()));
                }
                Ok(ops::relu(&sum))
            }
            Block::Dense { branches } => {
                let mut acc = input.clone();
                for branch in branches {
                    let mut out = acc.clone();
                    for l in branch {
                        out = l.apply(&out, clock)?;
                    }
                    acc = Tensor::concat_channels(&[acc, out])?;
                }
                Ok(acc)
            }
        }
    }

    /// Number of learned parameters in the block.
    pub fn param_count(&self) -> u64 {
        match self {
            Block::Residual { body, shortcut } => {
                body.iter().chain(shortcut.iter()).map(Layer::param_count).sum()
            }
            Block::Dense { branches } => {
                branches.iter().flat_map(|b| b.iter()).map(Layer::param_count).sum()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv1x1(in_c: usize, out_c: usize, v: f32) -> Layer {
        Layer::Conv2d {
            weight: Tensor::full(vec![out_c, in_c, 1, 1], v),
            bias: None,
            stride: 1,
            padding: 0,
        }
    }

    #[test]
    fn identity_block_adds_input_back() {
        // Body doubles values (1x1 conv, weight 2), identity shortcut: out = relu(2x + x).
        let block =
            Layer::Block(Block::Residual { body: vec![conv1x1(1, 1, 2.0)], shortcut: vec![] });
        let x = Tensor::new(vec![1, 1, 2], vec![1.0, -1.0]).unwrap();
        let y = block.apply(&x, None).unwrap();
        assert_eq!(y.data(), &[3.0, 0.0]); // relu(3), relu(-3)
    }

    #[test]
    fn residual_block_uses_conv_shortcut() {
        let block = Layer::Block(Block::Residual {
            body: vec![conv1x1(1, 2, 1.0)],
            shortcut: vec![conv1x1(1, 2, 10.0)],
        });
        let x = Tensor::new(vec![1, 1, 1], vec![1.0]).unwrap();
        let y = block.apply(&x, None).unwrap();
        assert_eq!(y.shape(), &[2, 1, 1]);
        assert_eq!(y.data(), &[11.0, 11.0]);
    }

    #[test]
    fn dense_block_grows_channels() {
        // Each branch reads the running concat; a 1x1 conv mapping all
        // current channels to 1 channel.
        let block = Layer::Block(Block::Dense {
            branches: vec![vec![conv1x1(1, 1, 1.0)], vec![conv1x1(2, 1, 1.0)]],
        });
        let x = Tensor::new(vec![1, 1, 1], vec![3.0]).unwrap();
        let y = block.apply(&x, None).unwrap();
        // after branch 1: [3, 3]; branch 2 sums -> 6; concat -> [3, 3, 6].
        assert_eq!(y.shape(), &[3, 1, 1]);
        assert_eq!(y.data(), &[3.0, 3.0, 6.0]);
    }

    #[test]
    fn param_counts_aggregate_recursively() {
        let block = Layer::Block(Block::Residual {
            body: vec![conv1x1(2, 2, 1.0), Layer::Relu],
            shortcut: vec![conv1x1(2, 2, 1.0)],
        });
        assert_eq!(block.param_count(), 8);
        assert_eq!(Layer::Relu.param_count(), 0);
    }

    #[test]
    fn op_names_distinguish_identity_and_residual() {
        let id = Layer::Block(Block::Residual { body: vec![], shortcut: vec![] });
        let res = Layer::Block(Block::Residual { body: vec![], shortcut: vec![Layer::Relu] });
        assert_eq!(id.op_name(), "IdentityBlock");
        assert_eq!(res.op_name(), "ResidualBlock");
    }

    #[test]
    fn flatten_then_linear_pipeline() {
        let x = Tensor::new(vec![1, 2, 2], vec![1., 2., 3., 4.]).unwrap();
        let flat = Layer::Flatten.apply(&x, None).unwrap();
        assert_eq!(flat.shape(), &[4]);
        let lin = Layer::Linear {
            weight: Tensor::new(vec![1, 4], vec![1.0; 4]).unwrap(),
            bias: Some(vec![0.5]),
        };
        let y = lin.apply(&flat, None).unwrap();
        assert_eq!(y.data(), &[10.5]);
    }
}
