//! Property-based tests on operator algebra: linearity of convolution,
//! idempotence of ReLU, norm invariances — cheap invariants that catch
//! indexing mistakes a fixed example can miss.

use neuro::ops;
use neuro::Tensor;
use proptest::prelude::*;

fn tensor_strategy(c: usize, h: usize, w: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-2.0f32..2.0, c * h * w)
        .prop_map(move |data| Tensor::new(vec![c, h, w], data).expect("shape matches"))
}

fn weight_strategy(oc: usize, ic: usize, k: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-1.0f32..1.0, oc * ic * k * k)
        .prop_map(move |data| Tensor::new(vec![oc, ic, k, k], data).expect("shape matches"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// conv(a·x, W) == a·conv(x, W) (homogeneity).
    #[test]
    fn conv_is_homogeneous(x in tensor_strategy(2, 6, 6), w in weight_strategy(3, 2, 3), a in -3.0f32..3.0) {
        let scaled_in = Tensor::new(
            x.shape().to_vec(),
            x.data().iter().map(|v| a * v).collect(),
        ).unwrap();
        let lhs = ops::conv2d(&scaled_in, &w, None, 1, 0).unwrap();
        let base = ops::conv2d(&x, &w, None, 1, 0).unwrap();
        let rhs = Tensor::new(
            base.shape().to_vec(),
            base.data().iter().map(|v| a * v).collect(),
        ).unwrap();
        let diff = lhs.max_abs_diff(&rhs).unwrap();
        prop_assert!(diff < 1e-3, "diff {}", diff);
    }

    /// conv(x + y, W) == conv(x, W) + conv(y, W) (additivity).
    #[test]
    fn conv_is_additive(x in tensor_strategy(1, 5, 5), y in tensor_strategy(1, 5, 5), w in weight_strategy(2, 1, 3)) {
        let sum_in = x.add(&y).unwrap();
        let lhs = ops::conv2d(&sum_in, &w, None, 1, 0).unwrap();
        let rhs = ops::conv2d(&x, &w, None, 1, 0)
            .unwrap()
            .add(&ops::conv2d(&y, &w, None, 1, 0).unwrap())
            .unwrap();
        let diff = lhs.max_abs_diff(&rhs).unwrap();
        prop_assert!(diff < 1e-4, "diff {}", diff);
    }

    /// ReLU is idempotent and never increases magnitude.
    #[test]
    fn relu_properties(x in tensor_strategy(1, 4, 4)) {
        let once = ops::relu(&x);
        prop_assert_eq!(&ops::relu(&once), &once);
        for (a, b) in once.data().iter().zip(x.data()) {
            prop_assert!(*a >= 0.0);
            prop_assert!(a.abs() <= b.abs() + 1e-9);
        }
    }

    /// Max pooling commutes with monotone shifts: pool(x + c) = pool(x) + c.
    #[test]
    fn max_pool_commutes_with_shift(x in tensor_strategy(1, 6, 6), c in -5.0f32..5.0) {
        let shifted = Tensor::new(
            x.shape().to_vec(),
            x.data().iter().map(|v| v + c).collect(),
        ).unwrap();
        let lhs = ops::max_pool2d(&shifted, 2, 2).unwrap();
        let base = ops::max_pool2d(&x, 2, 2).unwrap();
        let rhs = Tensor::new(
            base.shape().to_vec(),
            base.data().iter().map(|v| v + c).collect(),
        ).unwrap();
        let diff = lhs.max_abs_diff(&rhs).unwrap();
        prop_assert!(diff < 1e-4);
    }

    /// Instance norm is shift-invariant per channel (constant offsets
    /// vanish) and produces ~zero-mean channels.
    #[test]
    fn instance_norm_shift_invariance(x in tensor_strategy(2, 4, 4), c in -10.0f32..10.0) {
        let shifted = Tensor::new(
            x.shape().to_vec(),
            x.data().iter().map(|v| v + c).collect(),
        ).unwrap();
        let a = ops::instance_norm(&x, 1e-5).unwrap();
        let b = ops::instance_norm(&shifted, 1e-5).unwrap();
        let diff = a.max_abs_diff(&b).unwrap();
        prop_assert!(diff < 1e-2, "shift changed the normalized output by {}", diff);
        // Per-channel mean ~ 0.
        for ch in 0..2 {
            let mean: f32 = (0..16).map(|i| a.data()[ch * 16 + i]).sum::<f32>() / 16.0;
            prop_assert!(mean.abs() < 1e-3);
        }
    }

    /// Softmax is invariant under uniform logit shifts.
    #[test]
    fn softmax_shift_invariance(logits in proptest::collection::vec(-5.0f32..5.0, 2..8), c in -10.0f32..10.0) {
        let x = Tensor::vector(&logits);
        let shifted = Tensor::vector(&logits.iter().map(|v| v + c).collect::<Vec<_>>());
        let a = ops::softmax(&x);
        let b = ops::softmax(&shifted);
        let diff = a.max_abs_diff(&b).unwrap();
        prop_assert!(diff < 1e-5);
    }

    /// FC == 1x1 convolution over a [C,1,1] state, for arbitrary weights
    /// (the equivalence the DL2SQL compiler relies on).
    #[test]
    fn fc_equals_1x1_conv(
        weights in proptest::collection::vec(-1.0f32..1.0, 12),
        input in proptest::collection::vec(-2.0f32..2.0, 4),
    ) {
        let w_fc = Tensor::new(vec![3, 4], weights.clone()).unwrap();
        let w_conv = Tensor::new(vec![3, 4, 1, 1], weights).unwrap();
        let x = Tensor::new(vec![4, 1, 1], input).unwrap();
        let fc = ops::linear(&x, &w_fc, None).unwrap();
        let conv = ops::conv2d(&x, &w_conv, None, 1, 0).unwrap();
        for (a, b) in fc.data().iter().zip(conv.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
    }
}
