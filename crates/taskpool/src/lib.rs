//! Scoped worker pool shared by `minidb`'s morsel-driven executor and
//! `neuro`'s conv/linear output-channel loops.
//!
//! The pool is `std::thread::scope`-based: each parallel region spawns up
//! to `workers - 1` helper threads that pull task indices from a shared
//! atomic counter (work stealing over a fixed task list) while the calling
//! thread works too, and joins them before returning. Results come back in
//! task order, so any operator that concatenates per-morsel outputs in
//! index order is deterministic regardless of scheduling.
//!
//! A process-wide default parallelism knob lets embedders (the collab
//! strategies, the bench harnesses) turn on kernel parallelism without
//! threading a configuration value through every call site; it defaults to
//! `1`, which runs every region inline on the calling thread.

use std::cell::Cell;
use std::fmt;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

static DEFAULT_PARALLELISM: AtomicUsize = AtomicUsize::new(1);

// Process-wide pool counters, exported through [`stats`] so the
// observability registry can report scheduler behavior without the pool
// depending on any other crate.
static REGIONS: AtomicU64 = AtomicU64::new(0);
static TASKS: AtomicU64 = AtomicU64::new(0);
static BUSY_NANOS: AtomicU64 = AtomicU64::new(0);
static PEAK_WORKERS: AtomicU64 = AtomicU64::new(0);
static CAUGHT_PANICS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Index of the pool worker driving this thread inside a parallel
    /// region: `0` for the calling thread, `1..` for spawned helpers.
    static WORKER_ID: Cell<u32> = const { Cell::new(0) };
}

/// The pool-worker index of the current thread within the innermost
/// parallel region (`0` outside any region or on the calling thread).
pub fn current_worker() -> u32 {
    WORKER_ID.with(Cell::get)
}

/// Cumulative scheduler counters since process start (or the last
/// [`reset_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Parallel regions entered (including inline ones).
    pub regions: u64,
    /// Tasks executed across all regions.
    pub tasks: u64,
    /// Summed wall time spent inside task closures, in nanoseconds.
    pub busy_nanos: u64,
    /// Largest worker count any region ran with.
    pub peak_workers: u64,
    /// Worker panics caught by the `try_run_*` entry points and turned
    /// into typed errors.
    pub caught_panics: u64,
}

impl PoolStats {
    /// Busy time as a [`Duration`].
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_nanos)
    }
}

/// Snapshot of the process-wide pool counters.
pub fn stats() -> PoolStats {
    PoolStats {
        regions: REGIONS.load(Ordering::Relaxed),
        tasks: TASKS.load(Ordering::Relaxed),
        busy_nanos: BUSY_NANOS.load(Ordering::Relaxed),
        peak_workers: PEAK_WORKERS.load(Ordering::Relaxed),
        caught_panics: CAUGHT_PANICS.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide pool counters (benches isolating a phase).
pub fn reset_stats() {
    REGIONS.store(0, Ordering::Relaxed);
    TASKS.store(0, Ordering::Relaxed);
    BUSY_NANOS.store(0, Ordering::Relaxed);
    PEAK_WORKERS.store(0, Ordering::Relaxed);
    CAUGHT_PANICS.store(0, Ordering::Relaxed);
}

fn note_region(workers: u64, tasks: u64) {
    REGIONS.fetch_add(1, Ordering::Relaxed);
    TASKS.fetch_add(tasks, Ordering::Relaxed);
    PEAK_WORKERS.fetch_max(workers, Ordering::Relaxed);
}

/// The process-wide default worker count consulted by kernels that have no
/// per-call configuration (e.g. `neuro`'s conv loops). Starts at `1`.
pub fn default_parallelism() -> usize {
    DEFAULT_PARALLELISM.load(Ordering::Relaxed)
}

/// Sets the process-wide default worker count. `0` is clamped to `1`.
pub fn set_default_parallelism(workers: usize) {
    DEFAULT_PARALLELISM.store(workers.max(1), Ordering::Relaxed);
}

/// The hardware thread count, with a fallback of 1.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `0..n` into ranges of at most `chunk` elements (the executor's
/// morsels, a kernel's output-channel blocks). `chunk == 0` is clamped
/// to 1; `n == 0` yields no ranges.
pub fn split_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs `f(0), f(1), ..., f(tasks - 1)` on up to `workers` threads and
/// returns the results in task order.
///
/// With `workers <= 1` or fewer than two tasks everything runs inline on
/// the calling thread, in index order — the bit-for-bit reference path.
/// Otherwise scoped threads pull indices from a shared counter; a panic in
/// any task propagates to the caller after the scope joins.
pub fn run_indexed<T, F>(workers: usize, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || tasks <= 1 {
        note_region(1, tasks as u64);
        let start = Instant::now();
        let out = (0..tasks).map(f).collect();
        BUSY_NANOS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return out;
    }
    let threads = workers.min(tasks);
    note_region(threads as u64, tasks as u64);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let work = || {
        let mut busy = 0u64;
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            let start = Instant::now();
            let value = f(i);
            busy += start.elapsed().as_nanos() as u64;
            *slots[i].lock().expect("result slot poisoned") = Some(value);
        }
        BUSY_NANOS.fetch_add(busy, Ordering::Relaxed);
    };
    std::thread::scope(|scope| {
        let work = &work;
        for w in 1..threads {
            scope.spawn(move || {
                WORKER_ID.with(|id| id.set(w as u32));
                work();
            });
        }
        work();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task index was claimed and completed")
        })
        .collect()
}

/// [`run_indexed`] over explicit ranges: runs `f` once per range, in
/// parallel, returning results in range order.
pub fn run_ranges<T, F>(workers: usize, ranges: &[Range<usize>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    run_indexed(workers, ranges.len(), |i| f(ranges[i].clone()))
}

/// A worker panic caught by [`try_run_indexed`], carrying the panic
/// message. The pool itself stays fully usable afterwards — each region
/// joins its scoped threads before returning, so nothing is poisoned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PanicError {
    /// The panic payload, when it was a string; a placeholder otherwise.
    pub message: String,
}

impl fmt::Display for PanicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task panicked: {}", self.message)
    }
}

impl std::error::Error for PanicError {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Panic-safe [`run_indexed`]: a panic in any task is caught, the other
/// workers stop claiming tasks, the scope joins cleanly, and the first
/// panic comes back as a typed [`PanicError`] instead of unwinding
/// through (or hanging) the caller.
pub fn try_run_indexed<T, F>(workers: usize, tasks: usize, f: F) -> Result<Vec<T>, PanicError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || tasks <= 1 {
        note_region(1, tasks as u64);
        let start = Instant::now();
        let mut out = Vec::with_capacity(tasks);
        for i in 0..tasks {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => out.push(v),
                Err(payload) => {
                    CAUGHT_PANICS.fetch_add(1, Ordering::Relaxed);
                    BUSY_NANOS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    return Err(PanicError { message: panic_message(payload) });
                }
            }
        }
        BUSY_NANOS.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return Ok(out);
    }
    let threads = workers.min(tasks);
    note_region(threads as u64, tasks as u64);
    let next = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let first_panic: Mutex<Option<String>> = Mutex::new(None);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let work = || {
        let mut busy = 0u64;
        loop {
            if failed.load(Ordering::Acquire) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= tasks {
                break;
            }
            let start = Instant::now();
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(value) => {
                    busy += start.elapsed().as_nanos() as u64;
                    *slots[i].lock().expect("result slot poisoned") = Some(value);
                }
                Err(payload) => {
                    busy += start.elapsed().as_nanos() as u64;
                    let mut first = first_panic.lock().expect("panic slot poisoned");
                    if first.is_none() {
                        *first = Some(panic_message(payload));
                    }
                    failed.store(true, Ordering::Release);
                    break;
                }
            }
        }
        BUSY_NANOS.fetch_add(busy, Ordering::Relaxed);
    };
    std::thread::scope(|scope| {
        let work = &work;
        for w in 1..threads {
            scope.spawn(move || {
                WORKER_ID.with(|id| id.set(w as u32));
                work();
            });
        }
        work();
    });
    if let Some(message) = first_panic.into_inner().expect("panic slot poisoned") {
        CAUGHT_PANICS.fetch_add(1, Ordering::Relaxed);
        return Err(PanicError { message });
    }
    Ok(slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task index was claimed and completed")
        })
        .collect())
}

/// Panic-safe [`run_ranges`]; see [`try_run_indexed`].
pub fn try_run_ranges<T, F>(
    workers: usize,
    ranges: &[Range<usize>],
    f: F,
) -> Result<Vec<T>, PanicError>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    try_run_indexed(workers, ranges.len(), |i| f(ranges[i].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_in_order() {
        assert_eq!(split_ranges(0, 4), vec![]);
        assert_eq!(split_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(split_ranges(4, 4), vec![0..4]);
        assert_eq!(split_ranges(3, 0), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn run_indexed_preserves_task_order() {
        for workers in [1, 2, 8] {
            let out = run_indexed(workers, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_ranges_matches_sequential() {
        let ranges = split_ranges(1000, 64);
        let serial: Vec<usize> = ranges.iter().map(|r| r.clone().sum()).collect();
        let parallel = run_ranges(4, &ranges, |r| r.sum::<usize>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_parallelism_roundtrip() {
        assert!(default_parallelism() >= 1);
        set_default_parallelism(3);
        assert_eq!(default_parallelism(), 3);
        set_default_parallelism(0);
        assert_eq!(default_parallelism(), 1);
        set_default_parallelism(1);
    }

    #[test]
    fn stats_count_regions_tasks_and_workers() {
        let before = stats();
        let ids = run_indexed(4, 64, |_| current_worker());
        let after = stats();
        assert_eq!(after.regions, before.regions + 1);
        assert_eq!(after.tasks, before.tasks + 64);
        assert!(after.peak_workers >= 4);
        assert!(ids.iter().all(|&w| (w as usize) < 4));
        // The calling thread keeps worker id 0 outside regions.
        assert_eq!(current_worker(), 0);
    }

    #[test]
    fn try_run_catches_panics_and_pool_stays_usable() {
        for workers in [1, 2, 8] {
            let before = stats().caught_panics;
            let err = try_run_indexed(workers, 64, |i| {
                if i == 17 {
                    panic!("injected morsel failure");
                }
                i * 2
            })
            .unwrap_err();
            assert!(err.message.contains("injected morsel failure"), "{err}");
            assert_eq!(stats().caught_panics, before + 1);
            // The pool is immediately reusable after a caught panic.
            let ok = try_run_indexed(workers, 16, |i| i + 1).unwrap();
            assert_eq!(ok, (1..=16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn try_run_ranges_matches_sequential_on_success() {
        let ranges = split_ranges(500, 32);
        let serial: Vec<usize> = ranges.iter().map(|r| r.clone().sum()).collect();
        let parallel = try_run_ranges(4, &ranges, |r| r.sum::<usize>()).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(4, 8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
