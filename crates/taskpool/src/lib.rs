//! Scoped worker pool shared by `minidb`'s morsel-driven executor and
//! `neuro`'s conv/linear output-channel loops.
//!
//! The pool is `std::thread::scope`-based: each parallel region spawns up
//! to `workers - 1` helper threads that pull task indices from a shared
//! atomic counter (work stealing over a fixed task list) while the calling
//! thread works too, and joins them before returning. Results come back in
//! task order, so any operator that concatenates per-morsel outputs in
//! index order is deterministic regardless of scheduling.
//!
//! A process-wide default parallelism knob lets embedders (the collab
//! strategies, the bench harnesses) turn on kernel parallelism without
//! threading a configuration value through every call site; it defaults to
//! `1`, which runs every region inline on the calling thread.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

static DEFAULT_PARALLELISM: AtomicUsize = AtomicUsize::new(1);

/// The process-wide default worker count consulted by kernels that have no
/// per-call configuration (e.g. `neuro`'s conv loops). Starts at `1`.
pub fn default_parallelism() -> usize {
    DEFAULT_PARALLELISM.load(Ordering::Relaxed)
}

/// Sets the process-wide default worker count. `0` is clamped to `1`.
pub fn set_default_parallelism(workers: usize) {
    DEFAULT_PARALLELISM.store(workers.max(1), Ordering::Relaxed);
}

/// The hardware thread count, with a fallback of 1.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Splits `0..n` into ranges of at most `chunk` elements (the executor's
/// morsels, a kernel's output-channel blocks). `chunk == 0` is clamped
/// to 1; `n == 0` yields no ranges.
pub fn split_ranges(n: usize, chunk: usize) -> Vec<Range<usize>> {
    let chunk = chunk.max(1);
    let mut out = Vec::with_capacity(n.div_ceil(chunk));
    let mut start = 0;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Runs `f(0), f(1), ..., f(tasks - 1)` on up to `workers` threads and
/// returns the results in task order.
///
/// With `workers <= 1` or fewer than two tasks everything runs inline on
/// the calling thread, in index order — the bit-for-bit reference path.
/// Otherwise scoped threads pull indices from a shared counter; a panic in
/// any task propagates to the caller after the scope joins.
pub fn run_indexed<T, F>(workers: usize, tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if workers <= 1 || tasks <= 1 {
        return (0..tasks).map(f).collect();
    }
    let threads = workers.min(tasks);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= tasks {
            break;
        }
        let value = f(i);
        *slots[i].lock().expect("result slot poisoned") = Some(value);
    };
    std::thread::scope(|scope| {
        for _ in 1..threads {
            scope.spawn(work);
        }
        work();
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every task index was claimed and completed")
        })
        .collect()
}

/// [`run_indexed`] over explicit ranges: runs `f` once per range, in
/// parallel, returning results in range order.
pub fn run_ranges<T, F>(workers: usize, ranges: &[Range<usize>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> T + Sync,
{
    run_indexed(workers, ranges.len(), |i| f(ranges[i].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_in_order() {
        assert_eq!(split_ranges(0, 4), vec![]);
        assert_eq!(split_ranges(10, 4), vec![0..4, 4..8, 8..10]);
        assert_eq!(split_ranges(4, 4), vec![0..4]);
        assert_eq!(split_ranges(3, 0), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn run_indexed_preserves_task_order() {
        for workers in [1, 2, 8] {
            let out = run_indexed(workers, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn run_ranges_matches_sequential() {
        let ranges = split_ranges(1000, 64);
        let serial: Vec<usize> = ranges.iter().map(|r| r.clone().sum()).collect();
        let parallel = run_ranges(4, &ranges, |r| r.sum::<usize>());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn default_parallelism_roundtrip() {
        assert!(default_parallelism() >= 1);
        set_default_parallelism(3);
        assert_eq!(default_parallelism(), 3);
        set_default_parallelism(0);
        assert_eq!(default_parallelism(), 1);
        set_default_parallelism(1);
    }

    #[test]
    fn panics_propagate() {
        let caught = std::panic::catch_unwind(|| {
            run_indexed(4, 8, |i| {
                if i == 5 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(caught.is_err());
    }
}
