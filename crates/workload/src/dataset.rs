//! The five-table synthetic IoT dataset.
//!
//! Paper Sec. V: "Our testing database consists of five tables: video,
//! fabric, client, order, and device. ... There are 100 million tuples in
//! total (the sizes of tables follow a ratio of 100:10:1:10:1)."
//!
//! The generator keeps the schema, the ratio and uniform value
//! distributions (so predicate selectivities are exactly controllable),
//! and scales the absolute row counts to laptop size. Keyframes are
//! deterministic pseudo-random tensors serialized as blobs.

use collab::tensor_to_blob;
use minidb::value::parse_date;
use minidb::{Column, DataType, Database, Field, Result, Schema, Table};
use neuro::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// The first day of the simulated year of production.
pub const DATE_EPOCH: &str = "2021-01-01";
/// Days covered by the dataset (printdate/date are uniform over this
/// range; a window of `s * DATE_SPAN_DAYS` days has selectivity `s`).
pub const DATE_SPAN_DAYS: i32 = 365;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Rows of the `video` table; other tables follow the 100:10:1:10:1
    /// ratio (fabric = video/10, client = video/100, order = video/10,
    /// device = video/100, all at least 1).
    pub video_rows: usize,
    /// Keyframe tensor shape (the paper's 224×224×3 scaled down).
    pub keyframe_shape: Vec<usize>,
    /// Number of distinct fabric patterns.
    pub patterns: usize,
    /// RNG seed — the dataset is fully deterministic per seed.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig { video_rows: 2000, keyframe_shape: vec![1, 12, 12], patterns: 8, seed: 2021 }
    }
}

/// Row counts of the generated tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSummary {
    pub video_rows: usize,
    pub fabric_rows: usize,
    pub client_rows: usize,
    pub order_rows: usize,
    pub device_rows: usize,
}

impl DatasetSummary {
    /// Total tuples across the five tables.
    pub fn total_rows(&self) -> usize {
        self.video_rows + self.fabric_rows + self.client_rows + self.order_rows + self.device_rows
    }
}

/// A deterministic keyframe for a video row.
pub fn keyframe(shape: &[usize], seed: u64, video_id: u64) -> Tensor {
    let mut state = seed ^ video_id.wrapping_mul(0x9E3779B97F4A7C15);
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 2001) as f32 / 1000.0 - 1.0
        })
        .collect();
    Tensor::new(shape.to_vec(), data).expect("shape/data consistent")
}

/// Builds the five tables into `db` and returns the row counts.
pub fn build_dataset(db: &Database, config: &DatasetConfig) -> Result<DatasetSummary> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let epoch = parse_date(DATE_EPOCH)?;

    let video_rows = config.video_rows.max(1);
    let fabric_rows = (video_rows / 10).max(1);
    let client_rows = (video_rows / 100).max(1);
    let order_rows = (video_rows / 10).max(1);
    let device_rows = (video_rows / 100).max(1);

    // ---- client ---------------------------------------------------------
    let regions = ["east", "south", "west", "north"];
    let client = Table::new(
        Schema::new(vec![
            Field::new("clientID", DataType::Int64),
            Field::new("name", DataType::Utf8),
            Field::new("region", DataType::Utf8),
        ]),
        vec![
            Column::Int64((0..client_rows as i64).collect()),
            Column::Utf8((0..client_rows).map(|i| format!("client_{i}")).collect()),
            Column::Utf8(
                (0..client_rows).map(|i| regions[i % regions.len()].to_string()).collect(),
            ),
        ],
    )?;
    db.catalog().create_table("client", client, true)?;

    // ---- device (printer sensors) -----------------------------------------
    let device = Table::new(
        Schema::new(vec![
            Field::new("deviceID", DataType::Int64),
            Field::new("model", DataType::Utf8),
            Field::new("location", DataType::Utf8),
            Field::new("base_temperature", DataType::Float64),
            Field::new("base_humidity", DataType::Float64),
        ]),
        vec![
            Column::Int64((0..device_rows as i64).collect()),
            Column::Utf8((0..device_rows).map(|i| format!("printer_v{}", i % 3 + 1)).collect()),
            Column::Utf8((0..device_rows).map(|i| format!("hall_{}", i % 5)).collect()),
            Column::Float64((0..device_rows).map(|_| rng.random_range(18.0..42.0)).collect()),
            Column::Float64((0..device_rows).map(|_| rng.random_range(45.0..95.0)).collect()),
        ],
    )?;
    db.catalog().create_table("device", device, true)?;

    // ---- order ------------------------------------------------------------
    let order = Table::new(
        Schema::new(vec![
            Field::new("orderID", DataType::Int64),
            Field::new("clientID", DataType::Int64),
            Field::new("orderdate", DataType::Date),
            Field::new("quantity", DataType::Int64),
        ]),
        vec![
            Column::Int64((0..order_rows as i64).collect()),
            Column::Int64(
                (0..order_rows).map(|_| rng.random_range(0..client_rows as i64)).collect(),
            ),
            Column::Date(
                (0..order_rows).map(|_| epoch + rng.random_range(0..DATE_SPAN_DAYS)).collect(),
            ),
            Column::Int64((0..order_rows).map(|_| rng.random_range(1..500)).collect()),
        ],
    )?;
    db.catalog().create_table("order", order, true)?;

    // ---- fabric (the main table: transactions + aggregated sensor data) ----
    // Values are uniform so predicate selectivities are exact:
    // humidity ∈ [50,100), temperature ∈ [20,45), printdate uniform over
    // the year.
    let fabric_dates: Vec<i32> = (0..fabric_rows)
        .map(|i| epoch + ((i as i64 * DATE_SPAN_DAYS as i64) / fabric_rows as i64) as i32)
        .collect();
    let fabric = Table::new(
        Schema::new(vec![
            Field::new("transID", DataType::Int64),
            Field::new("patternID", DataType::Int64),
            Field::new("meter", DataType::Float64),
            Field::new("printdate", DataType::Date),
            Field::new("humidity", DataType::Float64),
            Field::new("temperature", DataType::Float64),
            Field::new("orderID", DataType::Int64),
            Field::new("deviceID", DataType::Int64),
        ]),
        vec![
            Column::Int64((0..fabric_rows as i64).collect()),
            Column::Int64(
                (0..fabric_rows).map(|_| rng.random_range(0..config.patterns as i64)).collect(),
            ),
            Column::Float64((0..fabric_rows).map(|_| rng.random_range(0.5..30.0)).collect()),
            Column::Date(fabric_dates.clone()),
            // Humidity is exactly uniform but *permuted* relative to the
            // row order (printdate is monotone in the row index; without
            // the permutation, humidity and date predicates would select
            // disjoint index ranges instead of independent ones).
            Column::Float64({
                let p = [7919usize, 104729, 1299709]
                    .into_iter()
                    .find(|p| gcd(*p, fabric_rows) == 1)
                    .unwrap_or(1);
                (0..fabric_rows)
                    .map(|i| {
                        50.0 + 50.0 * ((i * p % fabric_rows) as f64 + 0.5) / fabric_rows as f64
                    })
                    .collect()
            }),
            Column::Float64((0..fabric_rows).map(|_| rng.random_range(20.0..45.0)).collect()),
            Column::Int64(
                (0..fabric_rows).map(|_| rng.random_range(0..order_rows as i64)).collect(),
            ),
            Column::Int64(
                (0..fabric_rows).map(|_| rng.random_range(0..device_rows as i64)).collect(),
            ),
        ],
    )?;
    db.catalog().create_table("fabric", fabric, true)?;

    // ---- video (keyframes; ~10 clips per fabric transaction) --------------
    let mut keyframes = Column::empty(DataType::Blob);
    for v in 0..video_rows as u64 {
        keyframes.push(tensor_to_blob(&keyframe(&config.keyframe_shape, config.seed, v)))?;
    }
    let video = Table::new(
        Schema::new(vec![
            Field::new("videoID", DataType::Int64),
            Field::new("transID", DataType::Int64),
            Field::new("date", DataType::Date),
            Field::new("keyframe", DataType::Blob),
        ]),
        vec![
            Column::Int64((0..video_rows as i64).collect()),
            Column::Int64((0..video_rows).map(|i| (i % fabric_rows) as i64).collect()),
            Column::Date((0..video_rows).map(|i| fabric_dates[i % fabric_rows]).collect()),
            keyframes,
        ],
    )?;
    db.catalog().create_table("video", video, true)?;

    Ok(DatasetSummary { video_rows, fabric_rows, client_rows, order_rows, device_rows })
}

fn gcd(a: usize, b: usize) -> usize {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// The end (exclusive) of a printdate window whose selectivity over the
/// uniform year is `selectivity` (e.g. 0.001 → "2021-01-01" plus 0.4 days).
pub fn date_upper_bound_for_selectivity(selectivity: f64) -> String {
    let days = (selectivity.clamp(0.0, 1.0) * DATE_SPAN_DAYS as f64).ceil().max(1.0) as i32;
    let epoch = parse_date(DATE_EPOCH).expect("epoch parses");
    minidb::value::format_date(epoch + days)
}

/// A humidity threshold whose `humidity > t` selectivity is `selectivity`
/// (humidity is uniform on [50, 100)).
pub fn humidity_threshold_for_selectivity(selectivity: f64) -> f64 {
    100.0 - 50.0 * selectivity.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::Value;

    #[test]
    fn ratio_follows_the_paper() {
        let db = Database::new();
        let s =
            build_dataset(&db, &DatasetConfig { video_rows: 1000, ..Default::default() }).unwrap();
        assert_eq!(s.video_rows, 1000);
        assert_eq!(s.fabric_rows, 100);
        assert_eq!(s.client_rows, 10);
        assert_eq!(s.order_rows, 100);
        assert_eq!(s.device_rows, 10);
        assert_eq!(s.total_rows(), 1220);
        for t in ["video", "fabric", "client", "order", "device"] {
            assert!(db.catalog().table(t).is_some(), "missing {t}");
        }
    }

    #[test]
    fn dataset_is_deterministic_per_seed() {
        let a = Database::new();
        let b = Database::new();
        let cfg = DatasetConfig { video_rows: 200, ..Default::default() };
        build_dataset(&a, &cfg).unwrap();
        build_dataset(&b, &cfg).unwrap();
        let ta = a.catalog().table("fabric").unwrap();
        let tb = b.catalog().table("fabric").unwrap();
        assert_eq!(*ta, *tb);
    }

    #[test]
    fn selectivity_helpers_hit_their_targets() {
        let db = Database::new();
        build_dataset(&db, &DatasetConfig { video_rows: 5000, ..Default::default() }).unwrap();
        // Humidity is exactly uniform by construction.
        for s in [0.1, 0.5] {
            let t = humidity_threshold_for_selectivity(s);
            let hit = db
                .execute(&format!("SELECT count(*) FROM fabric WHERE humidity > {t}"))
                .unwrap()
                .table()
                .column(0)
                .i64_at(0) as f64;
            let frac = hit / 500.0;
            assert!((frac - s).abs() < 0.02, "selectivity {s}: got {frac}");
        }
    }

    #[test]
    fn date_window_selectivity_is_controllable() {
        let db = Database::new();
        build_dataset(&db, &DatasetConfig { video_rows: 5000, ..Default::default() }).unwrap();
        let upper = date_upper_bound_for_selectivity(0.1);
        let hit = db
            .execute(&format!(
                "SELECT count(*) FROM fabric WHERE printdate >= '{DATE_EPOCH}' and printdate < '{upper}'"
            ))
            .unwrap()
            .table()
            .column(0)
            .i64_at(0) as f64;
        let frac = hit / 500.0;
        assert!((frac - 0.1).abs() < 0.03, "got {frac}");
    }

    #[test]
    fn keyframes_are_valid_and_distinct() {
        let shape = [1usize, 8, 8];
        let a = keyframe(&shape, 7, 1);
        let b = keyframe(&shape, 7, 2);
        let a2 = keyframe(&shape, 7, 1);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert!(a.data().iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn video_joins_back_to_fabric() {
        let db = Database::new();
        build_dataset(&db, &DatasetConfig { video_rows: 500, ..Default::default() }).unwrap();
        let out = db
            .execute("SELECT count(*) FROM video V, fabric F WHERE V.transID = F.transID")
            .unwrap();
        assert_eq!(out.table().column(0).i64_at(0), 500, "every clip has its transaction");
    }

    #[test]
    fn blob_column_roundtrips_through_sql() {
        let db = Database::new();
        let cfg = DatasetConfig { video_rows: 120, ..Default::default() };
        build_dataset(&db, &cfg).unwrap();
        let out = db.execute("SELECT keyframe FROM video WHERE videoID = 5").unwrap();
        let Value::Blob(_) = out.table().column(0).value(0) else {
            panic!("expected a blob");
        };
        let t = collab::blob_to_tensor(&out.table().column(0).value(0)).unwrap();
        assert_eq!(t, keyframe(&cfg.keyframe_shape, cfg.seed, 5));
    }
}
