//! The task-model repository.
//!
//! Paper Sec. V: "We train a model repository consisting of 20 neural
//! networks for various tasks, such as textile defect detection, clothes
//! classification, textile type classification, and textile pattern
//! recognition. We adopt the ResNet34 as the backbone ... and apply the
//! distillation technique to learn a student CNN composed of three
//! Conv+BN+ReLU layers."
//!
//! Training is out of scope (inference performance is weight-independent);
//! each task gets a deterministic-weights student CNN, and the class
//! histograms the hint rules need are estimated by running each model over
//! a held-out sample set — the statistical equivalent of the paper's
//! "histogram built during offline training".

use std::sync::Arc;

use collab::{ModelRepo, NudfOutput, NudfSpec};
use neuro::{zoo, Model, Tensor};

use crate::dataset::keyframe;

/// Repository configuration.
#[derive(Debug, Clone)]
pub struct RepoConfig {
    /// Keyframe shape the models consume (must match the dataset).
    pub keyframe_shape: Vec<usize>,
    /// Number of fabric patterns (classes of `nUDF_recog`).
    pub patterns: usize,
    /// Samples used to estimate each model's class histogram.
    pub histogram_samples: usize,
    /// RNG seed for model weights.
    pub seed: u64,
}

impl Default for RepoConfig {
    fn default() -> Self {
        RepoConfig { keyframe_shape: vec![1, 12, 12], patterns: 8, histogram_samples: 64, seed: 7 }
    }
}

const CLOTH_LABELS: [&str; 5] = ["shirt", "dress", "trouser", "coat", "scarf"];
const PATTERN_LABELS: [&str; 6] = ["Floral Pattern", "Stripe", "Dots", "Plaid", "Paisley", "Solid"];
const TYPE_LABELS: [&str; 4] = ["cotton", "silk", "linen", "wool"];

/// Builds the 20-model repository (5 task families × 4 variants).
///
/// Registered nUDF names:
/// * `nUDF_detect`, `nUDF_detect_v1..v3` — defect detection (Bool),
/// * `nUDF_classify`, `nUDF_classify_v1..v3` — pattern classification
///   (labels),
/// * `nUDF_clothes`, `nUDF_clothes_v1..v3` — clothes classification,
/// * `nUDF_type`, `nUDF_type_v1..v3` — textile type classification,
/// * `nUDF_recog`, `nUDF_recog_v1..v3` — pattern-id recognition (Int64).
pub fn build_repo(config: &RepoConfig) -> Arc<ModelRepo> {
    let repo = ModelRepo::new();
    let samples: Vec<Tensor> = (0..config.histogram_samples as u64)
        .map(|i| keyframe(&config.keyframe_shape, config.seed ^ 0xABCD, i))
        .collect();

    let register =
        |name: String, classes: usize, output_for: &dyn Fn() -> NudfOutput, seed: u64| {
            let model = Arc::new(zoo::student(config.keyframe_shape.clone(), classes, seed));
            let class_probs = dl2sql::hints::histogram_from_model(&model, &samples)
                .expect("histogram over valid samples");
            repo.register(NudfSpec::new(name, model, output_for(), class_probs));
        };

    for v in 0..4 {
        let suffix = if v == 0 { String::new() } else { format!("_v{v}") };
        register(
            format!("nUDF_detect{suffix}"),
            2,
            &|| NudfOutput::Bool { true_class: 1 },
            config.seed + 100 + v,
        );
        register(
            format!("nUDF_classify{suffix}"),
            PATTERN_LABELS.len(),
            &|| NudfOutput::Label {
                labels: PATTERN_LABELS.iter().map(|s| s.to_string()).collect(),
            },
            config.seed + 200 + v,
        );
        register(
            format!("nUDF_clothes{suffix}"),
            CLOTH_LABELS.len(),
            &|| NudfOutput::Label { labels: CLOTH_LABELS.iter().map(|s| s.to_string()).collect() },
            config.seed + 300 + v,
        );
        register(
            format!("nUDF_type{suffix}"),
            TYPE_LABELS.len(),
            &|| NudfOutput::Label { labels: TYPE_LABELS.iter().map(|s| s.to_string()).collect() },
            config.seed + 400 + v,
        );
        let patterns = config.patterns;
        register(
            format!("nUDF_recog{suffix}"),
            patterns,
            &|| NudfOutput::ClassId,
            config.seed + 500 + v,
        );
    }
    // The Type-3 conditional detector (model selected by humidity).
    repo.register(conditional_detect_spec(config));
    Arc::new(repo)
}

/// A *conditional* defect-detection nUDF (the paper's Type-3 premise:
/// "various models are trained for different humidity and temperature
/// combinations"): the second SQL argument (humidity) selects among three
/// variants banded at <70, 70–85 and ≥85.
pub fn conditional_detect_spec(config: &RepoConfig) -> NudfSpec {
    use collab::ConditionalVariant;
    let samples: Vec<Tensor> = (0..config.histogram_samples as u64)
        .map(|i| keyframe(&config.keyframe_shape, config.seed ^ 0xABCD, i))
        .collect();
    let base = Arc::new(zoo::student(config.keyframe_shape.clone(), 2, config.seed + 900));
    let mid = Arc::new({
        let mut m = zoo::student(config.keyframe_shape.clone(), 2, config.seed + 901);
        m.name = "student_cond_mid".into();
        m
    });
    let high = Arc::new({
        let mut m = zoo::student(config.keyframe_shape.clone(), 2, config.seed + 902);
        m.name = "student_cond_high".into();
        m
    });
    let class_probs =
        dl2sql::hints::histogram_from_model(&base, &samples).expect("histogram over valid samples");
    let mut spec = NudfSpec::new(
        "nUDF_detect_cond",
        Arc::clone(&base),
        NudfOutput::Bool { true_class: 1 },
        class_probs,
    );
    spec.variants = vec![
        ConditionalVariant { min_condition: f64::NEG_INFINITY, model: base },
        ConditionalVariant { min_condition: 70.0, model: mid },
        ConditionalVariant { min_condition: 85.0, model: high },
    ];
    spec
}

/// A ResNet-family detect nUDF for the model-depth experiments (paper
/// Tables IV and VI): `nUDF_detect_resnet{depth}`.
pub fn resnet_spec(depth: usize, config: &RepoConfig) -> NudfSpec {
    let model: Arc<Model> =
        Arc::new(zoo::resnet(depth, config.keyframe_shape.clone(), 2, config.seed + depth as u64));
    let samples: Vec<Tensor> = (0..config.histogram_samples as u64)
        .map(|i| keyframe(&config.keyframe_shape, config.seed ^ 0xABCD, i))
        .collect();
    let class_probs = dl2sql::hints::histogram_from_model(&model, &samples)
        .expect("histogram over valid samples");
    NudfSpec::new(
        format!("nUDF_detect_resnet{depth}"),
        model,
        NudfOutput::Bool { true_class: 1 },
        class_probs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repo_holds_twenty_task_models_plus_the_conditional_detector() {
        let repo = build_repo(&RepoConfig::default());
        assert_eq!(repo.names().len(), 21);
        assert!(repo.is_nudf("nUDF_detect"));
        assert!(repo.is_nudf("nudf_recog_v3"));
        let cond = repo.require("nUDF_detect_cond").unwrap();
        assert!(cond.is_conditional());
        assert_eq!(cond.variants.len(), 3);
    }

    #[test]
    fn histograms_are_probability_distributions() {
        let repo = build_repo(&RepoConfig { histogram_samples: 32, ..Default::default() });
        for name in repo.names() {
            let spec = repo.require(&name).unwrap();
            let sum: f64 = spec.class_probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{name} histogram sums to {sum}");
            assert_eq!(spec.class_probs.len(), spec.model.num_classes);
        }
    }

    #[test]
    fn resnet_specs_scale_with_depth() {
        let cfg = RepoConfig {
            keyframe_shape: vec![1, 8, 8],
            histogram_samples: 8,
            ..Default::default()
        };
        let shallow = resnet_spec(5, &cfg);
        let deep = resnet_spec(20, &cfg);
        assert!(deep.model.param_count() > shallow.model.param_count());
        assert_eq!(shallow.name, "nUDF_detect_resnet5");
    }

    #[test]
    fn repo_is_deterministic() {
        let cfg = RepoConfig { histogram_samples: 16, ..Default::default() };
        let a = build_repo(&cfg);
        let b = build_repo(&cfg);
        let sa = a.require("nUDF_detect").unwrap();
        let sb = b.require("nUDF_detect").unwrap();
        assert_eq!(*sa.model, *sb.model);
        assert_eq!(sa.class_probs, sb.class_probs);
    }
}
