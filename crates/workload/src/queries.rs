//! Query-benchmark generation.
//!
//! Paper Sec. V: "We create a query template for each type displayed in
//! Table I that picks a random DL task corresponding to a model in the
//! model repository. ... We generate 100 queries for each type with a
//! preset selectivity on the SQL predicates and mix them as our query
//! benchmark."

use collab::QueryType;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::dataset::{
    date_upper_bound_for_selectivity, humidity_threshold_for_selectivity, DATE_EPOCH,
};

/// One generated benchmark query.
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The SQL text.
    pub sql: String,
    /// Which Table-I type the template instantiates.
    pub qtype: QueryType,
    /// The nUDF names the query calls.
    pub nudfs: Vec<String>,
    /// The preset accumulated selectivity of the relational predicates.
    pub selectivity: f64,
}

/// Benchmark configuration.
#[derive(Debug, Clone)]
pub struct BenchmarkConfig {
    /// Queries generated per type.
    pub queries_per_type: usize,
    /// Accumulated selectivity of the relational predicates (paper
    /// default: 0.01%, i.e. `0.0001`).
    pub selectivity: f64,
    /// RNG seed for task selection.
    pub seed: u64,
    /// Task variants to draw from (suffixes of the repo's nUDF names).
    pub variants: usize,
}

impl Default for BenchmarkConfig {
    fn default() -> Self {
        BenchmarkConfig { queries_per_type: 100, selectivity: 0.0001, seed: 99, variants: 4 }
    }
}

fn variant(rng: &mut StdRng, variants: usize) -> String {
    let v = rng.random_range(0..variants.max(1));
    if v == 0 {
        String::new()
    } else {
        format!("_v{v}")
    }
}

/// Instantiates the Table-I template for one query type.
pub fn template(qtype: QueryType, selectivity: f64, suffix: &str) -> QuerySpec {
    let date_hi = date_upper_bound_for_selectivity(selectivity);
    let humidity = humidity_threshold_for_selectivity(selectivity);
    let (sql, nudfs) = match qtype {
        // Type 1: the total printed meters of one pattern; date windows
        // carry the preset selectivity; no join between F and V.
        QueryType::Type1 => (
            format!(
                "SELECT sum(meter) AS total FROM fabric F, video V \
                 WHERE F.printdate >= '{DATE_EPOCH}' and F.printdate < '{date_hi}' \
                 and V.date >= '{DATE_EPOCH}' and V.date < '{date_hi}' \
                 and nUDF_classify{suffix}(V.keyframe) = 'Floral Pattern'"
            ),
            vec![format!("nUDF_classify{suffix}")],
        ),
        // Type 2: defect rate per pattern — the aggregate consumes nUDF
        // output.
        QueryType::Type2 => (
            format!(
                "SELECT patternID, count(nUDF_detect{suffix}(V.keyframe) = TRUE) / sum(meter) AS rate \
                 FROM fabric F, video V \
                 WHERE F.printdate >= '{DATE_EPOCH}' and F.printdate < '{date_hi}' \
                 and F.transID = V.transID \
                 GROUP BY patternID ORDER BY patternID"
            ),
            vec![format!("nUDF_detect{suffix}")],
        ),
        // Type 3: relational predicates gate which keyframes are inferred.
        QueryType::Type3 => (
            format!(
                "SELECT F.patternID, F.transID FROM fabric F, video V \
                 WHERE F.humidity > {humidity} and F.temperature > 30 \
                 and F.transID = V.transID \
                 and nUDF_detect{suffix}(V.keyframe) = FALSE \
                 ORDER BY F.transID"
            ),
            vec![format!("nUDF_detect{suffix}")],
        ),
        // Type 4: consistency check between the logged pattern and the
        // recognized one.
        QueryType::Type4 => (
            format!(
                "SELECT F.patternID, F.transID FROM fabric F, video V \
                 WHERE F.printdate >= '{DATE_EPOCH}' and F.printdate < '{date_hi}' \
                 and F.transID = V.transID \
                 and F.patternID != nUDF_recog{suffix}(V.keyframe) \
                 ORDER BY F.transID"
            ),
            vec![format!("nUDF_recog{suffix}")],
        ),
    };
    QuerySpec { sql, qtype, nudfs, selectivity }
}

/// The conditional Type-3 template: the humidity value both gates rows
/// *and* selects the model variant
/// (`nUDF_detect_cond(V.keyframe, F.humidity)`).
pub fn conditional_type3_template(selectivity: f64) -> QuerySpec {
    let humidity = humidity_threshold_for_selectivity(selectivity);
    QuerySpec {
        sql: format!(
            "SELECT F.patternID, F.transID FROM fabric F, video V \
             WHERE F.humidity > {humidity} and F.transID = V.transID \
             and nUDF_detect_cond(V.keyframe, F.humidity) = FALSE \
             ORDER BY F.transID"
        ),
        qtype: QueryType::Type3,
        nudfs: vec!["nUDF_detect_cond".into()],
        selectivity,
    }
}

/// Generates the mixed benchmark: `queries_per_type` instances of each
/// type, tasks drawn deterministically from the configured variants.
pub fn generate_benchmark(config: &BenchmarkConfig) -> Vec<QuerySpec> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(config.queries_per_type * 4);
    for qtype in [QueryType::Type1, QueryType::Type2, QueryType::Type3, QueryType::Type4] {
        for _ in 0..config.queries_per_type {
            let suffix = variant(&mut rng, config.variants);
            out.push(template(qtype, config.selectivity, &suffix));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_has_all_types() {
        let qs = generate_benchmark(&BenchmarkConfig { queries_per_type: 3, ..Default::default() });
        assert_eq!(qs.len(), 12);
        for t in [QueryType::Type1, QueryType::Type2, QueryType::Type3, QueryType::Type4] {
            assert_eq!(qs.iter().filter(|q| q.qtype == t).count(), 3);
        }
    }

    #[test]
    fn templates_parse_and_classify_correctly() {
        use minidb::sql::parser::parse_statement;
        let repo = crate::models::build_repo(&crate::models::RepoConfig::default());
        for qtype in [QueryType::Type1, QueryType::Type2, QueryType::Type3, QueryType::Type4] {
            let spec = template(qtype, 0.01, "");
            let stmt = parse_statement(&spec.sql).expect("template parses");
            let minidb::sql::ast::Statement::Query(q) = stmt else { panic!() };
            assert_eq!(collab::classify_query(&q, &repo), qtype, "{}", spec.sql);
        }
    }

    #[test]
    fn conditional_template_classifies_as_type3() {
        let repo = crate::models::build_repo(&crate::models::RepoConfig::default());
        let spec = conditional_type3_template(0.2);
        assert_eq!(collab::classify_sql(&spec.sql, &repo).unwrap(), QueryType::Type3);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = BenchmarkConfig { queries_per_type: 5, ..Default::default() };
        let a = generate_benchmark(&cfg);
        let b = generate_benchmark(&cfg);
        assert_eq!(
            a.iter().map(|q| &q.sql).collect::<Vec<_>>(),
            b.iter().map(|q| &q.sql).collect::<Vec<_>>()
        );
    }

    #[test]
    fn selectivity_parameter_changes_the_predicates() {
        let tight = template(QueryType::Type3, 0.0001, "");
        let loose = template(QueryType::Type3, 0.5, "");
        assert_ne!(tight.sql, loose.sql);
        assert!(tight.sql.contains("humidity > 99.99"));
    }
}
