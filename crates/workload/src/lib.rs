//! `workload` — the synthetic stand-in for the paper's Alibaba IoT
//! textile-printing dataset, model repository and query benchmark.
//!
//! The real deployment holds 100 M tuples and >100 GB of video across five
//! tables (video, fabric, client, order, device) in a 100:10:1:10:1 size
//! ratio, plus a repository of 20 task networks. None of that data is
//! public; this crate generates a deterministic, laptop-scale equivalent
//! that preserves everything the experiments depend on:
//!
//! * the five-table schema and the 100:10:1:10:1 ratio ([`dataset`]),
//! * keyframes that flow through real inference (small tensors stored as
//!   blobs),
//! * controllable relational-predicate selectivity (uniform value
//!   distributions + helper predicates),
//! * a 20-model task repository with offline class histograms
//!   ([`models`]),
//! * the four query templates of paper Table I with preset selectivities
//!   ([`queries`]).

pub mod dataset;
pub mod models;
pub mod queries;

pub use dataset::{build_dataset, DatasetConfig, DatasetSummary};
pub use models::{build_repo, conditional_detect_spec, resnet_spec, RepoConfig};
pub use queries::{conditional_type3_template, generate_benchmark, BenchmarkConfig, QuerySpec};
