//! Pre-join strategy comparison (paper Fig. 11).
//!
//! The strategies themselves live in
//! [`crate::compiler::PreJoinStrategy`]; this module provides the harness
//! that compiles one model under every strategy and measures per-CNN-block
//! inference time on the same input.

use std::collections::BTreeMap;
use std::time::Duration;

use std::sync::Arc;

use minidb::Database;
use neuro::{Model, Tensor};

use crate::compiler::{compile_model_with_strategy, PreJoinStrategy};
use crate::error::Result;
use crate::registry::NeuralRegistry;
use crate::runner::Runner;

/// Per-strategy, per-block timing for one model/input pair.
#[derive(Debug, Clone)]
pub struct PreJoinComparison {
    /// Strategy → (block label → accumulated time). Block labels follow
    /// paper Fig. 9 ("Conv1", "Reshape1", ...).
    pub per_block: Vec<(PreJoinStrategy, BTreeMap<String, Duration>)>,
    /// Strategy → total inference time.
    pub totals: Vec<(PreJoinStrategy, Duration)>,
    /// Predicted class per strategy (must all agree).
    pub predictions: Vec<(PreJoinStrategy, usize)>,
}

/// Runs `model` on `input` under all three strategies, averaging over
/// `repetitions` runs.
pub fn compare_strategies(
    db: &Arc<Database>,
    registry: &Arc<NeuralRegistry>,
    model: &Model,
    input: &Tensor,
    repetitions: usize,
) -> Result<PreJoinComparison> {
    let strategies =
        [PreJoinStrategy::None, PreJoinStrategy::FuseMapping, PreJoinStrategy::PreJoinKernel];
    let mut per_block = Vec::new();
    let mut totals = Vec::new();
    let mut predictions = Vec::new();
    let reps = repetitions.max(1);

    for strategy in strategies {
        let compiled = Arc::new(compile_model_with_strategy(db, registry, model, strategy)?);
        let runner = Runner::new(Arc::clone(db), Arc::clone(registry), compiled)?;
        let mut blocks: BTreeMap<String, Duration> = BTreeMap::new();
        let mut total = Duration::ZERO;
        let mut predicted = 0;
        for _ in 0..reps {
            let out = runner.infer(input)?;
            for t in &out.step_timings {
                *blocks.entry(t.label.clone()).or_default() += t.duration;
            }
            total += out.inference_time;
            predicted = out.predicted_class;
        }
        for v in blocks.values_mut() {
            *v /= reps as u32;
        }
        per_block.push((strategy, blocks));
        totals.push((strategy, total / reps as u32));
        predictions.push((strategy, predicted));
    }
    Ok(PreJoinComparison { per_block, totals, predictions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuro::zoo;

    #[test]
    fn all_strategies_agree_on_predictions() {
        let db = Arc::new(Database::new());
        let registry = Arc::new(NeuralRegistry::new());
        let model = zoo::student(vec![1, 10, 10], 4, 31);
        let input = Tensor::new(
            vec![1, 10, 10],
            (0..100).map(|i| ((i * 37 % 100) as f32 / 50.0) - 1.0).collect(),
        )
        .unwrap();
        let cmp = compare_strategies(&db, &registry, &model, &input, 1).unwrap();
        let expected = model.predict(&input).unwrap();
        for (s, p) in &cmp.predictions {
            assert_eq!(*p, expected, "strategy {s:?} diverged");
        }
    }

    #[test]
    fn strategies_agree_on_a_residual_model() {
        let db = Arc::new(Database::new());
        let registry = Arc::new(NeuralRegistry::new());
        let model = zoo::resnet_with_width(5, 4, vec![1, 8, 8], 3, 77);
        let input = Tensor::new(
            vec![1, 8, 8],
            (0..64).map(|i| ((i * 29 % 64) as f32 / 32.0) - 1.0).collect(),
        )
        .unwrap();
        let cmp = compare_strategies(&db, &registry, &model, &input, 1).unwrap();
        let expected = model.predict(&input).unwrap();
        for (s, p) in &cmp.predictions {
            assert_eq!(*p, expected, "strategy {s:?} diverged on the resnet");
        }
    }

    #[test]
    fn fused_strategies_emit_fewer_steps() {
        let db = Database::new();
        let registry = NeuralRegistry::new();
        let model = zoo::student(vec![1, 8, 8], 2, 5);
        let plain =
            compile_model_with_strategy(&db, &registry, &model, PreJoinStrategy::None).unwrap();
        let fused =
            compile_model_with_strategy(&db, &registry, &model, PreJoinStrategy::FuseMapping)
                .unwrap();
        assert!(fused.steps.len() < plain.steps.len(), "fusing removes the Reshape steps");
        assert!(plain.steps.iter().any(|s| s.label.starts_with("Reshape")));
        assert!(!fused.steps.iter().any(|s| s.label.starts_with("Reshape")));
    }

    #[test]
    fn prejoined_kernel_trades_storage_for_joins() {
        let db = Database::new();
        let registry = NeuralRegistry::new();
        let model = zoo::student(vec![1, 8, 8], 2, 5);
        let plain =
            compile_model_with_strategy(&db, &registry, &model, PreJoinStrategy::None).unwrap();
        let pre =
            compile_model_with_strategy(&db, &registry, &model, PreJoinStrategy::PreJoinKernel)
                .unwrap();
        assert!(
            pre.storage_bytes(&db) > plain.storage_bytes(&db),
            "pre-joined tables replicate weights per output channel"
        );
    }
}
