//! Model → SQL compilation.
//!
//! Compiling a model does two things:
//!
//! 1. **loads the model into the database** — kernel, bias and
//!    kernel-mapping tables are materialized (with indices on the join
//!    columns, as the paper prescribes), and
//! 2. **emits the inference SQL program** — one [`SqlStep`] per neural
//!    operator, in paper-listing form: the staging join (Q2), the conv
//!    join+group-by (Q1), pooling (Q3), batch normalization (Q4),
//!    ReLU-as-UPDATE and residual addition (Q5), FC as 1×1 convolution,
//!    and the softmax head.
//!
//! The program is re-runnable: each inference loads a fresh input state
//! table and executes the same statements (temp tables are replaced).

use std::collections::HashSet;

use minidb::Database;
use neuro::{Block, Layer, Model};

use crate::error::{Error, Result};
use crate::registry::{NeuralRegistry, TableRole};
use crate::storage::{
    self, deconv_geom, deconv_kernel_rows, deconv_mapping_rows, fc_kernel_rows, kernel_rows,
    mapping_rows, pool_mapping_rows, ConvGeom,
};

/// What a step computes — used to bucket timings (paper Figs. 9 and 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StepKind {
    /// The mapping join that re-lays a state into a staged feature map
    /// ("Reshape" in paper Fig. 9).
    Reshape,
    /// The convolution join + group-by (paper Q1).
    Conv,
    /// Per-output-channel bias addition.
    Bias,
    /// Batch normalization (paper Q4).
    BatchNorm,
    /// Instance normalization.
    InstanceNorm,
    /// ReLU as an UPDATE (paper Q5).
    Relu,
    Sigmoid,
    /// Max/avg pooling (paper Q3).
    Pool,
    GlobalAvgPool,
    Flatten,
    /// Full connection, compiled as a 1×1 convolution.
    Fc,
    Softmax,
    /// Residual link: element-wise add + ReLU (paper Q5).
    ResidualAdd,
    /// Dense-block channel concatenation.
    DenseConcat,
    /// Basic-attention gating multiply.
    AttentionGate,
}

/// One executable step of the compiled program.
#[derive(Debug, Clone)]
pub struct SqlStep {
    /// Display label ("Conv1", "Reshape1", "BN2", ...).
    pub label: String,
    pub kind: StepKind,
    /// Statements executed in order.
    pub statements: Vec<String>,
}

/// Logical shape of the current state table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Shape {
    /// Feature map: channels × grid.
    Map { c: usize, h: usize, w: usize },
    /// Flat vector.
    Vector { len: usize },
}

impl Shape {
    fn rows(&self) -> u64 {
        match self {
            Shape::Map { c, h, w } => (c * h * w) as u64,
            Shape::Vector { len } => *len as u64,
        }
    }
}

/// The pre-join strategies evaluated in paper Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PreJoinStrategy {
    /// The default program: a staging join (Q2) materializes the feature
    /// map, then the conv join (Q1) runs against the kernel table.
    #[default]
    None,
    /// Fuses the mapping join into the convolution statement, avoiding the
    /// staged feature-map materialization (and the separate pooling
    /// staging) — the paper's second strategy.
    FuseMapping,
    /// Additionally pre-joins the kernel weights into the mapping table
    /// offline, so inference avoids the feature-map ⋈ kernel join entirely
    /// — the paper's third strategy. Trades model storage for time.
    PreJoinKernel,
}

/// A model compiled to SQL, with its weights loaded into the database.
#[derive(Debug, Clone)]
pub struct CompiledModel {
    /// The source model's name.
    pub model_name: String,
    /// Table-name prefix for everything this compilation created.
    pub prefix: String,
    /// Expected input shape (`[C,H,W]`).
    pub input_shape: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
    /// The inference program.
    pub steps: Vec<SqlStep>,
    /// Name of the state table the runner loads the input into.
    pub input_table: String,
    /// Name of the final state table (class probabilities).
    pub output_table: String,
    /// `SELECT` returning the predicted class id.
    pub predict_sql: String,
    /// Persistent tables holding the model (kernels, biases, mappings).
    pub persistent_tables: Vec<String>,
    /// The subset of [`Self::persistent_tables`] that are kernel-mapping /
    /// pooling-mapping tables. These depend only on layer *geometry*
    /// (paper: "the kernel mapping table only depends on k, W_i and s ...
    /// we generate the involved mapping tables in an offline way"), so
    /// they are shared infrastructure rather than per-model storage; paper
    /// Table IV's "DL2SQL" column measures the parameter tables only.
    pub mapping_tables: Vec<String>,
}

impl CompiledModel {
    /// Total bytes of the model's persistent relational representation
    /// including mapping tables (raw in-memory columnar size).
    pub fn storage_bytes(&self, db: &Database) -> usize {
        self.persistent_tables
            .iter()
            .filter_map(|n| db.catalog().table(n))
            .map(|t| t.memory_bytes())
            .sum()
    }

    /// Estimated compressed on-disk bytes of everything, mappings
    /// included (see [`storage::compressed_size_estimate`]).
    pub fn compressed_storage_bytes(&self, db: &Database) -> usize {
        self.persistent_tables
            .iter()
            .filter_map(|n| db.catalog().table(n))
            .map(|t| storage::compressed_size_estimate(&t))
            .sum()
    }

    /// The model's *parameter* tables (kernels + biases), excluding the
    /// geometry-only mapping tables.
    pub fn parameter_tables(&self) -> impl Iterator<Item = &String> {
        self.persistent_tables.iter().filter(|n| !self.mapping_tables.contains(n))
    }

    /// Compressed on-disk bytes of the parameter tables — the quantity
    /// paper Table IV reports for DL2SQL.
    pub fn compressed_parameter_storage_bytes(&self, db: &Database) -> usize {
        self.parameter_tables()
            .filter_map(|n| db.catalog().table(n))
            .map(|t| storage::compressed_size_estimate(&t))
            .sum()
    }
}

/// Compiles `model` into SQL, loading its weights into `db` under a
/// sanitized name prefix (default pre-join strategy).
pub fn compile_model(
    db: &Database,
    registry: &NeuralRegistry,
    model: &Model,
) -> Result<CompiledModel> {
    compile_model_with_strategy(db, registry, model, PreJoinStrategy::None)
}

/// As [`compile_model`], with an explicit pre-join strategy (paper
/// Fig. 11). The strategy is folded into the table-name prefix so several
/// variants of one model can coexist.
pub fn compile_model_with_strategy(
    db: &Database,
    registry: &NeuralRegistry,
    model: &Model,
    strategy: PreJoinStrategy,
) -> Result<CompiledModel> {
    let suffix = match strategy {
        PreJoinStrategy::None => "",
        PreJoinStrategy::FuseMapping => "_fuse",
        PreJoinStrategy::PreJoinKernel => "_prejoin",
    };
    let prefix = format!("m_{}{suffix}", sanitize(&model.name));
    let mut c = Compiler {
        db,
        registry,
        prefix: prefix.clone(),
        steps: Vec::new(),
        persistent: Vec::new(),
        mappings: Vec::new(),
        protected: HashSet::new(),
        tmp_seq: 0,
        counts: Default::default(),
        strategy,
    };

    let input_shape = model.input_shape.clone();
    let shape = match input_shape.as_slice() {
        [ch, h, w] => Shape::Map { c: *ch, h: *h, w: *w },
        [len] => Shape::Vector { len: *len },
        other => {
            return Err(Error::Geometry(format!(
                "DL2SQL inputs must be [C,H,W] or [len], got {other:?}"
            )))
        }
    };

    let input_table = format!("{prefix}_input");
    c.registry.register(&input_table, TableRole::State { rows: shape.rows() });
    c.protected.insert(input_table.clone());

    let (output_table, out_shape) = c.compile_layers(&model.layers, input_table.clone(), shape)?;
    if let Shape::Vector { len } = out_shape {
        if len != model.num_classes {
            return Err(Error::Geometry(format!(
                "model ends with {len} outputs but declares {} classes",
                model.num_classes
            )));
        }
    }

    let predict_sql =
        format!("SELECT KernelID FROM {output_table} ORDER BY Value DESC, KernelID ASC LIMIT 1");
    Ok(CompiledModel {
        model_name: model.name.clone(),
        prefix,
        input_shape,
        num_classes: model.num_classes,
        steps: c.steps,
        input_table,
        output_table,
        predict_sql,
        persistent_tables: c.persistent,
        mapping_tables: c.mappings,
    })
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|ch| if ch.is_ascii_alphanumeric() { ch.to_ascii_lowercase() } else { '_' })
        .collect()
}

#[derive(Default)]
struct OpCounts {
    conv: usize,
    bn: usize,
    relu: usize,
    pool: usize,
    fc: usize,
    misc: usize,
}

struct Compiler<'a> {
    db: &'a Database,
    registry: &'a NeuralRegistry,
    prefix: String,
    steps: Vec<SqlStep>,
    persistent: Vec<String>,
    mappings: Vec<String>,
    /// Tables that later steps may still read (block inputs, the model
    /// input): in-place UPDATEs must copy first.
    protected: HashSet<String>,
    tmp_seq: usize,
    counts: OpCounts,
    strategy: PreJoinStrategy,
}

impl<'a> Compiler<'a> {
    fn tmp(&mut self, tag: &str) -> String {
        self.tmp_seq += 1;
        format!("{}_{tag}{}", self.prefix, self.tmp_seq)
    }

    fn step(&mut self, label: String, kind: StepKind, statements: Vec<String>) {
        self.steps.push(SqlStep { label, kind, statements });
    }

    fn compile_layers(
        &mut self,
        layers: &[Layer],
        mut cur: String,
        mut shape: Shape,
    ) -> Result<(String, Shape)> {
        for layer in layers {
            (cur, shape) = self.compile_layer(layer, cur, shape)?;
        }
        Ok((cur, shape))
    }

    fn compile_layer(
        &mut self,
        layer: &Layer,
        cur: String,
        shape: Shape,
    ) -> Result<(String, Shape)> {
        match layer {
            Layer::Conv2d { weight, bias, stride, padding } => {
                self.emit_conv(cur, shape, weight, bias.as_deref(), *stride, *padding)
            }
            Layer::Deconv2d { weight, bias, stride, padding } => {
                self.emit_deconv(cur, shape, weight, bias.as_deref(), *stride, *padding)
            }
            Layer::MaxPool2d { kernel, stride } => {
                self.emit_pool(cur, shape, *kernel, *stride, "MAX")
            }
            Layer::AvgPool2d { kernel, stride } => {
                self.emit_pool(cur, shape, *kernel, *stride, "AVG")
            }
            Layer::GlobalAvgPool => self.emit_gap(cur, shape),
            Layer::Relu => self.emit_relu(cur, shape),
            Layer::Sigmoid => self.emit_sigmoid(cur, shape),
            Layer::BatchNorm { eps } => self.emit_norm(cur, shape, *eps, StepKind::BatchNorm),
            Layer::InstanceNorm { eps } => self.emit_norm(cur, shape, *eps, StepKind::InstanceNorm),
            Layer::Linear { weight, bias } => self.emit_fc(cur, shape, weight, bias.as_deref()),
            Layer::BasicAttention { score, proj } => self.emit_attention(cur, shape, score, proj),
            Layer::Flatten => self.emit_flatten(cur, shape),
            // Paper Fig. 9 calls the softmax head "Classification".
            Layer::Softmax => self.emit_softmax(cur, shape, "Classification"),
            Layer::Block(Block::Residual { body, shortcut }) => {
                self.emit_residual(cur, shape, body, shortcut)
            }
            Layer::Block(Block::Dense { branches }) => self.emit_dense(cur, shape, branches),
        }
    }

    // -- convolution (paper Q1 + Q2) ------------------------------------

    fn emit_conv(
        &mut self,
        cur: String,
        shape: Shape,
        weight: &neuro::Tensor,
        bias: Option<&[f32]>,
        stride: usize,
        padding: usize,
    ) -> Result<(String, Shape)> {
        let Shape::Map { c, h, w } = shape else {
            return Err(Error::Geometry("convolution needs a [C,H,W] state".into()));
        };
        let [out_c, in_c, kh, _kw] = weight.shape() else {
            return Err(Error::Geometry("conv weight must be [out,in,kh,kw]".into()));
        };
        if *in_c != c {
            return Err(Error::Geometry(format!(
                "conv expects {in_c} input channels, state has {c}"
            )));
        }
        let geom = ConvGeom::of(c, h, w, *out_c, *kh, stride, padding)?;
        self.counts.conv += 1;
        let n = self.counts.conv;
        let (kid, oid, val) = kernel_rows(weight)?;
        let map = mapping_rows(&geom);
        self.finish_conv_like(cur, geom, map, kid, oid, val, bias, n)
    }

    fn emit_deconv(
        &mut self,
        cur: String,
        shape: Shape,
        weight: &neuro::Tensor,
        bias: Option<&[f32]>,
        stride: usize,
        padding: usize,
    ) -> Result<(String, Shape)> {
        let Shape::Map { c, h, w } = shape else {
            return Err(Error::Geometry("deconvolution needs a [C,H,W] state".into()));
        };
        let [in_c, out_c, kh, _kw] = weight.shape() else {
            return Err(Error::Geometry("deconv weight must be [in,out,kh,kw]".into()));
        };
        if *in_c != c {
            return Err(Error::Geometry(format!(
                "deconv expects {in_c} input channels, state has {c}"
            )));
        }
        let geom = deconv_geom(c, h, w, *out_c, *kh, stride, padding)?;
        self.counts.conv += 1;
        let n = self.counts.conv;
        let (kid, oid, val) = deconv_kernel_rows(weight)?;
        let map = deconv_mapping_rows(&geom);
        self.finish_conv_like(cur, geom, map, kid, oid, val, bias, n)
    }

    /// Shared tail of conv/deconv: loads the model tables according to the
    /// pre-join strategy and emits the staging + Q1 statements.
    #[allow(clippy::too_many_arguments)]
    fn finish_conv_like(
        &mut self,
        cur: String,
        geom: ConvGeom,
        map: storage::MappingRows,
        kid: Vec<i64>,
        oid: Vec<i64>,
        val: Vec<f64>,
        bias: Option<&[f32]>,
        n: usize,
    ) -> Result<(String, Shape)> {
        let t_in = map.matrix_id.len() as u64;
        let out = self.tmp("conv");
        self.registry.register(&out, TableRole::State { rows: geom.out_state_rows() });

        match self.strategy {
            PreJoinStrategy::None => {
                let kernel_table = format!("{}_l{n}_kernel", self.prefix);
                storage::load_kernel_table(
                    self.db,
                    self.registry,
                    &kernel_table,
                    kid,
                    oid,
                    val,
                    geom.k_in(),
                    geom.out_c as u64,
                )?;
                self.persistent.push(kernel_table.clone());
                let map_table = format!("{}_l{n}_map", self.prefix);
                storage::load_mapping_table(self.db, self.registry, &map_table, map)?;
                self.persistent.push(map_table.clone());
                self.mappings.push(map_table.clone());

                // Staging (paper Q2, generalized with the channel column).
                let fm = self.tmp("fm");
                self.registry
                    .register(&fm, TableRole::StagedFeatureMap { t_in, k_in: geom.k_in() });
                self.step(
                    format!("Reshape{n}"),
                    StepKind::Reshape,
                    vec![format!(
                        "CREATE TEMP TABLE {fm} AS SELECT B.MatrixID AS MatrixID, B.OrderID AS OrderID, \
                         A.Value AS Value FROM {cur} A, {map_table} B \
                         WHERE A.TupleID = B.TupleID AND A.KernelID = B.KernelID"
                    )],
                );
                // Convolution (paper Q1).
                self.step(
                    format!("Conv{n}"),
                    StepKind::Conv,
                    vec![format!(
                        "CREATE TEMP TABLE {out} AS SELECT B.KernelID AS KernelID, A.MatrixID AS TupleID, \
                         SUM(A.Value * B.Value) AS Value \
                         FROM {fm} A INNER JOIN {kernel_table} B ON A.OrderID = B.OrderID \
                         GROUP BY B.KernelID, A.MatrixID"
                    )],
                );
            }
            PreJoinStrategy::FuseMapping => {
                let kernel_table = format!("{}_l{n}_kernel", self.prefix);
                storage::load_kernel_table(
                    self.db,
                    self.registry,
                    &kernel_table,
                    kid,
                    oid,
                    val,
                    geom.k_in(),
                    geom.out_c as u64,
                )?;
                self.persistent.push(kernel_table.clone());
                let map_table = format!("{}_l{n}_map", self.prefix);
                storage::load_mapping_table(self.db, self.registry, &map_table, map)?;
                self.persistent.push(map_table.clone());
                self.mappings.push(map_table.clone());

                // One statement: no staged feature-map materialization.
                self.step(
                    format!("Conv{n}"),
                    StepKind::Conv,
                    vec![format!(
                        "CREATE TEMP TABLE {out} AS SELECT K.KernelID AS KernelID, B.MatrixID AS TupleID, \
                         SUM(A.Value * K.Value) AS Value \
                         FROM {cur} A, {map_table} B, {kernel_table} K \
                         WHERE A.TupleID = B.TupleID AND A.KernelID = B.KernelID \
                         AND B.OrderID = K.OrderID \
                         GROUP BY K.KernelID, B.MatrixID"
                    )],
                );
            }
            PreJoinStrategy::PreJoinKernel => {
                // Offline: mapping ⋈ kernel — one row per (mapping row,
                // output channel) carrying the weight.
                let mut weights_by_order: Vec<Vec<f64>> = vec![Vec::new(); geom.k_in() as usize];
                for ((&k, &o), &v) in kid.iter().zip(&oid).zip(&val) {
                    let slot = &mut weights_by_order[o as usize];
                    if slot.len() <= k as usize {
                        slot.resize(k as usize + 1, 0.0);
                    }
                    slot[k as usize] = v;
                }
                let n_rows = map.matrix_id.len() * geom.out_c;
                let mut tuple_id = Vec::with_capacity(n_rows);
                let mut in_channel = Vec::with_capacity(n_rows);
                let mut matrix_id = Vec::with_capacity(n_rows);
                let mut out_channel = Vec::with_capacity(n_rows);
                let mut weight_col = Vec::with_capacity(n_rows);
                for i in 0..map.matrix_id.len() {
                    let o = map.order_id[i] as usize;
                    for oc in 0..geom.out_c {
                        tuple_id.push(map.tuple_id[i]);
                        in_channel.push(map.kernel_id[i]);
                        matrix_id.push(map.matrix_id[i]);
                        out_channel.push(oc as i64);
                        weight_col.push(weights_by_order[o].get(oc).copied().unwrap_or(0.0));
                    }
                }
                let prejoined = format!("{}_l{n}_prejoined", self.prefix);
                let table = minidb::Table::new(
                    minidb::Schema::new(vec![
                        minidb::Field::new("TupleID", minidb::DataType::Int64),
                        minidb::Field::new("KernelID", minidb::DataType::Int64),
                        minidb::Field::new("MatrixID", minidb::DataType::Int64),
                        minidb::Field::new("OutChannel", minidb::DataType::Int64),
                        minidb::Field::new("Weight", minidb::DataType::Float64),
                    ]),
                    vec![
                        minidb::Column::Int64(tuple_id),
                        minidb::Column::Int64(in_channel),
                        minidb::Column::Int64(matrix_id),
                        minidb::Column::Int64(out_channel),
                        minidb::Column::Float64(weight_col),
                    ],
                )?;
                self.db.catalog().create_table(&prejoined, table, true)?;
                self.db.catalog().create_index(&prejoined, "TupleID")?;
                self.registry.register(&prejoined, TableRole::Mapping { rows: n_rows as u64 });
                self.persistent.push(prejoined.clone());

                // Inference: a single join with the pre-joined table.
                self.step(
                    format!("Conv{n}"),
                    StepKind::Conv,
                    vec![format!(
                        "CREATE TEMP TABLE {out} AS SELECT P.OutChannel AS KernelID, \
                         P.MatrixID AS TupleID, SUM(A.Value * P.Weight) AS Value \
                         FROM {cur} A, {prejoined} P \
                         WHERE A.TupleID = P.TupleID AND A.KernelID = P.KernelID \
                         GROUP BY P.OutChannel, P.MatrixID"
                    )],
                );
            }
        }

        let mut state = out;
        if let Some(b) = bias {
            let bias_table = format!("{}_l{n}_bias", self.prefix);
            storage::load_bias_table(self.db, &bias_table, b)?;
            self.persistent.push(bias_table.clone());
            let biased = self.tmp("bias");
            self.registry.register(&biased, TableRole::State { rows: geom.out_state_rows() });
            self.step(
                format!("Bias{n}"),
                StepKind::Bias,
                vec![format!(
                    "CREATE TEMP TABLE {biased} AS SELECT A.KernelID AS KernelID, A.TupleID AS TupleID, \
                     A.Value + B.Value AS Value FROM {state} A, {bias_table} B \
                     WHERE A.KernelID = B.KernelID"
                )],
            );
            state = biased;
        }
        Ok((state, Shape::Map { c: geom.out_c, h: geom.out_h, w: geom.out_w }))
    }

    // -- normalization (paper Q4) -----------------------------------------

    fn emit_norm(
        &mut self,
        cur: String,
        shape: Shape,
        eps: f32,
        kind: StepKind,
    ) -> Result<(String, Shape)> {
        self.counts.bn += 1;
        let n = self.counts.bn;
        let label = format!("{}{n}", if kind == StepKind::BatchNorm { "BN" } else { "IN" });
        let single_channel = matches!(shape, Shape::Map { c: 1, .. } | Shape::Vector { .. });
        let out = self.tmp("bn");
        self.registry.register(&out, TableRole::State { rows: shape.rows() });
        let statements = if single_channel {
            // The paper's exact Q4 scalar-subquery form.
            vec![format!(
                "CREATE TEMP TABLE {out} AS SELECT KernelID, TupleID, \
                 ((Value - (SELECT AVG(Value) FROM {cur})) / \
                 ((SELECT stddevSamp(Value) FROM {cur}) + {eps})) AS Value FROM {cur}"
            )]
        } else {
            // Per-channel statistics via a group join (the paper keeps one
            // table per channel; one table with per-KernelID statistics is
            // the same computation).
            let stats = self.tmp("bnstat");
            vec![
                format!(
                    "CREATE TEMP TABLE {stats} AS SELECT KernelID, AVG(Value) AS Mean, \
                     stddevSamp(Value) AS Std FROM {cur} GROUP BY KernelID"
                ),
                format!(
                    "CREATE TEMP TABLE {out} AS SELECT A.KernelID AS KernelID, A.TupleID AS TupleID, \
                     (A.Value - B.Mean) / (B.Std + {eps}) AS Value \
                     FROM {cur} A, {stats} B WHERE A.KernelID = B.KernelID"
                ),
            ]
        };
        self.step(label, kind, statements);
        Ok((out, shape))
    }

    // -- activations --------------------------------------------------------

    fn emit_relu(&mut self, cur: String, shape: Shape) -> Result<(String, Shape)> {
        self.counts.relu += 1;
        let n = self.counts.relu;
        let mut statements = Vec::new();
        let target = if self.protected.contains(&cur) {
            let copy = self.tmp("relu");
            self.registry.register(&copy, TableRole::State { rows: shape.rows() });
            statements.push(format!(
                "CREATE TEMP TABLE {copy} AS SELECT KernelID, TupleID, Value FROM {cur}"
            ));
            copy
        } else {
            cur
        };
        // Paper Q5's in-place form.
        statements.push(format!("UPDATE {target} SET Value = 0 WHERE Value < 0"));
        self.step(format!("ReLU{n}"), StepKind::Relu, statements);
        Ok((target, shape))
    }

    fn emit_sigmoid(&mut self, cur: String, shape: Shape) -> Result<(String, Shape)> {
        self.counts.misc += 1;
        let out = self.tmp("sig");
        self.registry.register(&out, TableRole::State { rows: shape.rows() });
        self.step(
            format!("Sigmoid{}", self.counts.misc),
            StepKind::Sigmoid,
            vec![format!(
                "CREATE TEMP TABLE {out} AS SELECT KernelID, TupleID, \
                 1 / (1 + exp(-Value)) AS Value FROM {cur}"
            )],
        );
        Ok((out, shape))
    }

    // -- pooling (paper Q3) --------------------------------------------------

    fn emit_pool(
        &mut self,
        cur: String,
        shape: Shape,
        kernel: usize,
        stride: usize,
        agg: &str,
    ) -> Result<(String, Shape)> {
        let Shape::Map { c, h, w } = shape else {
            return Err(Error::Geometry("pooling needs a [C,H,W] state".into()));
        };
        self.counts.pool += 1;
        let n = self.counts.pool;

        let map_table = format!("{}_p{n}_map", self.prefix);
        let (mid, tid) = pool_mapping_rows(h, w, kernel, stride)?;
        storage::load_pool_mapping_table(self.db, self.registry, &map_table, mid, tid)?;
        self.persistent.push(map_table.clone());
        self.mappings.push(map_table.clone());

        let out_h = (h - kernel) / stride + 1;
        let out_w = (w - kernel) / stride + 1;
        let out = self.tmp("pool");
        self.registry.register(&out, TableRole::State { rows: (c * out_h * out_w) as u64 });
        let statements = if self.strategy == PreJoinStrategy::None {
            // Paper Q3 on a staged table.
            let staged = self.tmp("pfm");
            vec![
                format!(
                    "CREATE TEMP TABLE {staged} AS SELECT A.KernelID AS KernelID, \
                     B.MatrixID AS MatrixID, A.Value AS Value \
                     FROM {cur} A, {map_table} B WHERE A.TupleID = B.TupleID"
                ),
                format!(
                    "CREATE TEMP TABLE {out} AS SELECT KernelID, MatrixID AS TupleID, \
                     {agg}(Value) AS Value FROM {staged} GROUP BY KernelID, MatrixID"
                ),
            ]
        } else {
            // Pre-join strategies fuse the staging into one statement.
            vec![format!(
                "CREATE TEMP TABLE {out} AS SELECT A.KernelID AS KernelID, B.MatrixID AS TupleID, \
                 {agg}(A.Value) AS Value FROM {cur} A, {map_table} B \
                 WHERE A.TupleID = B.TupleID GROUP BY A.KernelID, B.MatrixID"
            )]
        };
        self.step(format!("Pool{n}"), StepKind::Pool, statements);
        Ok((out, Shape::Map { c, h: out_h, w: out_w }))
    }

    fn emit_gap(&mut self, cur: String, shape: Shape) -> Result<(String, Shape)> {
        let Shape::Map { c, .. } = shape else {
            return Err(Error::Geometry("global average pooling needs a [C,H,W] state".into()));
        };
        self.counts.pool += 1;
        let out = self.tmp("gap");
        self.registry.register(&out, TableRole::State { rows: c as u64 });
        self.step(
            format!("Pool{}", self.counts.pool),
            StepKind::GlobalAvgPool,
            vec![format!(
                "CREATE TEMP TABLE {out} AS SELECT KernelID, 0 AS TupleID, AVG(Value) AS Value \
                 FROM {cur} GROUP BY KernelID"
            )],
        );
        Ok((out, Shape::Vector { len: c }))
    }

    // -- dense layers ---------------------------------------------------------

    fn emit_flatten(&mut self, cur: String, shape: Shape) -> Result<(String, Shape)> {
        match shape {
            Shape::Vector { .. } => Ok((cur, shape)), // already flat
            Shape::Map { c, h, w } => {
                self.counts.misc += 1;
                let out = self.tmp("flat");
                let plane = h * w;
                self.registry.register(&out, TableRole::State { rows: (c * plane) as u64 });
                self.step(
                    format!("Flatten{}", self.counts.misc),
                    StepKind::Flatten,
                    vec![format!(
                        "CREATE TEMP TABLE {out} AS SELECT KernelID * {plane} + TupleID AS KernelID, \
                         0 AS TupleID, Value FROM {cur}"
                    )],
                );
                Ok((out, Shape::Vector { len: c * plane }))
            }
        }
    }

    /// FC as a 1×1 convolution (paper Sec. III-C2): stage the vector as a
    /// single-matrix feature map, join with the FC kernel table, group.
    fn emit_fc(
        &mut self,
        cur: String,
        shape: Shape,
        weight: &neuro::Tensor,
        bias: Option<&[f32]>,
    ) -> Result<(String, Shape)> {
        // Auto-flatten feature maps, like the reference engine.
        let (cur, shape) = self.emit_flatten(cur, shape)?;
        let Shape::Vector { len } = shape else { unreachable!("flatten yields a vector") };
        let [out_dim, in_dim] = weight.shape() else {
            return Err(Error::Geometry("FC weight must be [out,in]".into()));
        };
        if *in_dim != len {
            return Err(Error::Geometry(format!("FC expects {in_dim} inputs, state has {len}")));
        }
        self.counts.fc += 1;
        let n = self.counts.fc;

        let kernel_table = format!("{}_fc{n}_kernel", self.prefix);
        let (kid, oid, val) = fc_kernel_rows(weight)?;
        storage::load_kernel_table(
            self.db,
            self.registry,
            &kernel_table,
            kid,
            oid,
            val,
            len as u64,
            *out_dim as u64,
        )?;
        self.persistent.push(kernel_table.clone());

        let fm = self.tmp("fcfm");
        self.registry
            .register(&fm, TableRole::StagedFeatureMap { t_in: len as u64, k_in: len as u64 });
        let out = self.tmp("fc");
        self.registry.register(&out, TableRole::State { rows: *out_dim as u64 });
        let mut statements = vec![
            format!(
                "CREATE TEMP TABLE {fm} AS SELECT 0 AS MatrixID, KernelID AS OrderID, Value \
                 FROM {cur}"
            ),
            format!(
                "CREATE TEMP TABLE {out} AS SELECT B.KernelID AS KernelID, A.MatrixID AS TupleID, \
                 SUM(A.Value * B.Value) AS Value \
                 FROM {fm} A INNER JOIN {kernel_table} B ON A.OrderID = B.OrderID \
                 GROUP BY B.KernelID, A.MatrixID"
            ),
        ];
        let mut state = out;
        if let Some(b) = bias {
            let bias_table = format!("{kernel_table}_bias");
            storage::load_bias_table(self.db, &bias_table, b)?;
            self.persistent.push(bias_table.clone());
            let biased = self.tmp("fcb");
            self.registry.register(&biased, TableRole::State { rows: *out_dim as u64 });
            statements.push(format!(
                "CREATE TEMP TABLE {biased} AS SELECT A.KernelID AS KernelID, A.TupleID AS TupleID, \
                 A.Value + B.Value AS Value FROM {state} A, {bias_table} B WHERE A.KernelID = B.KernelID"
            ));
            state = biased;
        }
        self.step(format!("FC{n}"), StepKind::Fc, statements);
        Ok((state, Shape::Vector { len: *out_dim }))
    }

    fn emit_softmax(&mut self, cur: String, shape: Shape, label: &str) -> Result<(String, Shape)> {
        self.counts.misc += 1;
        let e = self.tmp("exp");
        let out = self.tmp("softmax");
        self.registry.register(&e, TableRole::State { rows: shape.rows() });
        self.registry.register(&out, TableRole::State { rows: shape.rows() });
        self.step(
            label.to_string(),
            StepKind::Softmax,
            vec![
                // Max-subtraction for numeric stability, like the reference.
                format!(
                    "CREATE TEMP TABLE {e} AS SELECT KernelID, TupleID, \
                     exp(Value - (SELECT MAX(Value) FROM {cur})) AS Value FROM {cur}"
                ),
                format!(
                    "CREATE TEMP TABLE {out} AS SELECT KernelID, TupleID, \
                     Value / (SELECT SUM(Value) FROM {e}) AS Value FROM {e}"
                ),
            ],
        );
        Ok((out, shape))
    }

    fn emit_attention(
        &mut self,
        cur: String,
        shape: Shape,
        score: &neuro::Tensor,
        proj: &neuro::Tensor,
    ) -> Result<(String, Shape)> {
        // Basic attention is "a variant of full connection" (paper): a
        // scoring FC, a softmax gate, an element-wise multiply, and an
        // output projection FC.
        let (x, shape) = self.emit_flatten(cur, shape)?;
        self.protected.insert(x.clone());
        let (scores, _) = self.emit_fc(x.clone(), shape, score, None)?;
        self.counts.misc += 1;
        let softmax_label = format!("Softmax{}", self.counts.misc);
        let (alpha, _) = self.emit_softmax(scores, shape, &softmax_label)?;
        let gated = self.tmp("gate");
        self.registry.register(&gated, TableRole::State { rows: shape.rows() });
        self.counts.misc += 1;
        self.step(
            format!("Attention{}", self.counts.misc),
            StepKind::AttentionGate,
            vec![format!(
                "CREATE TEMP TABLE {gated} AS SELECT A.KernelID AS KernelID, 0 AS TupleID, \
                 A.Value * B.Value AS Value FROM {x} A, {alpha} B WHERE A.KernelID = B.KernelID"
            )],
        );
        self.emit_fc(gated, shape, proj, None)
    }

    // -- blocks -----------------------------------------------------------------

    fn emit_residual(
        &mut self,
        cur: String,
        shape: Shape,
        body: &[Layer],
        shortcut: &[Layer],
    ) -> Result<(String, Shape)> {
        self.protected.insert(cur.clone());
        let (body_out, body_shape) = self.compile_layers(body, cur.clone(), shape)?;
        let (short_out, short_shape) = if shortcut.is_empty() {
            (cur, shape)
        } else {
            self.compile_layers(shortcut, cur, shape)?
        };
        if body_shape != short_shape {
            return Err(Error::Geometry(format!(
                "residual branches disagree: body {body_shape:?} vs shortcut {short_shape:?}"
            )));
        }
        self.counts.misc += 1;
        let out = self.tmp("res");
        self.registry.register(&out, TableRole::State { rows: body_shape.rows() });
        // Paper Q5: the residual link plus ReLU.
        self.step(
            format!("Residual{}", self.counts.misc),
            StepKind::ResidualAdd,
            vec![
                format!(
                    "CREATE TEMP TABLE {out} AS SELECT A.KernelID AS KernelID, A.TupleID AS TupleID, \
                     A.Value + B.Value AS Value FROM {body_out} A, {short_out} B \
                     WHERE A.KernelID = B.KernelID AND A.TupleID = B.TupleID"
                ),
                format!("UPDATE {out} SET Value = 0 WHERE Value < 0"),
            ],
        );
        Ok((out, body_shape))
    }

    fn emit_dense(
        &mut self,
        cur: String,
        shape: Shape,
        branches: &[Vec<Layer>],
    ) -> Result<(String, Shape)> {
        let Shape::Map { mut c, h, w } = shape else {
            return Err(Error::Geometry("dense blocks need a [C,H,W] state".into()));
        };
        let mut acc = cur;
        for branch in branches {
            self.protected.insert(acc.clone());
            let (bout, bshape) =
                self.compile_layers(branch, acc.clone(), Shape::Map { c, h, w })?;
            let Shape::Map { c: bc, h: bh, w: bw } = bshape else {
                return Err(Error::Geometry("dense branch must produce a feature map".into()));
            };
            if (bh, bw) != (h, w) {
                return Err(Error::Geometry(format!(
                    "dense branch changed spatial dims to {bh}x{bw} (expected {h}x{w})"
                )));
            }
            self.counts.misc += 1;
            let cat = self.tmp("cat");
            self.registry.register(&cat, TableRole::State { rows: ((c + bc) * h * w) as u64 });
            self.step(
                format!("Dense{}", self.counts.misc),
                StepKind::DenseConcat,
                vec![
                    format!(
                        "CREATE TEMP TABLE {cat} AS SELECT KernelID, TupleID, Value FROM {acc}"
                    ),
                    format!(
                        "INSERT INTO {cat} SELECT KernelID + {c} AS KernelID, TupleID, Value FROM {bout}"
                    ),
                ],
            );
            acc = cat;
            c += bc;
        }
        Ok((acc, Shape::Map { c, h, w }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use neuro::zoo;

    #[test]
    fn compiles_the_student_model() {
        let db = Database::new();
        let registry = NeuralRegistry::new();
        let model = zoo::student(vec![1, 10, 10], 4, 11);
        let compiled = compile_model(&db, &registry, &model).unwrap();
        // 3 convs => 3 kernel + 3 map tables; 1 pool map; 1 FC kernel + bias.
        assert_eq!(compiled.persistent_tables.len(), 3 + 3 + 1 + 1 + 1);
        // Steps include the paper's labels.
        let labels: Vec<&str> = compiled.steps.iter().map(|s| s.label.as_str()).collect();
        assert!(labels.contains(&"Conv1"));
        assert!(labels.contains(&"Reshape1"));
        assert!(labels.contains(&"BN3"));
        assert!(labels.contains(&"Classification"));
        // Every persistent table exists in the catalog.
        for t in &compiled.persistent_tables {
            assert!(db.catalog().table(t).is_some(), "missing {t}");
        }
        assert!(compiled.storage_bytes(&db) > 0);
        assert!(compiled.compressed_storage_bytes(&db) < compiled.storage_bytes(&db));
    }

    #[test]
    fn conv_q1_sql_matches_paper_shape() {
        let db = Database::new();
        let registry = NeuralRegistry::new();
        let model = zoo::student(vec![1, 8, 8], 2, 3);
        let compiled = compile_model(&db, &registry, &model).unwrap();
        let conv1 = compiled.steps.iter().find(|s| s.label == "Conv1").unwrap();
        let sql = &conv1.statements[0];
        assert!(sql.contains("SUM(A.Value * B.Value)"), "{sql}");
        assert!(sql.contains("INNER JOIN"), "{sql}");
        assert!(sql.contains("GROUP BY B.KernelID, A.MatrixID"), "{sql}");
    }

    #[test]
    fn relu_uses_update_idiom() {
        let db = Database::new();
        let registry = NeuralRegistry::new();
        let model = zoo::student(vec![1, 8, 8], 2, 3);
        let compiled = compile_model(&db, &registry, &model).unwrap();
        let relu = compiled.steps.iter().find(|s| s.kind == StepKind::Relu).unwrap();
        assert!(relu.statements.iter().any(|s| s.contains("UPDATE") && s.contains("Value < 0")));
    }

    #[test]
    fn resnet_compiles_with_residual_steps() {
        let db = Database::new();
        let registry = NeuralRegistry::new();
        let model = zoo::resnet_with_width(5, 4, vec![1, 6, 6], 3, 5);
        let compiled = compile_model(&db, &registry, &model).unwrap();
        assert!(compiled.steps.iter().any(|s| s.kind == StepKind::ResidualAdd));
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let db = Database::new();
        let registry = NeuralRegistry::new();
        // Model claims 2-channel input but first conv expects 1.
        let mut model = zoo::student(vec![1, 8, 8], 2, 3);
        model.input_shape = vec![2, 8, 8];
        assert!(matches!(compile_model(&db, &registry, &model), Err(Error::Geometry(_))));
    }
}
